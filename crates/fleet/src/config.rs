//! Fleet scenario configuration and the vehicle → shard/tenant/region
//! partition.
//!
//! Every mapping here is a pure function of the vehicle id and the
//! fleet-wide counts — never of the shard count — which is the root of
//! the engine's shard-count invariance: re-partitioning the same fleet
//! across a different number of worker shards reassigns *where* each
//! vehicle's events execute, but not *what* they compute.
//!
//! Since the workload-class refactor the cost model is per
//! [`WorkloadClass`]: each class carries its own bytes, service times,
//! work units, DRR quantum and deadline in a [`ClassSpec`], and the mix
//! a vehicle draws from is a deterministic function of its private RNG
//! stream.

use std::fmt;

use vdap_edgeos::{LanePolicy, WorkloadClass};
use vdap_fault::FaultPlan;
use vdap_mobility::MobilityConfig;
use vdap_sim::{SimDuration, SimTime};

/// The cost/deadline model of one [`WorkloadClass`] in a fleet run.
///
/// Every layer of the serving path reads these numbers: the vehicle
/// tick sizes transfers from `upload_bytes`/`download_bytes`, the XEdge
/// fair queue charges `work_units` against a per-class `drr_quantum`,
/// the contention model prices `edge_service` per class, and the
/// degradation ladder budgets retries against `deadline`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Relative share of a vehicle's requests drawn from this class
    /// (weights, not fractions; 0 disables the class).
    pub weight: u32,
    /// Uplink payload per request.
    pub upload_bytes: u64,
    /// Downlink payload per response.
    pub download_bytes: u64,
    /// Base XEdge service time per request at an idle server.
    pub edge_service: SimDuration,
    /// On-board compute time when the request cannot reach the edge.
    pub vehicle_service: SimDuration,
    /// Service cost units charged per request in the fair queue.
    pub work_units: u64,
    /// Deficit round-robin quantum for this class's flows.
    pub drr_quantum: u64,
    /// End-to-end deadline budget per request (rung-1 retry horizon).
    pub deadline: SimDuration,
    /// Whether results are scan-type work eligible for V2V sharing.
    pub cacheable: bool,
    /// Service-time multiplier for rung-3 local degraded execution.
    pub degraded_service_factor: f64,
}

impl ClassSpec {
    /// The default detection-offload cost model (the pre-refactor
    /// fleet's single class): small feature uploads, tiny responses,
    /// tight deadline, V2V-shareable results.
    #[must_use]
    pub fn detection() -> Self {
        ClassSpec {
            weight: 6,
            upload_bytes: 20_000,
            download_bytes: 2_000,
            edge_service: SimDuration::from_millis(8),
            vehicle_service: SimDuration::from_millis(45),
            work_units: 8,
            drr_quantum: 8,
            deadline: SimDuration::from_secs(3),
            cacheable: true,
            degraded_service_factor: 0.6,
        }
    }

    /// The default infotainment-streaming cost model (E13's
    /// `apps::infotainment` scaled to per-request chunks): tiny
    /// requests, heavy transcoded downlink, double-size work units and
    /// quantum, looser deadline, nothing cacheable.
    #[must_use]
    pub fn infotainment() -> Self {
        ClassSpec {
            weight: 3,
            upload_bytes: 1_000,
            download_bytes: 200_000,
            edge_service: SimDuration::from_millis(12),
            vehicle_service: SimDuration::from_millis(30),
            work_units: 16,
            drr_quantum: 16,
            deadline: SimDuration::from_secs(2),
            cacheable: false,
            degraded_service_factor: 0.5,
        }
    }

    /// The default pBEAM-training cost model (`vdap_models::pbeam`
    /// rounds): a gradient upload plus model-delta download, heavy
    /// aggregation work at the edge, the loosest deadline. A missed
    /// round is *skipped*, never recomputed locally — the on-board
    /// `vehicle_service` only prices the local continuation a vehicle
    /// pays when the edge is unreachable.
    #[must_use]
    pub fn pbeam_training() -> Self {
        ClassSpec {
            weight: 1,
            upload_bytes: 120_000,
            download_bytes: 40_000,
            edge_service: SimDuration::from_millis(24),
            vehicle_service: SimDuration::from_millis(20),
            work_units: 32,
            drr_quantum: 32,
            deadline: SimDuration::from_secs(10),
            cacheable: false,
            degraded_service_factor: 1.0,
        }
    }

    /// The default spec for `class`.
    #[must_use]
    pub fn default_for(class: WorkloadClass) -> Self {
        match class {
            WorkloadClass::Detection => ClassSpec::detection(),
            WorkloadClass::Infotainment => ClassSpec::infotainment(),
            WorkloadClass::PbeamTraining => ClassSpec::pbeam_training(),
        }
    }

    fn validate(&self, class: WorkloadClass) -> Result<(), FleetConfigError> {
        let reject = |what: &str| {
            Err(FleetConfigError::BadClassSpec {
                class,
                what: what.to_string(),
            })
        };
        if self.weight > 0 {
            if self.edge_service.is_zero() {
                return reject("edge service time must be positive");
            }
            if self.work_units == 0 {
                return reject("work units must be positive");
            }
            if self.drr_quantum == 0 {
                return reject("DRR quantum must be positive");
            }
            if self.deadline.is_zero() {
                return reject("deadline must be positive");
            }
            if !(self.degraded_service_factor > 0.0 && self.degraded_service_factor <= 1.0) {
                return reject("degraded service factor must be in (0, 1]");
            }
        }
        Ok(())
    }
}

/// Configuration of the fleet-scale DDI ingestion pipeline.
///
/// When attached to a [`FleetConfig`] (see [`FleetConfig::with_ingest`])
/// every vehicle batches its telemetry records and uploads them through
/// its region's DDI collector over the shared cellular link; collectors
/// buffer the batches in bounded queues ahead of a shared storage tier
/// with finite write throughput. Overflow backpressure walks the
/// ingestion degradation ladder: seeded-backoff retry, then deferral
/// into the vehicle's local TTL cache (mem tier first, disk spill
/// second), then shedding lowest-priority batches.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestConfig {
    /// Mean per-vehicle upload period (±10% deterministic jitter).
    pub upload_period: SimDuration,
    /// Telemetry records per upload batch.
    pub records_per_batch: u32,
    /// Bytes per record on the wire.
    pub record_bytes: u64,
    /// Ingestion deadline: a batch should be durable within this budget
    /// of being sent.
    pub deadline: SimDuration,
    /// Bound (in records) of each regional collector's queue.
    pub collector_queue_records: u64,
    /// Nominal storage-tier write throughput, records per second.
    pub storage_records_per_sec: f64,
    /// Per-vehicle mem-tier cache capacity (records) for deferred
    /// batches.
    pub cache_mem_records: u64,
    /// Per-vehicle disk-tier spill capacity (records) beyond the mem
    /// tier.
    pub cache_disk_records: u64,
    /// TTL of a deferred batch in the vehicle cache; expiry evicts it.
    pub cache_ttl: SimDuration,
    /// Rung-1 upload attempts per batch (including the first).
    pub max_upload_attempts: u32,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            upload_period: SimDuration::from_secs(2),
            records_per_batch: 24,
            record_bytes: 512,
            deadline: SimDuration::from_secs(5),
            collector_queue_records: 4096,
            storage_records_per_sec: 2_000.0,
            cache_mem_records: 192,
            cache_disk_records: 768,
            cache_ttl: SimDuration::from_secs(20),
            max_upload_attempts: 4,
        }
    }
}

impl IngestConfig {
    /// Batch size on the wire.
    #[must_use]
    pub fn batch_bytes(&self) -> u64 {
        u64::from(self.records_per_batch) * self.record_bytes
    }

    fn validate(&self) -> Result<(), FleetConfigError> {
        let reject = |what: &str| Err(FleetConfigError::BadIngest(what.to_string()));
        if self.upload_period.is_zero() {
            return reject("upload period must be positive");
        }
        if self.records_per_batch == 0 {
            return reject("records per batch must be positive");
        }
        if self.record_bytes == 0 {
            return reject("record bytes must be positive");
        }
        if self.deadline.is_zero() {
            return reject("ingest deadline must be positive");
        }
        if self.collector_queue_records < u64::from(self.records_per_batch) {
            return reject("collector queue must hold at least one batch");
        }
        if self.storage_records_per_sec <= 0.0 || self.storage_records_per_sec.is_nan() {
            return reject("storage throughput must be positive");
        }
        if self.cache_mem_records < u64::from(self.records_per_batch) {
            return reject("mem-tier cache must hold at least one batch");
        }
        if self.cache_ttl.is_zero() {
            return reject("cache TTL must be positive");
        }
        if self.max_upload_attempts == 0 {
            return reject("upload attempts must be at least 1");
        }
        Ok(())
    }
}

/// Durable barrier checkpointing for a fleet run.
///
/// When attached to a [`FleetConfig`] (see
/// [`FleetConfig::with_checkpoint`]) the engine serializes its complete
/// deterministic state — vehicle RNG streams, edge lane pools, ingest
/// queues, mobility tracks, every ledger — into a versioned, checksummed
/// snapshot every `interval_epochs` barriers, keeping the last `retain`
/// generations. `FleetEngine::restore` resumes a run from any surviving
/// snapshot, byte-identically and even into a different shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Barriers between snapshots: a snapshot is written at every epoch
    /// whose index is a positive multiple of this interval.
    pub interval_epochs: u64,
    /// Snapshot generations kept on the store (keep-last-K retention).
    pub retain: usize,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            interval_epochs: 8,
            retain: 3,
        }
    }
}

/// Why a [`FleetConfig`] was rejected.
///
/// Every variant names the offending field and the rule it broke, so a
/// caller building configs programmatically gets a diagnosable error at
/// the gate instead of a panic (or a hung run) deep inside the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetConfigError {
    /// `vehicles == 0`.
    NoVehicles,
    /// `shards == 0`.
    NoShards,
    /// `shards > vehicles`: some shards would own no vehicles.
    MoreShardsThanVehicles {
        /// Configured shard count.
        shards: u32,
        /// Configured fleet size.
        vehicles: u32,
    },
    /// `tenants == 0`.
    NoTenants,
    /// `tenants > vehicles`: some tenants would have no traffic and
    /// the interleaved vehicle → tenant map would skip tenant ids.
    MoreTenantsThanVehicles {
        /// Configured tenant count.
        tenants: u32,
        /// Configured fleet size.
        vehicles: u32,
    },
    /// `regions == 0`.
    NoRegions,
    /// `duration` is zero.
    ZeroDuration,
    /// `epoch` is zero.
    ZeroEpoch,
    /// `epoch > duration`: the first barrier would fall past the
    /// horizon and the run would serve everything in one degenerate
    /// epoch.
    EpochExceedsDuration {
        /// Configured barrier interval.
        epoch: SimDuration,
        /// Configured simulated duration.
        duration: SimDuration,
    },
    /// `request_period` is zero.
    ZeroRequestPeriod,
    /// `cacheable_fraction` outside `[0, 1]`.
    BadCacheableFraction(f64),
    /// `edge_nodes == 0`.
    NoEdgeNodes,
    /// `edge_nodes > edge_capacity`: some node would own no lane.
    MoreNodesThanLanes {
        /// Configured node count.
        nodes: u32,
        /// Configured lane count.
        lanes: u32,
    },
    /// Every class weight is zero: vehicles would have nothing to send.
    EmptyClassMix,
    /// A class spec carries an unusable value.
    BadClassSpec {
        /// The offending class.
        class: WorkloadClass,
        /// The rule it broke.
        what: String,
    },
    /// The ingestion config carries an unusable value.
    BadIngest(String),
    /// Mobility needs at least two regions to cross between.
    MobilityNeedsRegions,
    /// With mobility on, vehicles live on the shard of their *current*
    /// region (`shard_of_region`), so every shard must own at least one
    /// region.
    MoreShardsThanRegions {
        /// Configured shard count.
        shards: u32,
        /// Configured region count.
        regions: u32,
    },
    /// The mobility config carries an unusable value.
    BadMobility(String),
    /// `checkpoint.interval_epochs == 0`: a snapshot at every zeroth
    /// barrier is meaningless.
    ZeroCheckpointInterval,
    /// `checkpoint.interval_epochs` is at least the run's total epoch
    /// count: no barrier would ever write a snapshot.
    CheckpointIntervalExceedsRun {
        /// Configured barriers-between-snapshots.
        interval_epochs: u64,
        /// Epochs the run actually executes.
        total_epochs: u64,
    },
    /// `checkpoint.retain == 0`: every snapshot would be deleted the
    /// moment it was written.
    ZeroCheckpointRetention,
    /// `batch_size == 0`: the tick phase could never make progress.
    ZeroBatchSize,
    /// `executor_threads == Some(0)`: the executor needs at least one
    /// worker.
    ZeroExecutorThreads,
    /// `telemetry_budget == Some(0)`: a zero-byte budget can never be
    /// satisfied.
    ZeroTelemetryBudget,
    /// `span_sample == Some(0)`: keep-one-in-zero is meaningless (1
    /// keeps everything; use that to disable sampling explicitly).
    ZeroSpanSample,
    /// A telemetry sink knob (`telemetry_budget`, `span_spill`,
    /// `span_sample`) is set while `telemetry` itself is off — nothing
    /// would ever be captured, so the knob is certainly a mistake.
    TelemetrySinkWithoutTelemetry,
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetConfigError::NoVehicles => write!(f, "fleet needs at least one vehicle"),
            FleetConfigError::NoShards => write!(f, "fleet needs at least one shard"),
            FleetConfigError::MoreShardsThanVehicles { shards, vehicles } => write!(
                f,
                "{shards} shards over {vehicles} vehicles: more shards than vehicles is meaningless"
            ),
            FleetConfigError::NoTenants => write!(f, "fleet needs at least one tenant"),
            FleetConfigError::MoreTenantsThanVehicles { tenants, vehicles } => write!(
                f,
                "{tenants} tenants over {vehicles} vehicles: some tenants would have no vehicles"
            ),
            FleetConfigError::NoRegions => write!(f, "fleet needs at least one region"),
            FleetConfigError::ZeroDuration => write!(f, "duration must be positive"),
            FleetConfigError::ZeroEpoch => write!(f, "epoch must be positive"),
            FleetConfigError::EpochExceedsDuration { epoch, duration } => write!(
                f,
                "epoch {epoch} exceeds duration {duration}: the first barrier would fall past \
                 the horizon"
            ),
            FleetConfigError::ZeroRequestPeriod => write!(f, "request period must be positive"),
            FleetConfigError::BadCacheableFraction(p) => {
                write!(f, "cacheable fraction {p} must be a probability in [0, 1]")
            }
            FleetConfigError::NoEdgeNodes => write!(f, "edge needs at least one node"),
            FleetConfigError::MoreNodesThanLanes { nodes, lanes } => write!(
                f,
                "{nodes} XEdge nodes over {lanes} lanes: every node needs at least one lane"
            ),
            FleetConfigError::EmptyClassMix => {
                write!(f, "every workload-class weight is zero: nothing to send")
            }
            FleetConfigError::BadClassSpec { class, what } => {
                write!(f, "class '{class}': {what}")
            }
            FleetConfigError::BadIngest(what) => write!(f, "ingest: {what}"),
            FleetConfigError::MobilityNeedsRegions => {
                write!(f, "mobility needs at least two regions to cross between")
            }
            FleetConfigError::MoreShardsThanRegions { shards, regions } => write!(
                f,
                "{shards} shards over {regions} regions: with mobility on, vehicles are \
                 sharded by current region, so every shard needs at least one region"
            ),
            FleetConfigError::BadMobility(what) => write!(f, "mobility: {what}"),
            FleetConfigError::ZeroCheckpointInterval => {
                write!(f, "checkpoint interval must be at least one epoch")
            }
            FleetConfigError::CheckpointIntervalExceedsRun {
                interval_epochs,
                total_epochs,
            } => write!(
                f,
                "checkpoint interval of {interval_epochs} epochs over a {total_epochs}-epoch \
                 run: no barrier would ever write a snapshot"
            ),
            FleetConfigError::ZeroCheckpointRetention => {
                write!(f, "checkpoint retention must keep at least one generation")
            }
            FleetConfigError::ZeroBatchSize => {
                write!(f, "batch size must cover at least one vehicle")
            }
            FleetConfigError::ZeroExecutorThreads => {
                write!(f, "executor needs at least one worker thread")
            }
            FleetConfigError::ZeroTelemetryBudget => {
                write!(f, "telemetry budget must be at least one byte")
            }
            FleetConfigError::ZeroSpanSample => write!(
                f,
                "span sampling keeps one span in N; N must be at least 1 (1 keeps everything)"
            ),
            FleetConfigError::TelemetrySinkWithoutTelemetry => write!(
                f,
                "telemetry sink knobs (budget / spill / sampling) require telemetry capture; \
                 call with_telemetry() or use the with_telemetry_* builders"
            ),
        }
    }
}

impl std::error::Error for FleetConfigError {}

/// Configuration for one fleet run.
///
/// Defaults model the paper's setting scaled to a small city fleet:
/// 1,000 vehicles multiplexing the §IV-B service mix — detection
/// offload, infotainment streaming and pBEAM training rounds — over a
/// shared XEdge deployment via LTE for one simulated minute.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Master scenario seed; every random stream derives from it.
    pub seed: u64,
    /// Fleet size.
    pub vehicles: u32,
    /// Worker shards the fleet is partitioned into (threads used).
    pub shards: u32,
    /// Service tenants sharing the XEdge servers.
    pub tenants: u32,
    /// Geographic LTE regions (cell coverage areas).
    pub regions: u32,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Conservative-synchronization epoch (barrier interval).
    pub epoch: SimDuration,
    /// Mean per-vehicle request period (±10% deterministic jitter).
    pub request_period: SimDuration,
    /// Per-class cost models, indexed by [`WorkloadClass::index`].
    pub classes: [ClassSpec; 3],
    /// Fraction of cacheable-class requests eligible for V2V result
    /// sharing.
    pub cacheable_fraction: f64,
    /// Concurrent request lanes per XEdge deployment (the nominal pool
    /// size when elastic scaling is on).
    pub edge_capacity: u32,
    /// Physical XEdge nodes the lane pool is partitioned across; lane
    /// `i` belongs to node `i % edge_nodes` and region `r` is homed on
    /// node `r % edge_nodes`. An [`vdap_fault::FaultKind::EdgeNodeCrash`]
    /// takes down one node's whole lane share.
    pub edge_nodes: u32,
    /// Per-tenant outstanding-request cap at the XEdge admission gate
    /// (the nominal cap when elastic scaling is on).
    pub tenant_queue_cap: usize,
    /// Elastic XEdge capacity: when set, lane counts and tenant queue
    /// caps scale up/down from observed queue depth at epoch barriers.
    /// `None` keeps the pool statically sized.
    pub elastic: Option<LanePolicy>,
    /// Re-planning latency a vehicle pays when failing over to on-board
    /// compute.
    pub failover_penalty: SimDuration,
    /// Optional fault plan (e.g. a regional LTE outage).
    pub chaos: Option<FaultPlan>,
    /// Fleet-scale DDI ingestion: per-vehicle batched telemetry uploads
    /// through regional collectors into a shared storage tier. `None`
    /// disables the ingestion pipeline entirely.
    pub ingest: Option<IngestConfig>,
    /// Geo-mobility: when set, vehicles follow seeded route plans over
    /// a region graph, pay a cellular handoff at every region-boundary
    /// crossing, and migrate their shard-side state to the destination
    /// region's shard at epoch barriers. `None` pins every vehicle to
    /// its initial region (the pre-mobility fleet).
    pub mobility: Option<MobilityConfig>,
    /// Capture sim-time telemetry (one request span per request plus
    /// per-epoch registry samples) during the run. Spans are derived
    /// from values the deterministic serving path already computes, so
    /// enabling this cannot perturb a run — it only costs memory.
    pub telemetry: bool,
    /// Resident-byte budget for sim-time telemetry. When the estimated
    /// resident telemetry bytes (span buffer + registry, a count-based
    /// and therefore shard-invariant estimate) cross the budget at an
    /// epoch barrier, the engine enforces it: buffered spans spill to
    /// `span_spill` (when set), per-epoch series roll up into streaming
    /// histograms behind a retention window, and — when neither spill
    /// nor explicit sampling is configured — deterministic OK-span
    /// sampling switches on as a last resort. `None` disables
    /// enforcement (the pre-budget unbounded behaviour).
    pub telemetry_budget: Option<u64>,
    /// Directory for the segment-rotating JSONL span spill. With a
    /// budget set, spans spill only when the budget is crossed; without
    /// one, every barrier flushes (pure streaming export). Disk I/O is
    /// wall-clock territory: write failures are counted in diagnostics,
    /// and nothing deterministic depends on them.
    pub span_spill: Option<std::path::PathBuf>,
    /// Deterministic span sampling: keep all non-OK spans, and one in
    /// `N` OK spans chosen by a seeded hash of `(vehicle, seq)` — the
    /// kept set is shard-count- and executor-width-free. `None` keeps
    /// every span (unless a crossed budget auto-activates sampling, see
    /// `telemetry_budget`).
    pub span_sample: Option<u32>,
    /// Durable barrier checkpointing: when set, the engine snapshots
    /// its complete deterministic state every `interval_epochs`
    /// barriers with keep-last-`retain` retention, and
    /// `FleetEngine::run_supervised` can resume a crashed run from the
    /// newest valid generation. `None` disables checkpointing.
    pub checkpoint: Option<CheckpointConfig>,
    /// Vehicles per stealable batch in the epoch tick phase. Smaller
    /// batches steal (and so balance) better at the cost of per-batch
    /// overhead; the value is provably invisible in every report
    /// (vehicles own their RNG streams and batch results merge in
    /// canonical order), so it is purely a performance knob.
    pub batch_size: u32,
    /// Worker threads for the epoch tick phase's work-stealing
    /// executor. `None` sizes it to the machine
    /// (`available_parallelism`); any value is clamped the same way.
    /// Like `batch_size`, provably invisible in every report.
    pub executor_threads: Option<u32>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 42,
            vehicles: 1000,
            shards: 1,
            tenants: 4,
            regions: 8,
            duration: SimDuration::from_secs(60),
            epoch: SimDuration::from_millis(500),
            request_period: SimDuration::from_secs(1),
            classes: [
                ClassSpec::detection(),
                ClassSpec::infotainment(),
                ClassSpec::pbeam_training(),
            ],
            cacheable_fraction: 0.3,
            edge_capacity: 16,
            edge_nodes: 4,
            tenant_queue_cap: 100,
            elastic: None,
            failover_penalty: SimDuration::from_millis(10),
            chaos: None,
            ingest: None,
            mobility: None,
            telemetry: false,
            telemetry_budget: None,
            span_spill: None,
            span_sample: None,
            checkpoint: None,
            batch_size: 32,
            executor_threads: None,
        }
    }
}

impl FleetConfig {
    /// A config with the given fleet size and shard count, defaults
    /// elsewhere.
    #[must_use]
    pub fn sized(vehicles: u32, shards: u32) -> Self {
        FleetConfig {
            vehicles,
            shards,
            ..FleetConfig::default()
        }
    }

    /// The cost model of one workload class.
    #[must_use]
    pub fn class(&self, class: WorkloadClass) -> &ClassSpec {
        &self.classes[class.index()]
    }

    /// Mutable access to one class's cost model.
    pub fn class_mut(&mut self, class: WorkloadClass) -> &mut ClassSpec {
        &mut self.classes[class.index()]
    }

    /// Replaces the class-mix weights (detection, infotainment, pBEAM
    /// training). A zero weight disables the class.
    #[must_use]
    pub fn with_class_weights(mut self, weights: [u32; 3]) -> Self {
        for (spec, w) in self.classes.iter_mut().zip(weights) {
            spec.weight = w;
        }
        self
    }

    /// Restricts the mix to detection only — the pre-refactor fleet's
    /// single-class workload, still useful as a baseline.
    #[must_use]
    pub fn detection_only(self) -> Self {
        self.with_class_weights([1, 0, 0])
    }

    /// Enables elastic XEdge capacity with the default policy bracketed
    /// around the configured lane pool (see [`LanePolicy::around`]).
    #[must_use]
    pub fn with_elastic_capacity(mut self) -> Self {
        self.elastic = Some(LanePolicy::around(self.edge_capacity));
        self
    }

    /// Enables sim-time telemetry capture: request spans and per-epoch
    /// registry samples land in `FleetReport::telemetry`.
    #[must_use]
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Caps resident telemetry at `bytes` (implies telemetry capture —
    /// see [`FleetConfig::telemetry_budget`] for the enforcement
    /// ladder).
    #[must_use]
    pub fn with_telemetry_budget(mut self, bytes: u64) -> Self {
        self.telemetry = true;
        self.telemetry_budget = Some(bytes);
        self
    }

    /// Streams spans to segment-rotating JSONL files under `dir`
    /// (implies telemetry capture — see [`FleetConfig::span_spill`]).
    #[must_use]
    pub fn with_span_spill(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.telemetry = true;
        self.span_spill = Some(dir.into());
        self
    }

    /// Keeps one in `keep_one_in` OK-path spans by a seeded
    /// `(vehicle, seq)` hash, and every non-OK span (implies telemetry
    /// capture — see [`FleetConfig::span_sample`]).
    #[must_use]
    pub fn with_span_sampling(mut self, keep_one_in: u32) -> Self {
        self.telemetry = true;
        self.span_sample = Some(keep_one_in);
        self
    }

    /// Sets the vehicles-per-batch granularity of the epoch tick phase
    /// (a pure performance knob — see [`FleetConfig::batch_size`]).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: u32) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Caps the work-stealing executor at `threads` workers (clamped to
    /// the machine; a pure performance knob — see
    /// [`FleetConfig::executor_threads`]).
    #[must_use]
    pub fn with_executor_threads(mut self, threads: u32) -> Self {
        self.executor_threads = Some(threads);
        self
    }

    /// The executor size to request from the worker pool:
    /// the configured cap, or "as many as the machine has".
    #[must_use]
    pub fn executor_pool_size(&self) -> usize {
        self.executor_threads
            .map_or(usize::MAX, |threads| threads as usize)
    }

    /// Sum of the class-mix weights.
    #[must_use]
    pub fn total_class_weight(&self) -> u32 {
        self.classes.iter().map(|s| s.weight).sum()
    }

    /// The class selected by a weighted draw in
    /// `[0, total_class_weight())` — the vehicle tick's per-request
    /// class pick (pure integer walk, deterministic per RNG stream).
    #[must_use]
    pub fn class_for_draw(&self, draw: u64) -> WorkloadClass {
        let mut rest = draw;
        for class in WorkloadClass::ALL {
            let w = u64::from(self.class(class).weight);
            if rest < w {
                return class;
            }
            rest -= w;
        }
        WorkloadClass::Detection
    }

    /// Scales every class's base XEdge service time (standing shared-
    /// tenancy load carried over from single-vehicle scenarios).
    pub fn scale_edge_service(&mut self, factor: f64) {
        for spec in &mut self.classes {
            spec.edge_service = spec.edge_service.mul_f64(factor.max(1.0));
        }
    }

    /// Adds a one-shot LTE outage covering `region` over
    /// `[start, start + duration)`. Vehicles in the region fail over to
    /// on-board compute for the window.
    #[must_use]
    pub fn with_regional_outage(
        mut self,
        region: u32,
        start: SimTime,
        outage: SimDuration,
    ) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::LinkOutage,
                region_label(region),
                start,
                outage,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Adds a one-shot XEdge node crash over `[start, start + outage)`.
    /// Regions homed on the node walk the degradation ladder for the
    /// window.
    #[must_use]
    pub fn with_edge_node_crash(mut self, node: u32, start: SimTime, outage: SimDuration) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::EdgeNodeCrash,
                edge_node_label(node),
                start,
                outage,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Adds a one-shot tenant quota flap: `tenant`'s admission cap
    /// shrinks to `factor` of nominal over `[start, start + flap)`.
    #[must_use]
    pub fn with_tenant_quota_flap(
        mut self,
        tenant: u32,
        factor: f64,
        start: SimTime,
        flap: SimDuration,
    ) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::TenantQuotaFlap { factor },
                tenant_label(tenant),
                start,
                flap,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Adds a one-shot handoff storm on `region`'s coverage over
    /// `[start, start + storm)`: its requests re-register through a
    /// neighbor region, paying the mobility handoff cost.
    #[must_use]
    pub fn with_handoff_storm(mut self, region: u32, start: SimTime, storm: SimDuration) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::RegionHandoffStorm,
                handoff_label(region),
                start,
                storm,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Enables geo-mobility with the default traffic mix (commute /
    /// roam / rush-hour). Vehicles cross region boundaries, pay
    /// cellular handoffs, and migrate between shards at barriers.
    #[must_use]
    pub fn with_mobility(self) -> Self {
        self.with_mobility_config(MobilityConfig::default())
    }

    /// Enables geo-mobility with an explicit traffic model.
    #[must_use]
    pub fn with_mobility_config(mut self, mobility: MobilityConfig) -> Self {
        self.mobility = Some(mobility);
        self
    }

    /// Enables the DDI ingestion pipeline with default parameters.
    #[must_use]
    pub fn with_ingest(self) -> Self {
        self.with_ingest_config(IngestConfig::default())
    }

    /// Enables the DDI ingestion pipeline with an explicit config.
    #[must_use]
    pub fn with_ingest_config(mut self, ingest: IngestConfig) -> Self {
        self.ingest = Some(ingest);
        self
    }

    /// Adds a one-shot regional DDI-collector outage over
    /// `[start, start + outage)`: uploads addressed to the collector
    /// bounce and walk the ingestion ladder (retry → defer → shed).
    #[must_use]
    pub fn with_collector_outage(
        mut self,
        region: u32,
        start: SimTime,
        outage: SimDuration,
    ) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::CollectorOutage,
                collector_label(region),
                start,
                outage,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Adds a one-shot storage-tier brownout: the shared DDI store's
    /// write throughput collapses to `factor` of nominal over
    /// `[start, start + brownout)` and collector queues back up.
    #[must_use]
    pub fn with_storage_brownout(
        mut self,
        factor: f64,
        start: SimTime,
        brownout: SimDuration,
    ) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::StorageBrownout { factor },
                STORE_LABEL.to_string(),
                start,
                brownout,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Adds a one-shot hard storage-write-error window: the DDI store
    /// accepts nothing over `[start, start + outage)`.
    #[must_use]
    pub fn with_storage_write_error(mut self, start: SimTime, outage: SimDuration) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::StorageWriteError,
                STORE_LABEL.to_string(),
                start,
                outage,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Enables durable barrier checkpointing: a complete-state snapshot
    /// every `interval_epochs` barriers, keeping the newest `retain`
    /// generations on the store.
    #[must_use]
    pub fn with_checkpoint(mut self, interval_epochs: u64, retain: usize) -> Self {
        self.checkpoint = Some(CheckpointConfig {
            interval_epochs,
            retain,
        });
        self
    }

    /// Adds a scripted engine crash: a supervised run
    /// (`FleetEngine::run_supervised`) dies at the barrier that closes
    /// epoch `epoch` and resumes from the newest valid snapshot,
    /// charging `downtime` of engine unavailability to the MTTR ledger.
    /// Plain `FleetEngine::run` ignores the crash — which is what makes
    /// straight and crash–resume runs comparable.
    #[must_use]
    pub fn with_engine_crash(mut self, epoch: u64, downtime: SimDuration) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let start = SimTime::ZERO + SimDuration::from_nanos(self.epoch.as_nanos() * epoch);
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::EngineCrash { epoch },
                ENGINE_LABEL.to_string(),
                start,
                downtime,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Adds a torn-write window on the snapshot store: snapshots
    /// written during `[start, start + window)` are truncated mid-write
    /// and must be rejected by checksum on restore.
    #[must_use]
    pub fn with_snapshot_torn_write(mut self, start: SimTime, window: SimDuration) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::SnapshotTornWrite,
                CKPT_STORE_LABEL.to_string(),
                start,
                window,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Adds a corruption window on the snapshot store: snapshots
    /// written during `[start, start + window)` suffer a bit-flip and
    /// must be rejected by checksum on restore.
    #[must_use]
    pub fn with_snapshot_corruption(mut self, start: SimTime, window: SimDuration) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::SnapshotCorruption,
                CKPT_STORE_LABEL.to_string(),
                start,
                window,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Attaches a pre-built fault plan (replacing any builders' faults
    /// accumulated so far).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Checks every count, duration and class spec, returning the first
    /// rule violated. [`crate::FleetEngine::try_new`] calls this at the
    /// gate so a bad config fails with a diagnosable error instead of a
    /// panic or a hung run downstream.
    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if self.vehicles == 0 {
            return Err(FleetConfigError::NoVehicles);
        }
        if self.shards == 0 {
            return Err(FleetConfigError::NoShards);
        }
        if self.shards > self.vehicles {
            return Err(FleetConfigError::MoreShardsThanVehicles {
                shards: self.shards,
                vehicles: self.vehicles,
            });
        }
        if self.tenants == 0 {
            return Err(FleetConfigError::NoTenants);
        }
        if self.tenants > self.vehicles {
            return Err(FleetConfigError::MoreTenantsThanVehicles {
                tenants: self.tenants,
                vehicles: self.vehicles,
            });
        }
        if self.regions == 0 {
            return Err(FleetConfigError::NoRegions);
        }
        if self.duration.is_zero() {
            return Err(FleetConfigError::ZeroDuration);
        }
        if self.epoch.is_zero() {
            return Err(FleetConfigError::ZeroEpoch);
        }
        if self.epoch > self.duration {
            return Err(FleetConfigError::EpochExceedsDuration {
                epoch: self.epoch,
                duration: self.duration,
            });
        }
        if self.request_period.is_zero() {
            return Err(FleetConfigError::ZeroRequestPeriod);
        }
        if !(0.0..=1.0).contains(&self.cacheable_fraction) {
            return Err(FleetConfigError::BadCacheableFraction(
                self.cacheable_fraction,
            ));
        }
        if self.edge_nodes == 0 {
            return Err(FleetConfigError::NoEdgeNodes);
        }
        if self.edge_nodes > self.edge_capacity {
            return Err(FleetConfigError::MoreNodesThanLanes {
                nodes: self.edge_nodes,
                lanes: self.edge_capacity,
            });
        }
        if self.total_class_weight() == 0 {
            return Err(FleetConfigError::EmptyClassMix);
        }
        for class in WorkloadClass::ALL {
            self.class(class).validate(class)?;
        }
        if let Some(ingest) = &self.ingest {
            ingest.validate()?;
        }
        if let Some(mobility) = &self.mobility {
            validate_mobility(mobility, self.shards, self.regions)?;
        }
        if let Some(ckpt) = &self.checkpoint {
            if ckpt.interval_epochs == 0 {
                return Err(FleetConfigError::ZeroCheckpointInterval);
            }
            // The snapshot at the final barrier is skipped (the run is
            // already complete), so the interval must leave at least one
            // *interior* barrier: interval < total epochs.
            let total_epochs = self.total_epochs();
            if ckpt.interval_epochs >= total_epochs {
                return Err(FleetConfigError::CheckpointIntervalExceedsRun {
                    interval_epochs: ckpt.interval_epochs,
                    total_epochs,
                });
            }
            if ckpt.retain == 0 {
                return Err(FleetConfigError::ZeroCheckpointRetention);
            }
        }
        if self.batch_size == 0 {
            return Err(FleetConfigError::ZeroBatchSize);
        }
        if self.executor_threads == Some(0) {
            return Err(FleetConfigError::ZeroExecutorThreads);
        }
        if self.telemetry_budget == Some(0) {
            return Err(FleetConfigError::ZeroTelemetryBudget);
        }
        if self.span_sample == Some(0) {
            return Err(FleetConfigError::ZeroSpanSample);
        }
        if !self.telemetry
            && (self.telemetry_budget.is_some()
                || self.span_spill.is_some()
                || self.span_sample.is_some())
        {
            return Err(FleetConfigError::TelemetrySinkWithoutTelemetry);
        }
        Ok(())
    }

    /// Number of epochs the run executes: `ceil(duration / epoch)` (the
    /// final epoch may be shorter than the nominal interval).
    #[must_use]
    pub fn total_epochs(&self) -> u64 {
        self.duration
            .as_nanos()
            .div_ceil(self.epoch.as_nanos().max(1))
    }

    /// The tenant a vehicle belongs to (interleaved assignment).
    #[must_use]
    pub fn tenant_of(&self, vehicle: u32) -> u32 {
        vehicle % self.tenants
    }

    /// The LTE region a vehicle drives in (contiguous blocks, so a
    /// region aligns with whole shards whenever `shards == regions`).
    #[must_use]
    pub fn region_of(&self, vehicle: u32) -> u32 {
        ((u64::from(vehicle) * u64::from(self.regions)) / u64::from(self.vehicles)) as u32
    }

    /// The id range shard `shard` owns: `[lo, hi)`, contiguous, covering
    /// all vehicles across shards.
    #[must_use]
    pub fn shard_range(&self, shard: u32) -> std::ops::Range<u32> {
        let v = u64::from(self.vehicles);
        let s = u64::from(self.shards);
        let lo = (v * u64::from(shard) / s) as u32;
        let hi = (v * (u64::from(shard) + 1) / s) as u32;
        lo..hi
    }

    /// The shard that owns a vehicle — the inverse of
    /// [`FleetConfig::shard_range`]. Telemetry uses it to stamp spans
    /// with a shard attribute without threading shard indices through
    /// the serving path.
    #[must_use]
    pub fn shard_of(&self, vehicle: u32) -> u32 {
        ((u64::from(vehicle) + 1) * u64::from(self.shards)).div_ceil(u64::from(self.vehicles))
            as u32
            - 1
    }

    /// The shard that owns a *region* when mobility is on: contiguous
    /// region blocks, the region-space analogue of
    /// [`FleetConfig::shard_range`]. A vehicle lives on the shard of
    /// its current region, so a boundary crossing can physically move
    /// its state between worker threads at the next barrier.
    #[must_use]
    pub fn shard_of_region(&self, region: u32) -> u32 {
        ((u64::from(region) * u64::from(self.shards)) / u64::from(self.regions)) as u32
    }

    /// The home shard a vehicle starts on: its initial region's shard
    /// when mobility is on, the contiguous id-range shard otherwise.
    #[must_use]
    pub fn initial_shard_of(&self, vehicle: u32) -> u32 {
        if self.mobility.is_some() {
            self.shard_of_region(self.region_of(vehicle))
        } else {
            self.shard_of(vehicle)
        }
    }

    /// End of simulated time for this run.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.duration
    }
}

/// Mobility-specific validation (the traffic model lives in
/// `vdap-mobility`, the shard/region coupling it must respect lives
/// here).
fn validate_mobility(
    mobility: &MobilityConfig,
    shards: u32,
    regions: u32,
) -> Result<(), FleetConfigError> {
    if regions < 2 {
        return Err(FleetConfigError::MobilityNeedsRegions);
    }
    if shards > regions {
        return Err(FleetConfigError::MoreShardsThanRegions { shards, regions });
    }
    let reject = |what: &str| Err(FleetConfigError::BadMobility(what.to_string()));
    if mobility.total_weight() == 0 {
        return reject("every route-profile weight is zero: nobody would move");
    }
    if mobility.dwell_mean.is_zero() {
        return reject("dwell mean must be positive");
    }
    let (lo, hi) = mobility.rush_window;
    if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo >= hi {
        return reject("rush window must be a non-empty sub-range of [0, 1]");
    }
    if !(mobility.downtown_fraction > 0.0 && mobility.downtown_fraction <= 1.0) {
        return reject("downtown fraction must be in (0, 1]");
    }
    if mobility.chord_fraction < 0.0 {
        return reject("chord fraction must be non-negative");
    }
    if mobility.segment_capacity == 0 {
        return reject("segment capacity must be positive");
    }
    Ok(())
}

/// The fault-plan target label for a region's LTE coverage.
#[must_use]
pub fn region_label(region: u32) -> String {
    format!("region{region}/lte")
}

/// The fault-plan target label for a physical XEdge node.
#[must_use]
pub fn edge_node_label(node: u32) -> String {
    format!("xedge/node{node}")
}

/// The fault-plan target label for a tenant's admission quota. Matches
/// [`vdap_edgeos::TenantId`]'s `Display` so flap windows and tenant
/// reliability records share a vocabulary.
#[must_use]
pub fn tenant_label(tenant: u32) -> String {
    format!("tenant{tenant}")
}

/// The fault-plan target label for a region's handoff behaviour
/// (distinct from its LTE outage label: a storm degrades, an outage
/// kills).
#[must_use]
pub fn handoff_label(region: u32) -> String {
    format!("region{region}/handoff")
}

/// The fault-plan target label for a region's DDI collector (distinct
/// from its LTE coverage: an LTE outage kills *all* traffic, a
/// collector outage only bounces ingestion uploads).
#[must_use]
pub fn collector_label(region: u32) -> String {
    format!("region{region}/collector")
}

/// The fault-plan target label for the shared DDI storage tier.
pub const STORE_LABEL: &str = "ddi/store";

/// The fault-plan target label for the fleet engine process itself
/// (scripted [`vdap_fault::FaultKind::EngineCrash`] faults).
pub const ENGINE_LABEL: &str = "engine";

/// The fault-plan target label for the snapshot store (torn-write and
/// corruption chaos on checkpoint persistence).
pub const CKPT_STORE_LABEL: &str = "ckpt/store";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_the_fleet() {
        for shards in [1u32, 2, 3, 7, 8] {
            let cfg = FleetConfig::sized(1000, shards);
            let mut covered = 0u32;
            let mut next = 0u32;
            for s in 0..shards {
                let r = cfg.shard_range(s);
                assert_eq!(r.start, next, "ranges must be contiguous");
                next = r.end;
                covered += r.end - r.start;
            }
            assert_eq!(covered, 1000);
            assert_eq!(next, 1000);
        }
    }

    #[test]
    fn shard_of_inverts_shard_range() {
        for (vehicles, shards) in [(10u32, 3u32), (1000, 8), (1000, 7), (7, 7), (5, 1)] {
            let cfg = FleetConfig::sized(vehicles, shards);
            for s in 0..shards {
                for v in cfg.shard_range(s) {
                    assert_eq!(cfg.shard_of(v), s, "vehicle {v} of {vehicles}/{shards}");
                }
            }
        }
    }

    #[test]
    fn regions_align_with_shards_when_counts_match() {
        let cfg = FleetConfig::sized(1000, 8);
        for s in 0..8 {
            let r = cfg.shard_range(s);
            let regions: std::collections::BTreeSet<u32> = r.map(|v| cfg.region_of(v)).collect();
            assert_eq!(regions.len(), 1, "shard {s} spans one region");
        }
    }

    #[test]
    fn mappings_ignore_shard_count() {
        let a = FleetConfig::sized(500, 1);
        let b = FleetConfig::sized(500, 8);
        for v in 0..500 {
            assert_eq!(a.tenant_of(v), b.tenant_of(v));
            assert_eq!(a.region_of(v), b.region_of(v));
        }
    }

    #[test]
    fn regional_outage_builds_a_plan() {
        let cfg = FleetConfig::default().with_regional_outage(
            3,
            SimTime::from_secs(20),
            SimDuration::from_secs(10),
        );
        let inj = cfg.chaos.expect("plan present").compile();
        assert!(inj.is_down(&region_label(3), SimTime::from_secs(25)));
        assert!(!inj.is_down(&region_label(3), SimTime::from_secs(35)));
        assert!(!inj.is_down(&region_label(2), SimTime::from_secs(25)));
    }

    #[test]
    fn default_config_validates_with_the_full_mix() {
        let cfg = FleetConfig::default();
        assert_eq!(cfg.total_class_weight(), 10);
        assert!(cfg.validate().is_ok());
        assert!(cfg.detection_only().validate().is_ok());
    }

    #[test]
    fn zero_shards_rejected_with_reason() {
        let cfg = FleetConfig {
            shards: 0,
            ..FleetConfig::default()
        };
        assert_eq!(cfg.validate(), Err(FleetConfigError::NoShards));
        assert!(cfg.validate().unwrap_err().to_string().contains("shard"));
    }

    #[test]
    fn more_shards_than_vehicles_rejected_with_reason() {
        let err = FleetConfig::sized(2, 4).validate().unwrap_err();
        assert_eq!(
            err,
            FleetConfigError::MoreShardsThanVehicles {
                shards: 4,
                vehicles: 2
            }
        );
        assert!(err.to_string().contains("more shards than vehicles"));
    }

    #[test]
    fn more_tenants_than_vehicles_rejected_with_reason() {
        let mut cfg = FleetConfig::sized(8, 1);
        cfg.tenants = 9;
        let err = cfg.validate().unwrap_err();
        assert_eq!(
            err,
            FleetConfigError::MoreTenantsThanVehicles {
                tenants: 9,
                vehicles: 8
            }
        );
        assert!(err.to_string().contains("tenants"));
    }

    #[test]
    fn epoch_past_duration_rejected_with_reason() {
        let cfg = FleetConfig {
            duration: SimDuration::from_secs(1),
            epoch: SimDuration::from_secs(2),
            ..FleetConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, FleetConfigError::EpochExceedsDuration { .. }));
        assert!(err.to_string().contains("exceeds duration"));
    }

    #[test]
    fn empty_class_mix_rejected_with_reason() {
        let cfg = FleetConfig::default().with_class_weights([0, 0, 0]);
        assert_eq!(cfg.validate(), Err(FleetConfigError::EmptyClassMix));
    }

    #[test]
    fn bad_class_spec_names_the_class() {
        let mut cfg = FleetConfig::default();
        cfg.class_mut(WorkloadClass::Infotainment).work_units = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("infotainment"), "{err}");
        // A disabled class may carry junk — it never serves.
        let mut off = FleetConfig::default().with_class_weights([1, 0, 1]);
        off.class_mut(WorkloadClass::Infotainment).work_units = 0;
        assert!(off.validate().is_ok());
    }

    #[test]
    fn ingest_config_validates_and_builders_target_ddi_labels() {
        let cfg = FleetConfig::default()
            .with_ingest()
            .with_collector_outage(2, SimTime::from_secs(5), SimDuration::from_secs(10))
            .with_storage_brownout(0.2, SimTime::from_secs(20), SimDuration::from_secs(5))
            .with_storage_write_error(SimTime::from_secs(40), SimDuration::from_secs(2));
        assert!(cfg.validate().is_ok());
        let inj = cfg.chaos.clone().expect("plan present").compile();
        assert!(inj.is_down(&collector_label(2), SimTime::from_secs(6)));
        assert!(!inj.is_down(&collector_label(1), SimTime::from_secs(6)));
        let factor = inj.brownout_factor(STORE_LABEL, SimTime::from_secs(22));
        assert!((factor - 0.2).abs() < 1e-12, "{factor}");
        assert!(inj.is_down(STORE_LABEL, SimTime::from_secs(41)));
    }

    #[test]
    fn bad_ingest_rejected_with_reason() {
        let mut cfg = FleetConfig::default().with_ingest();
        cfg.ingest.as_mut().unwrap().collector_queue_records = 1;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, FleetConfigError::BadIngest(_)));
        assert!(err.to_string().contains("collector queue"), "{err}");
        let mut cfg = FleetConfig::default().with_ingest();
        cfg.ingest.as_mut().unwrap().storage_records_per_sec = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn mobility_validation_couples_shards_to_regions() {
        let cfg = FleetConfig::sized(256, 8).with_mobility();
        assert!(cfg.validate().is_ok());
        let mut wide = FleetConfig::sized(256, 16).with_mobility();
        assert_eq!(
            wide.validate(),
            Err(FleetConfigError::MoreShardsThanRegions {
                shards: 16,
                regions: 8
            })
        );
        wide.regions = 16;
        assert!(wide.validate().is_ok());
        let mut solo = FleetConfig::sized(64, 1).with_mobility();
        solo.regions = 1;
        assert_eq!(solo.validate(), Err(FleetConfigError::MobilityNeedsRegions));
        let mut bad = FleetConfig::sized(64, 1).with_mobility();
        bad.mobility.as_mut().unwrap().rush_window = (0.5, 0.4);
        let err = bad.validate().unwrap_err();
        assert!(matches!(err, FleetConfigError::BadMobility(_)));
        assert!(err.to_string().contains("rush window"), "{err}");
    }

    #[test]
    fn shard_of_region_partitions_regions_and_tracks_initial_shard() {
        let cfg = FleetConfig::sized(1000, 3).with_mobility();
        let mut last = 0;
        for r in 0..cfg.regions {
            let s = cfg.shard_of_region(r);
            assert!(s >= last && s < cfg.shards, "monotone onto [0, shards)");
            last = s;
        }
        assert_eq!(cfg.shard_of_region(cfg.regions - 1), cfg.shards - 1);
        for v in [0u32, 17, 499, 999] {
            assert_eq!(
                cfg.initial_shard_of(v),
                cfg.shard_of_region(cfg.region_of(v))
            );
        }
        let fixed = FleetConfig::sized(1000, 3);
        assert_eq!(fixed.initial_shard_of(999), fixed.shard_of(999));
    }

    #[test]
    fn checkpoint_validation_bounds_interval_and_retention() {
        let cfg = FleetConfig::default().with_checkpoint(8, 3);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.total_epochs(), 120);
        let zero = FleetConfig::default().with_checkpoint(0, 3);
        assert_eq!(
            zero.validate(),
            Err(FleetConfigError::ZeroCheckpointInterval)
        );
        // 60 s / 500 ms = 120 epochs; an interval of 120 or more never
        // reaches an interior barrier.
        let wide = FleetConfig::default().with_checkpoint(120, 3);
        let err = wide.validate().unwrap_err();
        assert_eq!(
            err,
            FleetConfigError::CheckpointIntervalExceedsRun {
                interval_epochs: 120,
                total_epochs: 120
            }
        );
        assert!(err.to_string().contains("no barrier"), "{err}");
        assert!(FleetConfig::default()
            .with_checkpoint(119, 3)
            .validate()
            .is_ok());
        let none_kept = FleetConfig::default().with_checkpoint(8, 0);
        assert_eq!(
            none_kept.validate(),
            Err(FleetConfigError::ZeroCheckpointRetention)
        );
    }

    #[test]
    fn executor_knobs_validate_with_reasons() {
        let zero_batch = FleetConfig::default().with_batch_size(0);
        let err = zero_batch.validate().unwrap_err();
        assert_eq!(err, FleetConfigError::ZeroBatchSize);
        assert!(err.to_string().contains("batch size"), "{err}");
        let zero_threads = FleetConfig::default().with_executor_threads(0);
        let err = zero_threads.validate().unwrap_err();
        assert_eq!(err, FleetConfigError::ZeroExecutorThreads);
        assert!(err.to_string().contains("worker thread"), "{err}");
        // Any positive combination is legal — both knobs are clamped,
        // not rejected, at the high end.
        let big = FleetConfig::default()
            .with_batch_size(1_000_000)
            .with_executor_threads(4096);
        assert!(big.validate().is_ok());
        assert_eq!(big.executor_pool_size(), 4096);
        assert_eq!(FleetConfig::default().executor_pool_size(), usize::MAX);
    }

    #[test]
    fn telemetry_sink_knobs_validate_with_reasons() {
        // The builders imply telemetry capture.
        let cfg = FleetConfig::default()
            .with_telemetry_budget(8 * 1024 * 1024)
            .with_span_spill("target/spill-test")
            .with_span_sampling(8);
        assert!(cfg.telemetry);
        assert!(cfg.validate().is_ok());

        let zero_budget = FleetConfig::default().with_telemetry_budget(0);
        let err = zero_budget.validate().unwrap_err();
        assert_eq!(err, FleetConfigError::ZeroTelemetryBudget);
        assert!(err.to_string().contains("budget"), "{err}");

        let zero_sample = FleetConfig::default().with_span_sampling(0);
        let err = zero_sample.validate().unwrap_err();
        assert_eq!(err, FleetConfigError::ZeroSpanSample);
        assert!(err.to_string().contains("at least 1"), "{err}");
        // keep-one-in-1 is the explicit "disable sampling" spelling.
        assert!(FleetConfig::default()
            .with_span_sampling(1)
            .validate()
            .is_ok());

        // A knob set by hand with telemetry forced back off is a
        // certain mistake, caught at the gate.
        let mut orphan = FleetConfig::default().with_telemetry_budget(1024);
        orphan.telemetry = false;
        let err = orphan.validate().unwrap_err();
        assert_eq!(err, FleetConfigError::TelemetrySinkWithoutTelemetry);
        assert!(err.to_string().contains("with_telemetry"), "{err}");
    }

    #[test]
    fn engine_crash_and_snapshot_chaos_builders_target_ckpt_labels() {
        let cfg = FleetConfig::default()
            .with_checkpoint(8, 3)
            .with_engine_crash(20, SimDuration::from_millis(750))
            .with_snapshot_torn_write(SimTime::from_secs(7), SimDuration::from_secs(1))
            .with_snapshot_corruption(SimTime::from_secs(12), SimDuration::from_secs(1));
        assert!(cfg.validate().is_ok());
        let inj = cfg.chaos.clone().expect("plan present").compile();
        assert_eq!(inj.engine_crashes(ENGINE_LABEL), vec![20]);
        assert!(inj.snapshot_torn(CKPT_STORE_LABEL, SimTime::from_secs(7)));
        assert!(!inj.snapshot_torn(CKPT_STORE_LABEL, SimTime::from_secs(9)));
        assert!(inj.snapshot_corrupt(CKPT_STORE_LABEL, SimTime::from_secs(12)));
        assert!(!inj.snapshot_corrupt(CKPT_STORE_LABEL, SimTime::from_secs(7)));
        // The crash window seeds the MTTR ledger at epoch 20 * 500 ms.
        let faults = cfg.chaos.as_ref().unwrap().faults();
        let crash = faults
            .iter()
            .find(|s| s.target == ENGINE_LABEL)
            .expect("crash fault");
        assert_eq!(crash.start, SimTime::from_secs(10));
    }

    #[test]
    fn elastic_defaults_bracket_the_nominal_pool() {
        let cfg = FleetConfig::default().with_elastic_capacity();
        let policy = cfg.elastic.expect("policy set");
        assert_eq!(policy.min_lanes, 8);
        assert_eq!(policy.max_lanes, 64);
    }
}
