//! Fleet scenario configuration and the vehicle → shard/tenant/region
//! partition.
//!
//! Every mapping here is a pure function of the vehicle id and the
//! fleet-wide counts — never of the shard count — which is the root of
//! the engine's shard-count invariance: re-partitioning the same fleet
//! across a different number of worker shards reassigns *where* each
//! vehicle's events execute, but not *what* they compute.

use vdap_fault::FaultPlan;
use vdap_sim::{SimDuration, SimTime};

/// Configuration for one fleet run.
///
/// Defaults model the paper's setting scaled to a small city fleet:
/// 1,000 vehicles streaming perception requests to a shared XEdge
/// deployment over LTE for one simulated minute.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Master scenario seed; every random stream derives from it.
    pub seed: u64,
    /// Fleet size.
    pub vehicles: u32,
    /// Worker shards the fleet is partitioned into (threads used).
    pub shards: u32,
    /// Service tenants sharing the XEdge servers.
    pub tenants: u32,
    /// Geographic LTE regions (cell coverage areas).
    pub regions: u32,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Conservative-synchronization epoch (barrier interval).
    pub epoch: SimDuration,
    /// Mean per-vehicle request period (±10% deterministic jitter).
    pub request_period: SimDuration,
    /// Uplink payload per request (compressed perception features).
    pub upload_bytes: u64,
    /// Downlink payload per response.
    pub download_bytes: u64,
    /// Base XEdge service time per request at an idle server.
    pub edge_service: SimDuration,
    /// On-board fallback compute time when a request cannot reach the
    /// edge (regional outage or admission reject).
    pub vehicle_service: SimDuration,
    /// Concurrent request lanes per XEdge deployment.
    pub edge_capacity: u32,
    /// Physical XEdge nodes the lane pool is partitioned across; lane
    /// `i` belongs to node `i % edge_nodes` and region `r` is homed on
    /// node `r % edge_nodes`. An [`vdap_fault::FaultKind::EdgeNodeCrash`]
    /// takes down one node's whole lane share.
    pub edge_nodes: u32,
    /// Per-tenant outstanding-request cap at the XEdge admission gate.
    pub tenant_queue_cap: usize,
    /// Deficit round-robin quantum (service cost units per visit).
    pub drr_quantum: u64,
    /// Service cost units charged per request in the fair queue.
    pub work_units: u64,
    /// Fraction of requests that are cacheable scan-type work eligible
    /// for V2V result sharing.
    pub cacheable_fraction: f64,
    /// Re-planning latency a vehicle pays when failing over to on-board
    /// compute.
    pub failover_penalty: SimDuration,
    /// End-to-end deadline budget per request: the degradation ladder's
    /// rung-1 retry may probe a crashed node only this long past the
    /// request's arrival before falling through to the next rung.
    pub request_deadline: SimDuration,
    /// Service-time multiplier for rung-3 local degraded execution —
    /// the cheaper, lower-accuracy on-VCU pipeline.
    pub degraded_service_factor: f64,
    /// Optional fault plan (e.g. a regional LTE outage).
    pub chaos: Option<FaultPlan>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 42,
            vehicles: 1000,
            shards: 1,
            tenants: 4,
            regions: 8,
            duration: SimDuration::from_secs(60),
            epoch: SimDuration::from_millis(500),
            request_period: SimDuration::from_secs(1),
            upload_bytes: 20_000,
            download_bytes: 2_000,
            edge_service: SimDuration::from_millis(8),
            vehicle_service: SimDuration::from_millis(45),
            edge_capacity: 16,
            edge_nodes: 4,
            tenant_queue_cap: 100,
            drr_quantum: 8,
            work_units: 8,
            cacheable_fraction: 0.3,
            failover_penalty: SimDuration::from_millis(10),
            request_deadline: SimDuration::from_secs(3),
            degraded_service_factor: 0.6,
            chaos: None,
        }
    }
}

impl FleetConfig {
    /// A config with the given fleet size and shard count, defaults
    /// elsewhere.
    #[must_use]
    pub fn sized(vehicles: u32, shards: u32) -> Self {
        FleetConfig {
            vehicles,
            shards,
            ..FleetConfig::default()
        }
    }

    /// Adds a one-shot LTE outage covering `region` over
    /// `[start, start + duration)`. Vehicles in the region fail over to
    /// on-board compute for the window.
    #[must_use]
    pub fn with_regional_outage(
        mut self,
        region: u32,
        start: SimTime,
        outage: SimDuration,
    ) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::LinkOutage,
                region_label(region),
                start,
                outage,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Adds a one-shot XEdge node crash over `[start, start + outage)`.
    /// Regions homed on the node walk the degradation ladder for the
    /// window.
    #[must_use]
    pub fn with_edge_node_crash(mut self, node: u32, start: SimTime, outage: SimDuration) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::EdgeNodeCrash,
                edge_node_label(node),
                start,
                outage,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Adds a one-shot tenant quota flap: `tenant`'s admission cap
    /// shrinks to `factor` of nominal over `[start, start + flap)`.
    #[must_use]
    pub fn with_tenant_quota_flap(
        mut self,
        tenant: u32,
        factor: f64,
        start: SimTime,
        flap: SimDuration,
    ) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::TenantQuotaFlap { factor },
                tenant_label(tenant),
                start,
                flap,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Adds a one-shot handoff storm on `region`'s coverage over
    /// `[start, start + storm)`: its requests re-register through a
    /// neighbor region, paying the mobility handoff cost.
    #[must_use]
    pub fn with_handoff_storm(mut self, region: u32, start: SimTime, storm: SimDuration) -> Self {
        use vdap_fault::{FaultKind, FaultSpec};
        let plan = self
            .chaos
            .unwrap_or_else(|| FaultPlan::new(self.duration))
            .with_fault(FaultSpec::new(
                FaultKind::RegionHandoffStorm,
                handoff_label(region),
                start,
                storm,
            ));
        self.chaos = Some(plan);
        self
    }

    /// Panics unless counts and durations are usable.
    pub(crate) fn validate(&self) {
        assert!(self.vehicles > 0, "fleet needs at least one vehicle");
        assert!(self.shards > 0, "fleet needs at least one shard");
        assert!(
            self.shards <= self.vehicles,
            "more shards than vehicles is meaningless"
        );
        assert!(self.tenants > 0, "fleet needs at least one tenant");
        assert!(self.regions > 0, "fleet needs at least one region");
        assert!(!self.epoch.is_zero(), "epoch must be positive");
        assert!(!self.duration.is_zero(), "duration must be positive");
        assert!(
            !self.request_period.is_zero(),
            "request period must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.cacheable_fraction),
            "cacheable fraction must be a probability"
        );
        assert!(self.edge_nodes > 0, "edge needs at least one node");
        assert!(
            self.edge_nodes <= self.edge_capacity,
            "every XEdge node needs at least one lane"
        );
        assert!(
            self.degraded_service_factor > 0.0 && self.degraded_service_factor <= 1.0,
            "degraded service factor must be in (0, 1]"
        );
        assert!(
            !self.request_deadline.is_zero(),
            "request deadline must be positive"
        );
    }

    /// The tenant a vehicle belongs to (interleaved assignment).
    #[must_use]
    pub fn tenant_of(&self, vehicle: u32) -> u32 {
        vehicle % self.tenants
    }

    /// The LTE region a vehicle drives in (contiguous blocks, so a
    /// region aligns with whole shards whenever `shards == regions`).
    #[must_use]
    pub fn region_of(&self, vehicle: u32) -> u32 {
        ((u64::from(vehicle) * u64::from(self.regions)) / u64::from(self.vehicles)) as u32
    }

    /// The id range shard `shard` owns: `[lo, hi)`, contiguous, covering
    /// all vehicles across shards.
    #[must_use]
    pub fn shard_range(&self, shard: u32) -> std::ops::Range<u32> {
        let v = u64::from(self.vehicles);
        let s = u64::from(self.shards);
        let lo = (v * u64::from(shard) / s) as u32;
        let hi = (v * (u64::from(shard) + 1) / s) as u32;
        lo..hi
    }

    /// End of simulated time for this run.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.duration
    }
}

/// The fault-plan target label for a region's LTE coverage.
#[must_use]
pub fn region_label(region: u32) -> String {
    format!("region{region}/lte")
}

/// The fault-plan target label for a physical XEdge node.
#[must_use]
pub fn edge_node_label(node: u32) -> String {
    format!("xedge/node{node}")
}

/// The fault-plan target label for a tenant's admission quota. Matches
/// [`vdap_edgeos::TenantId`]'s `Display` so flap windows and tenant
/// reliability records share a vocabulary.
#[must_use]
pub fn tenant_label(tenant: u32) -> String {
    format!("tenant{tenant}")
}

/// The fault-plan target label for a region's handoff behaviour
/// (distinct from its LTE outage label: a storm degrades, an outage
/// kills).
#[must_use]
pub fn handoff_label(region: u32) -> String {
    format!("region{region}/handoff")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_the_fleet() {
        for shards in [1u32, 2, 3, 7, 8] {
            let cfg = FleetConfig::sized(1000, shards);
            let mut covered = 0u32;
            let mut next = 0u32;
            for s in 0..shards {
                let r = cfg.shard_range(s);
                assert_eq!(r.start, next, "ranges must be contiguous");
                next = r.end;
                covered += r.end - r.start;
            }
            assert_eq!(covered, 1000);
            assert_eq!(next, 1000);
        }
    }

    #[test]
    fn regions_align_with_shards_when_counts_match() {
        let cfg = FleetConfig::sized(1000, 8);
        for s in 0..8 {
            let r = cfg.shard_range(s);
            let regions: std::collections::BTreeSet<u32> = r.map(|v| cfg.region_of(v)).collect();
            assert_eq!(regions.len(), 1, "shard {s} spans one region");
        }
    }

    #[test]
    fn mappings_ignore_shard_count() {
        let a = FleetConfig::sized(500, 1);
        let b = FleetConfig::sized(500, 8);
        for v in 0..500 {
            assert_eq!(a.tenant_of(v), b.tenant_of(v));
            assert_eq!(a.region_of(v), b.region_of(v));
        }
    }

    #[test]
    fn regional_outage_builds_a_plan() {
        let cfg = FleetConfig::default().with_regional_outage(
            3,
            SimTime::from_secs(20),
            SimDuration::from_secs(10),
        );
        let inj = cfg.chaos.expect("plan present").compile();
        assert!(inj.is_down(&region_label(3), SimTime::from_secs(25)));
        assert!(!inj.is_down(&region_label(3), SimTime::from_secs(35)));
        assert!(!inj.is_down(&region_label(2), SimTime::from_secs(25)));
    }

    #[test]
    #[should_panic(expected = "shards")]
    fn more_shards_than_vehicles_rejected() {
        FleetConfig::sized(2, 4).validate();
    }
}
