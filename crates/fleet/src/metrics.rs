//! Fleet observability: mergeable per-shard metrics and the run report.
//!
//! Shards keep local [`FleetMetrics`]; the engine merges them with the
//! engine-side metrics at the end of a run. Every field is either an
//! integer counter or a [`StreamingHistogram`], so the merge is
//! associative and commutative bit-for-bit — the property the
//! shard-count-invariance test (`tests/props.rs`) pins down.

use std::fmt::Write as _;

use vdap_sim::{ReliabilityStats, SimDuration, StreamingHistogram};

/// Mergeable fleet-level measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// End-to-end request latency (ms), all request outcomes.
    pub e2e_latency_ms: StreamingHistogram,
    /// Vehicle-side energy per request (J).
    pub energy_per_request_j: StreamingHistogram,
    /// Admitted XEdge batch size observed at each epoch barrier.
    pub queue_depth: StreamingHistogram,
    /// Requests issued by vehicles.
    pub requests: u64,
    /// Requests served by the shared XEdge deployment.
    pub edge_served: u64,
    /// Requests satisfied from a V2V-shared result.
    pub collab_hits: u64,
    /// Requests that failed over to on-board compute (regional outage).
    pub failovers: u64,
    /// Requests bounced by per-tenant admission control under nominal
    /// quotas (plain overload, not chaos).
    pub rejected: u64,
    /// In-flight requests re-queued off crashed XEdge lanes.
    pub requeued: u64,
    /// Requests rescued by rung-1 deadline-aware retry (sub-count of
    /// `edge_served`).
    pub retry_rescued: u64,
    /// Requests served through a neighbor region's node at a handoff
    /// cost (rung 2, sub-count of `edge_served`).
    pub handoffs: u64,
    /// Requests that fell to rung-3 local degraded execution.
    pub local_fallbacks: u64,
}

impl Default for FleetMetrics {
    fn default() -> Self {
        FleetMetrics::new()
    }
}

impl FleetMetrics {
    /// Creates empty metrics.
    #[must_use]
    pub fn new() -> Self {
        FleetMetrics {
            e2e_latency_ms: StreamingHistogram::new("e2e_latency_ms"),
            energy_per_request_j: StreamingHistogram::new("energy_per_request_j"),
            queue_depth: StreamingHistogram::new("xedge_queue_depth"),
            requests: 0,
            edge_served: 0,
            collab_hits: 0,
            failovers: 0,
            rejected: 0,
            requeued: 0,
            retry_rescued: 0,
            handoffs: 0,
            local_fallbacks: 0,
        }
    }

    /// Merges another shard's metrics into this one (order-independent).
    pub fn merge(&mut self, other: &FleetMetrics) {
        self.e2e_latency_ms.merge(&other.e2e_latency_ms);
        self.energy_per_request_j.merge(&other.energy_per_request_j);
        self.queue_depth.merge(&other.queue_depth);
        self.requests += other.requests;
        self.edge_served += other.edge_served;
        self.collab_hits += other.collab_hits;
        self.failovers += other.failovers;
        self.rejected += other.rejected;
        self.requeued += other.requeued;
        self.retry_rescued += other.retry_rescued;
        self.handoffs += other.handoffs;
        self.local_fallbacks += other.local_fallbacks;
    }

    /// Fraction of issued requests served from the V2V cache.
    #[must_use]
    pub fn collab_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.collab_hits as f64 / self.requests as f64
        }
    }
}

/// The result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Merged fleet metrics (all shards + engine).
    pub metrics: FleetMetrics,
    /// Fleet-level reliability accounting (regional outages, node
    /// crashes, per-tenant MTTR, failovers, degraded-mode seconds).
    pub reliability: ReliabilityStats,
    /// Availability per faulted component label (regions, XEdge nodes,
    /// tenants) over the run horizon.
    pub region_availability: Vec<(String, f64)>,
    /// Vehicles simulated.
    pub vehicles: u32,
    /// Shards the run used (excluded from [`FleetReport::summary`]).
    pub shards: u32,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Total discrete events processed across shards.
    pub events_processed: u64,
    /// Requests offered to the XEdge admission gate.
    pub admission_offered: u64,
    /// Requests rejected at the admission gate.
    pub admission_rejected: u64,
}

impl FleetReport {
    /// Admission reject rate over the run.
    #[must_use]
    pub fn reject_rate(&self) -> f64 {
        if self.admission_offered == 0 {
            0.0
        } else {
            self.admission_rejected as f64 / self.admission_offered as f64
        }
    }

    /// A canonical multi-line text summary of the run's aggregate
    /// metrics.
    ///
    /// Deliberately excludes the shard count and any wall-clock figure:
    /// same-seed runs with different shard counts must produce
    /// **byte-identical** summaries, which is the fleet engine's
    /// determinism contract (and is enforced by `repro -- fleet` and the
    /// property tests).
    #[must_use]
    pub fn summary(&self) -> String {
        let m = &self.metrics;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: vehicles={} duration={:.1}s events={} requests={}",
            self.vehicles,
            self.duration.as_secs_f64(),
            self.events_processed,
            m.requests
        );
        let _ = writeln!(
            out,
            "e2e_ms: p50={:.3} p95={:.3} p99={:.3} mean={:.3} max={:.3}",
            m.e2e_latency_ms.quantile(0.5),
            m.e2e_latency_ms.quantile(0.95),
            m.e2e_latency_ms.quantile(0.99),
            m.e2e_latency_ms.mean(),
            m.e2e_latency_ms.max()
        );
        let _ = writeln!(
            out,
            "energy_j: mean={:.4} p95={:.4}",
            m.energy_per_request_j.mean(),
            m.energy_per_request_j.quantile(0.95)
        );
        let _ = writeln!(
            out,
            "xedge: served={} queue_depth_mean={:.2} queue_depth_max={:.0}",
            m.edge_served,
            m.queue_depth.mean(),
            m.queue_depth.max()
        );
        let _ = writeln!(
            out,
            "admission: offered={} rejected={} reject_rate={:.4}",
            self.admission_offered,
            self.admission_rejected,
            self.reject_rate()
        );
        let _ = writeln!(
            out,
            "collab: hits={} hit_rate={:.4}",
            m.collab_hits,
            m.collab_hit_rate()
        );
        let _ = writeln!(
            out,
            "reliability: faults={} failovers={} failover_ms_mean={:.3} mttr_ms_mean={:.3}",
            self.reliability.faults_injected(),
            m.failovers,
            self.reliability.failover_latency().mean(),
            self.reliability.mttr().mean()
        );
        let _ = writeln!(
            out,
            "ladder: requeued={} retry_rescued={} retries={} handoffs={} local_fallbacks={} degraded_s={:.3}",
            m.requeued,
            m.retry_rescued,
            self.reliability.retry_count(),
            m.handoffs,
            m.local_fallbacks,
            self.reliability.total_degraded_time().as_secs_f64()
        );
        for (region, avail) in &self.region_availability {
            let _ = writeln!(out, "availability[{region}]={avail:.6}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_samples() {
        let mut a = FleetMetrics::new();
        a.requests = 5;
        a.e2e_latency_ms.record(10.0);
        let mut b = FleetMetrics::new();
        b.requests = 7;
        b.collab_hits = 2;
        b.e2e_latency_ms.record(30.0);
        a.merge(&b);
        assert_eq!(a.requests, 12);
        assert_eq!(a.collab_hits, 2);
        assert_eq!(a.e2e_latency_ms.count(), 2);
        assert!((a.e2e_latency_ms.mean() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn summary_is_stable_text() {
        let report = FleetReport {
            metrics: FleetMetrics::new(),
            reliability: ReliabilityStats::new(),
            region_availability: vec![("region0/lte".to_string(), 0.9)],
            vehicles: 10,
            shards: 2,
            duration: SimDuration::from_secs(60),
            events_processed: 0,
            admission_offered: 0,
            admission_rejected: 0,
        };
        let s = report.summary();
        assert!(s.contains("fleet: vehicles=10 duration=60.0s"));
        assert!(s.contains("availability[region0/lte]=0.900000"));
        assert!(!s.contains("shards"), "summary must not leak shard count");
    }
}
