//! Fleet observability: mergeable per-shard metrics and the run report.
//!
//! Shards keep local [`FleetMetrics`]; the engine merges them with the
//! engine-side metrics at the end of a run. Every field is either an
//! integer counter, a [`StreamingHistogram`], or a key-summed map, so
//! the merge is associative and commutative bit-for-bit — the property
//! the shard-count-invariance test (`tests/props.rs`) pins down.
//!
//! Since the workload-class refactor the request stream is accounted
//! twice: fleet-wide (the legacy counters and histograms) and per
//! [`WorkloadClass`] ([`ClassMetrics`]), so a report can show that a
//! missed pBEAM round and a missed pedestrian-alert frame took
//! different degradation paths. The per-tenant served work-unit ledger
//! feeds the DRR fairness property test, and the elastic counters track
//! the lane pool across barriers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use vdap_edgeos::WorkloadClass;
use vdap_mobility::MobilityMetrics;
use vdap_obs::{
    sample_keeps, EngineProfile, JsonlSpillSink, MetricsRegistry, RequestSpan, SpanLog, SpanSink,
    SPAN_RESIDENT_BYTES,
};
use vdap_sim::{ReliabilityStats, SimDuration, StreamingHistogram};

use crate::ckpt::SnapshotDiagnostics;
use crate::ingest::IngestMetrics;

/// Per-[`WorkloadClass`] outcome accounting (one lane of the fleet-wide
/// request partition).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMetrics {
    /// End-to-end latency (ms) of this class's requests, all outcomes.
    pub e2e_latency_ms: StreamingHistogram,
    /// Requests issued.
    pub requests: u64,
    /// Requests served by the XEdge deployment.
    pub edge_served: u64,
    /// Requests satisfied from a V2V-shared result.
    pub collab_hits: u64,
    /// Requests that failed over to on-board compute (regional outage).
    pub failovers: u64,
    /// Requests bounced by admission control under nominal quotas.
    pub rejected: u64,
    /// Requests that fell to the class-specific bottom ladder rung.
    pub local_fallbacks: u64,
}

impl ClassMetrics {
    fn new(class: WorkloadClass) -> Self {
        ClassMetrics {
            e2e_latency_ms: StreamingHistogram::new(class.label()),
            requests: 0,
            edge_served: 0,
            collab_hits: 0,
            failovers: 0,
            rejected: 0,
            local_fallbacks: 0,
        }
    }

    fn merge(&mut self, other: &ClassMetrics) {
        self.e2e_latency_ms.merge(&other.e2e_latency_ms);
        self.requests += other.requests;
        self.edge_served += other.edge_served;
        self.collab_hits += other.collab_hits;
        self.failovers += other.failovers;
        self.rejected += other.rejected;
        self.local_fallbacks += other.local_fallbacks;
    }
}

/// Mergeable fleet-level measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// End-to-end request latency (ms), all request outcomes.
    pub e2e_latency_ms: StreamingHistogram,
    /// Vehicle-side energy per request (J).
    pub energy_per_request_j: StreamingHistogram,
    /// Admitted XEdge batch size observed at each epoch barrier.
    pub queue_depth: StreamingHistogram,
    /// XEdge lane-pool size observed at each epoch barrier (constant
    /// unless elastic capacity is on).
    pub elastic_lanes: StreamingHistogram,
    /// Per-class outcome accounting, indexed by [`WorkloadClass::index`].
    pub by_class: [ClassMetrics; 3],
    /// Served work units per tenant (the DRR fairness ledger).
    pub work_units_by_tenant: BTreeMap<u32, u64>,
    /// Requests issued by vehicles.
    pub requests: u64,
    /// Requests served by the shared XEdge deployment.
    pub edge_served: u64,
    /// Requests satisfied from a V2V-shared result.
    pub collab_hits: u64,
    /// Requests that failed over to on-board compute (regional outage).
    pub failovers: u64,
    /// Requests bounced by per-tenant admission control under nominal
    /// quotas (plain overload, not chaos).
    pub rejected: u64,
    /// In-flight requests re-queued off crashed XEdge lanes.
    pub requeued: u64,
    /// Requests rescued by rung-1 deadline-aware retry (sub-count of
    /// `edge_served`).
    pub retry_rescued: u64,
    /// Requests served through a neighbor region's node at a handoff
    /// cost (rung 2, sub-count of `edge_served`).
    pub handoffs: u64,
    /// Requests that fell to rung-3 local degraded execution.
    pub local_fallbacks: u64,
    /// pBEAM training rounds skipped at rung 3 (sub-count of
    /// `local_fallbacks` — a skipped round accrues no degraded time).
    pub training_rounds_skipped: u64,
    /// Elastic barriers at which the lane pool grew.
    pub scale_ups: u64,
    /// Elastic barriers at which the lane pool shrank.
    pub scale_downs: u64,
}

impl Default for FleetMetrics {
    fn default() -> Self {
        FleetMetrics::new()
    }
}

impl FleetMetrics {
    /// Creates empty metrics.
    #[must_use]
    pub fn new() -> Self {
        FleetMetrics {
            e2e_latency_ms: StreamingHistogram::new("e2e_latency_ms"),
            energy_per_request_j: StreamingHistogram::new("energy_per_request_j"),
            queue_depth: StreamingHistogram::new("xedge_queue_depth"),
            elastic_lanes: StreamingHistogram::new("xedge_lanes"),
            by_class: [
                ClassMetrics::new(WorkloadClass::Detection),
                ClassMetrics::new(WorkloadClass::Infotainment),
                ClassMetrics::new(WorkloadClass::PbeamTraining),
            ],
            work_units_by_tenant: BTreeMap::new(),
            requests: 0,
            edge_served: 0,
            collab_hits: 0,
            failovers: 0,
            rejected: 0,
            requeued: 0,
            retry_rescued: 0,
            handoffs: 0,
            local_fallbacks: 0,
            training_rounds_skipped: 0,
            scale_ups: 0,
            scale_downs: 0,
        }
    }

    /// One class's accounting.
    #[must_use]
    pub fn class(&self, class: WorkloadClass) -> &ClassMetrics {
        &self.by_class[class.index()]
    }

    /// Mutable access to one class's accounting.
    pub(crate) fn class_mut(&mut self, class: WorkloadClass) -> &mut ClassMetrics {
        &mut self.by_class[class.index()]
    }

    /// Credits served work units to a tenant's ledger.
    pub(crate) fn credit_work(&mut self, tenant: u32, work: u64) {
        *self.work_units_by_tenant.entry(tenant).or_insert(0) += work;
    }

    // ---- outcome recorders -------------------------------------------
    //
    // Every request outcome is accounted twice — fleet-wide and per
    // class — and both views must stay in lock-step. These helpers are
    // the only place the double bookkeeping happens: callers (the shard
    // tick and the engine's barrier pass) record an outcome exactly
    // once and cannot drift the two views apart.

    /// Records a request being issued.
    pub(crate) fn record_request(&mut self, class: WorkloadClass) {
        self.requests += 1;
        self.class_mut(class).requests += 1;
    }

    /// Records a request served by the XEdge deployment.
    pub(crate) fn record_served(
        &mut self,
        class: WorkloadClass,
        tenant: u32,
        work: u64,
        e2e: SimDuration,
        energy_j: f64,
    ) {
        self.e2e_latency_ms.record_duration(e2e);
        self.energy_per_request_j.record(energy_j);
        self.edge_served += 1;
        self.credit_work(tenant, work);
        let cm = self.class_mut(class);
        cm.edge_served += 1;
        cm.e2e_latency_ms.record_duration(e2e);
    }

    /// Records a request satisfied from a V2V-shared result.
    pub(crate) fn record_collab(&mut self, class: WorkloadClass, e2e: SimDuration, energy_j: f64) {
        self.e2e_latency_ms.record_duration(e2e);
        self.energy_per_request_j.record(energy_j);
        self.collab_hits += 1;
        let cm = self.class_mut(class);
        cm.collab_hits += 1;
        cm.e2e_latency_ms.record_duration(e2e);
    }

    /// Records a regional-outage failover to on-board compute.
    pub(crate) fn record_failover(
        &mut self,
        class: WorkloadClass,
        e2e: SimDuration,
        energy_j: f64,
    ) {
        self.e2e_latency_ms.record_duration(e2e);
        self.energy_per_request_j.record(energy_j);
        self.failovers += 1;
        let cm = self.class_mut(class);
        cm.failovers += 1;
        cm.e2e_latency_ms.record_duration(e2e);
    }

    /// Records an admission-gate rejection under nominal quotas.
    pub(crate) fn record_rejected(
        &mut self,
        class: WorkloadClass,
        e2e: SimDuration,
        energy_j: f64,
    ) {
        self.e2e_latency_ms.record_duration(e2e);
        self.energy_per_request_j.record(energy_j);
        self.rejected += 1;
        let cm = self.class_mut(class);
        cm.rejected += 1;
        cm.e2e_latency_ms.record_duration(e2e);
    }

    /// Records a rung-3 local fallback (degraded execution or a skipped
    /// pBEAM round — the caller handles the round-skip sub-counter).
    pub(crate) fn record_fallback(
        &mut self,
        class: WorkloadClass,
        e2e: SimDuration,
        energy_j: f64,
    ) {
        self.e2e_latency_ms.record_duration(e2e);
        self.energy_per_request_j.record(energy_j);
        self.local_fallbacks += 1;
        let cm = self.class_mut(class);
        cm.local_fallbacks += 1;
        cm.e2e_latency_ms.record_duration(e2e);
    }

    /// Merges another shard's metrics into this one (order-independent).
    pub fn merge(&mut self, other: &FleetMetrics) {
        self.e2e_latency_ms.merge(&other.e2e_latency_ms);
        self.energy_per_request_j.merge(&other.energy_per_request_j);
        self.queue_depth.merge(&other.queue_depth);
        self.elastic_lanes.merge(&other.elastic_lanes);
        for (mine, theirs) in self.by_class.iter_mut().zip(other.by_class.iter()) {
            mine.merge(theirs);
        }
        for (&tenant, &work) in &other.work_units_by_tenant {
            *self.work_units_by_tenant.entry(tenant).or_insert(0) += work;
        }
        self.requests += other.requests;
        self.edge_served += other.edge_served;
        self.collab_hits += other.collab_hits;
        self.failovers += other.failovers;
        self.rejected += other.rejected;
        self.requeued += other.requeued;
        self.retry_rescued += other.retry_rescued;
        self.handoffs += other.handoffs;
        self.local_fallbacks += other.local_fallbacks;
        self.training_rounds_skipped += other.training_rounds_skipped;
        self.scale_ups += other.scale_ups;
        self.scale_downs += other.scale_downs;
    }

    /// Fraction of issued requests served from the V2V cache.
    #[must_use]
    pub fn collab_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.collab_hits as f64 / self.requests as f64
        }
    }
}

/// Deterministic sim-time telemetry captured during a run (present only
/// when [`crate::FleetConfig::with_telemetry`] was used).
///
/// Both halves are derived from values the deterministic serving path
/// already computes: spans carry the canonical per-request lifecycle,
/// the registry holds per-epoch samples taken at barriers. Modulo the
/// explicit `shard` span attribute, the telemetry of an N-shard run is
/// identical to a 1-shard run of the same seed (pinned by
/// `tests/telemetry.rs`).
#[derive(Debug, Clone, Default)]
pub struct FleetTelemetry {
    /// One span per request, in canonical `(generated, vehicle, seq)`
    /// order (post-sampling; spans already spilled to disk are gone
    /// from here).
    pub spans: SpanLog,
    /// Named counters, gauges, per-epoch time series, and streaming
    /// histograms.
    pub registry: MetricsRegistry,
    /// Segment-rotating JSONL spill writer, when configured.
    pub spill: Option<JsonlSpillSink>,
    /// Active OK-span sampling rate (keep one in N), when on — either
    /// configured up front or auto-activated by a crossed budget.
    pub sample: Option<u32>,
    /// Seed for the sampling hash (the run's master seed).
    pub sample_seed: u64,
    /// Resident-byte budget, when configured.
    pub budget: Option<u64>,
    /// Whether the budget was ever crossed (series rollup active).
    pub rolled: bool,
    /// OK spans dropped by the sampler so far.
    pub sampled_out: u64,
    /// Peak post-enforcement resident telemetry bytes observed at any
    /// barrier (the number the telemetry budget bounds).
    pub peak_bytes: u64,
}

/// Keep-one-in-N rate auto-activated when a telemetry budget is crossed
/// and neither spill nor explicit sampling is configured.
pub const BUDGET_AUTO_SAMPLE: u32 = 8;

/// Recent per-epoch points each series keeps once rollup is active;
/// everything older folds into a same-named streaming histogram.
pub const SERIES_RETENTION: usize = 64;

impl FleetTelemetry {
    /// Telemetry state for a run with the given sink configuration
    /// (`Default` is the plain unbounded in-memory capture).
    #[must_use]
    pub fn configured(
        budget: Option<u64>,
        sample: Option<u32>,
        spill_dir: Option<std::path::PathBuf>,
        seed: u64,
    ) -> Self {
        FleetTelemetry {
            spill: spill_dir.map(|dir| JsonlSpillSink::new(dir, vdap_obs::DEFAULT_SEGMENT_BYTES)),
            sample,
            sample_seed: seed,
            budget,
            ..FleetTelemetry::default()
        }
    }

    /// Accepts one drained span, applying the sampling decision. The
    /// decision reads only `(seed, vehicle, seq, outcome)` — never the
    /// shard, worker, or arrival order — so what survives is identical
    /// across shard counts and executor widths.
    pub fn absorb(&mut self, span: RequestSpan) {
        if let Some(keep_one_in) = self.sample {
            if span.outcome.is_ok_path()
                && !sample_keeps(self.sample_seed, span.vehicle, span.seq, keep_one_in)
            {
                self.sampled_out += 1;
                return;
            }
        }
        self.spans.push(span);
    }

    /// Estimated resident telemetry bytes: buffered spans plus the
    /// registry estimate. Count-based on purpose — the estimate, and
    /// every budget decision derived from it, is shard-count invariant.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.spans.len() as u64 * SPAN_RESIDENT_BYTES + self.registry.approx_bytes()
    }

    /// Budget enforcement at an epoch barrier, in enforcement-ladder
    /// order: spill buffered spans (every barrier when no budget is
    /// set, else only once the budget is crossed), roll over-long
    /// series into histograms, and — with no spill and no explicit
    /// sampling — auto-activate OK-span sampling retroactively. The
    /// `telemetry_bytes` gauge and `peak_bytes` are updated *after*
    /// enforcement: they measure what enforcement achieved.
    pub fn barrier_flush(&mut self, epoch: u64) {
        let over = self
            .budget
            .is_some_and(|budget| self.resident_bytes() > budget);
        if self.spill.is_some() && (over || self.budget.is_none()) {
            self.drain_to_spill(epoch);
        }
        if over {
            self.rolled = true;
            if self.spill.is_none() && self.sample.is_none() {
                // Last resort: switch sampling on and apply it to the
                // already-buffered spans, so the decision stays a pure
                // function of request identity.
                self.sample = Some(BUDGET_AUTO_SAMPLE);
                let seed = self.sample_seed;
                self.sampled_out += self.spans.retain(|s| {
                    !s.outcome.is_ok_path()
                        || sample_keeps(seed, s.vehicle, s.seq, BUDGET_AUTO_SAMPLE)
                });
            }
        }
        if self.rolled {
            self.registry.roll_series(SERIES_RETENTION);
        }
        let resident = self.resident_bytes();
        self.registry.set_gauge("telemetry_bytes", resident as f64);
        self.peak_bytes = self.peak_bytes.max(resident);
    }

    /// End-of-run flush: with spill configured, every still-buffered
    /// span goes to disk regardless of budget, so the JSONL segments
    /// hold the complete (post-sampling) stream.
    pub fn final_flush(&mut self, epoch: u64) {
        if self.spill.is_some() {
            self.drain_to_spill(epoch);
        }
        let resident = self.resident_bytes();
        self.registry.set_gauge("telemetry_bytes", resident as f64);
        self.peak_bytes = self.peak_bytes.max(resident);
    }

    fn drain_to_spill(&mut self, epoch: u64) {
        let spill = self.spill.as_mut().expect("caller checked spill");
        for span in std::mem::take(&mut self.spans).into_spans() {
            spill.accept(span);
        }
        spill.barrier_flush(epoch);
    }
}

/// One region's admission-gate accounting at the end of a mobility run:
/// how many vehicles ended the run registered there and how the gate
/// treated the traffic routed through it. Rush-hour convergence shows
/// up here as registration and rejection spikes at downtown regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionAdmission {
    /// Vehicles registered with this region's gate at the horizon.
    pub registered: u32,
    /// Requests offered to this region's gate over the run.
    pub offered: u64,
    /// Requests this region's gate rejected over the run.
    pub rejected: u64,
}

/// The result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Merged fleet metrics (all shards + engine).
    pub metrics: FleetMetrics,
    /// Fleet-level reliability accounting (regional outages, node
    /// crashes, per-tenant MTTR, failovers, degraded-mode seconds).
    pub reliability: ReliabilityStats,
    /// Availability per faulted component label (regions, XEdge nodes,
    /// tenants) over the run horizon.
    pub region_availability: Vec<(String, f64)>,
    /// Vehicles simulated.
    pub vehicles: u32,
    /// Shards the run used (excluded from [`FleetReport::summary`]).
    pub shards: u32,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Total discrete events processed across shards.
    pub events_processed: u64,
    /// Requests offered to the XEdge admission gate.
    pub admission_offered: u64,
    /// Requests rejected at the admission gate.
    pub admission_rejected: u64,
    /// Geo-mobility ledger, when the run used
    /// [`crate::FleetConfig::with_mobility`]. Every field is
    /// shard-count invariant (see [`MobilityMetrics`]).
    pub mobility: Option<MobilityMetrics>,
    /// Per-region admission accounting, present only under mobility
    /// (indexed by region id).
    pub region_admission: Option<Vec<RegionAdmission>>,
    /// Vehicles physically moved between worker shards at barriers.
    /// Depends on the shard count, so it appears only in
    /// [`FleetReport::diagnostics`], never in the summary.
    pub physical_migrations: u64,
    /// DDI ingestion accounting, when the ingestion pipeline ran.
    pub ingest: Option<IngestMetrics>,
    /// Sim-time telemetry (spans + registry), when enabled.
    pub telemetry: Option<FleetTelemetry>,
    /// Wall-clock engine profile: per-shard busy and barrier-idle time.
    /// Always captured; reported only via [`FleetReport::diagnostics`],
    /// never in the deterministic [`FleetReport::summary`].
    pub profile: EngineProfile,
    /// Checkpoint/restore accounting (per-generation snapshot sizes and
    /// write timings, restore decode time, rejected generations).
    /// Wall-clock like the profile: reported only via
    /// [`FleetReport::diagnostics`], never in the summary.
    pub snapshots: SnapshotDiagnostics,
}

impl FleetReport {
    /// Admission reject rate over the run.
    #[must_use]
    pub fn reject_rate(&self) -> f64 {
        if self.admission_offered == 0 {
            0.0
        } else {
            self.admission_rejected as f64 / self.admission_offered as f64
        }
    }

    /// A canonical multi-line text summary of the run's aggregate
    /// metrics.
    ///
    /// Deliberately excludes the shard count and any wall-clock figure:
    /// same-seed runs with different shard counts must produce
    /// **byte-identical** summaries, which is the fleet engine's
    /// determinism contract (and is enforced by `repro -- fleet` and the
    /// property tests).
    #[must_use]
    pub fn summary(&self) -> String {
        let m = &self.metrics;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: vehicles={} duration={:.1}s events={} requests={}",
            self.vehicles,
            self.duration.as_secs_f64(),
            self.events_processed,
            m.requests
        );
        let _ = writeln!(
            out,
            "e2e_ms: p50={:.3} p95={:.3} p99={:.3} mean={:.3} max={:.3}",
            m.e2e_latency_ms.quantile(0.5),
            m.e2e_latency_ms.quantile(0.95),
            m.e2e_latency_ms.quantile(0.99),
            m.e2e_latency_ms.mean(),
            m.e2e_latency_ms.max()
        );
        let _ = writeln!(
            out,
            "energy_j: mean={:.4} p95={:.4}",
            m.energy_per_request_j.mean(),
            m.energy_per_request_j.quantile(0.95)
        );
        let _ = writeln!(
            out,
            "xedge: served={} queue_depth_mean={:.2} queue_depth_max={:.0}",
            m.edge_served,
            m.queue_depth.mean(),
            m.queue_depth.max()
        );
        let _ = writeln!(
            out,
            "elastic: lanes_mean={:.2} lanes_max={:.0} scale_ups={} scale_downs={}",
            m.elastic_lanes.mean(),
            m.elastic_lanes.max(),
            m.scale_ups,
            m.scale_downs
        );
        for class in WorkloadClass::ALL {
            let c = m.class(class);
            let _ = writeln!(
                out,
                "class[{class}]: requests={} served={} collab={} failover={} rejected={} \
                 fallback={} e2e_p95_ms={:.3}",
                c.requests,
                c.edge_served,
                c.collab_hits,
                c.failovers,
                c.rejected,
                c.local_fallbacks,
                c.e2e_latency_ms.quantile(0.95)
            );
        }
        let _ = writeln!(
            out,
            "admission: offered={} rejected={} reject_rate={:.4}",
            self.admission_offered,
            self.admission_rejected,
            self.reject_rate()
        );
        let _ = writeln!(
            out,
            "collab: hits={} hit_rate={:.4}",
            m.collab_hits,
            m.collab_hit_rate()
        );
        let mut work = String::new();
        for (tenant, units) in &m.work_units_by_tenant {
            let _ = write!(work, " tenant{tenant}={units}");
        }
        let _ = writeln!(out, "work_units:{work}");
        let _ = writeln!(
            out,
            "reliability: faults={} failovers={} failover_ms_mean={:.3} mttr_ms_mean={:.3}",
            self.reliability.faults_injected(),
            m.failovers,
            self.reliability.failover_latency().mean(),
            self.reliability.mttr().mean()
        );
        let _ = writeln!(
            out,
            "ladder: requeued={} retry_rescued={} retries={} handoffs={} local_fallbacks={} \
             rounds_skipped={} degraded_s={:.3}",
            m.requeued,
            m.retry_rescued,
            self.reliability.retry_count(),
            m.handoffs,
            m.local_fallbacks,
            m.training_rounds_skipped,
            self.reliability.total_degraded_time().as_secs_f64()
        );
        // Mobility lines print only for mobility-enabled runs so the
        // pinned outputs of every earlier experiment stay byte-stable.
        if let Some(mob) = &self.mobility {
            let _ = writeln!(
                out,
                "mobility: crossings={} migrations={} same_domain={} storm_crossings={} \
                 stale_cache_hits={} readdressed={}",
                mob.crossings,
                mob.migrations,
                mob.same_shard_crossings,
                mob.storm_crossings,
                mob.stale_cache_hits,
                mob.readdressed_batches
            );
            let _ = writeln!(
                out,
                "mobility_handoff: total_s={:.3} ms_mean={:.3} ms_p95={:.3} speed_mph_mean={:.1}",
                mob.handoff_seconds,
                mob.handoff_ms.mean(),
                mob.handoff_ms.quantile(0.95),
                mob.crossing_speed_mph.mean()
            );
            if let Some(regions) = &self.region_admission {
                let mut line = String::new();
                for (r, a) in regions.iter().enumerate() {
                    let _ = write!(
                        line,
                        " region{r}={}/{}/{}",
                        a.registered, a.offered, a.rejected
                    );
                }
                let _ = writeln!(out, "mobility_admission(reg/off/rej):{line}");
            }
        }
        if let Some(ing) = &self.ingest {
            let _ = writeln!(
                out,
                "ingest: batches={} records={} written_batches={} written_records={} \
                 miss_rate={:.4} backlog={}",
                ing.batches_sent,
                ing.records_sent,
                ing.batches_written,
                ing.records_written,
                ing.deadline_miss_rate(),
                ing.backlog_records
            );
            let _ = writeln!(
                out,
                "ingest_ladder: outage_bounces={} queue_bounces={} retries={} deferrals={} \
                 disk_spills={} cache_evictions={} shed_records={}",
                ing.outage_bounces,
                ing.queue_bounces,
                ing.retries,
                ing.deferrals,
                ing.disk_spills,
                ing.cache_evictions,
                ing.records_shed
            );
            let _ = writeln!(
                out,
                "ingest_storage: rho_mean={:.3} rho_max={:.3} uplink_ms_p95={:.3} \
                 latency_ms_mean={:.3} latency_ms_p95={:.3}",
                ing.storage_rho.mean(),
                ing.storage_rho.max(),
                ing.uplink_ms.quantile(0.95),
                ing.ingest_latency_ms.mean(),
                ing.ingest_latency_ms.quantile(0.95)
            );
        }
        for (region, avail) in &self.region_availability {
            let _ = writeln!(out, "availability[{region}]={avail:.6}");
        }
        out
    }

    /// The wall-clock diagnostics block: shard count, per-shard busy and
    /// barrier-idle time, serial barrier time, and telemetry volume.
    ///
    /// This is the *nondeterministic* counterpart of
    /// [`FleetReport::summary`] — wall-clock readings differ run to run
    /// and shard count legitimately appears here, so nothing in this
    /// block may ever feed a byte-identity comparison.
    #[must_use]
    pub fn diagnostics(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "diagnostics: shards={} (wall-clock; excluded from the deterministic summary)",
            self.shards
        );
        out.push_str(&self.profile.render());
        if self.mobility.is_some() {
            let _ = writeln!(
                out,
                "mobility_physical: cross_shard_moves={} (depends on shard count)",
                self.physical_migrations
            );
        }
        if let Some(tel) = &self.telemetry {
            let series = tel.registry.all_series().count();
            let _ = writeln!(
                out,
                "telemetry: spans={} series={} counters={} hists={} resident_bytes={} peak_bytes={}",
                tel.spans.len(),
                series,
                tel.registry.counters().count(),
                tel.registry.all_histograms().count(),
                tel.resident_bytes(),
                tel.peak_bytes
            );
            if let Some(spill) = &tel.spill {
                let _ = writeln!(
                    out,
                    "telemetry_spill: spilled={} segments={} io_errors={}",
                    spill.spilled(),
                    spill.segments().len(),
                    spill.io_errors()
                );
            }
            if let Some(keep_one_in) = tel.sample {
                let _ = writeln!(
                    out,
                    "telemetry_sample: keep_one_in={keep_one_in} sampled_out={}",
                    tel.sampled_out
                );
            }
        }
        if !self.snapshots.is_empty() {
            let _ = write!(out, "{}", self.snapshots);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_samples() {
        let mut a = FleetMetrics::new();
        a.requests = 5;
        a.e2e_latency_ms.record(10.0);
        a.class_mut(WorkloadClass::Detection).requests = 4;
        a.credit_work(0, 16);
        let mut b = FleetMetrics::new();
        b.requests = 7;
        b.collab_hits = 2;
        b.e2e_latency_ms.record(30.0);
        b.class_mut(WorkloadClass::Detection).requests = 6;
        b.class_mut(WorkloadClass::PbeamTraining).local_fallbacks = 1;
        b.training_rounds_skipped = 1;
        b.credit_work(0, 8);
        b.credit_work(2, 32);
        a.merge(&b);
        assert_eq!(a.requests, 12);
        assert_eq!(a.collab_hits, 2);
        assert_eq!(a.e2e_latency_ms.count(), 2);
        assert!((a.e2e_latency_ms.mean() - 20.0).abs() < 1e-6);
        assert_eq!(a.class(WorkloadClass::Detection).requests, 10);
        assert_eq!(a.class(WorkloadClass::PbeamTraining).local_fallbacks, 1);
        assert_eq!(a.training_rounds_skipped, 1);
        assert_eq!(a.work_units_by_tenant.get(&0), Some(&24));
        assert_eq!(a.work_units_by_tenant.get(&2), Some(&32));
    }

    #[test]
    fn recorders_keep_class_and_aggregate_views_in_lockstep() {
        let mut m = FleetMetrics::new();
        m.record_request(WorkloadClass::Detection);
        m.record_served(
            WorkloadClass::Detection,
            1,
            8,
            SimDuration::from_millis(12),
            0.5,
        );
        m.record_request(WorkloadClass::Detection);
        m.record_collab(WorkloadClass::Detection, SimDuration::from_millis(3), 0.01);
        m.record_request(WorkloadClass::Infotainment);
        m.record_rejected(
            WorkloadClass::Infotainment,
            SimDuration::from_millis(40),
            1.0,
        );
        m.record_request(WorkloadClass::Infotainment);
        m.record_failover(
            WorkloadClass::Infotainment,
            SimDuration::from_millis(50),
            1.1,
        );
        m.record_request(WorkloadClass::PbeamTraining);
        m.record_fallback(
            WorkloadClass::PbeamTraining,
            SimDuration::from_millis(10),
            0.0,
        );
        let class_sum = |f: fn(&ClassMetrics) -> u64| -> u64 {
            WorkloadClass::ALL.iter().map(|&c| f(m.class(c))).sum()
        };
        assert_eq!(m.requests, 5);
        assert_eq!(class_sum(|c| c.requests), m.requests);
        assert_eq!(class_sum(|c| c.edge_served), m.edge_served);
        assert_eq!(class_sum(|c| c.collab_hits), m.collab_hits);
        assert_eq!(class_sum(|c| c.failovers), m.failovers);
        assert_eq!(class_sum(|c| c.rejected), m.rejected);
        assert_eq!(class_sum(|c| c.local_fallbacks), m.local_fallbacks);
        assert_eq!(
            m.e2e_latency_ms.count(),
            5,
            "one latency sample per outcome"
        );
        assert_eq!(
            class_sum(|c| c.e2e_latency_ms.count()),
            m.e2e_latency_ms.count()
        );
        assert_eq!(m.work_units_by_tenant.get(&1), Some(&8));
    }

    #[test]
    fn diagnostics_carries_profile_but_summary_does_not() {
        let report = FleetReport {
            metrics: FleetMetrics::new(),
            reliability: ReliabilityStats::new(),
            region_availability: Vec::new(),
            vehicles: 10,
            shards: 2,
            duration: SimDuration::from_secs(1),
            events_processed: 0,
            admission_offered: 0,
            admission_rejected: 0,
            mobility: None,
            region_admission: None,
            physical_migrations: 0,
            ingest: None,
            telemetry: Some(FleetTelemetry::default()),
            profile: EngineProfile {
                worker_busy: vec![std::time::Duration::from_millis(5); 2],
                worker_idle: vec![std::time::Duration::from_millis(1); 2],
                worker_steals: vec![1, 0],
                worker_stolen: vec![
                    std::time::Duration::from_millis(1),
                    std::time::Duration::ZERO,
                ],
                shard_busy: vec![std::time::Duration::from_millis(5); 2],
                barrier: std::time::Duration::from_millis(2),
                epochs: 4,
            },
            snapshots: SnapshotDiagnostics::default(),
        };
        let d = report.diagnostics();
        assert!(d.contains("shards=2"));
        assert!(d.contains("worker[0]:"));
        assert!(d.contains("shard[0]:"));
        assert!(d.contains("barrier_idle_ms="));
        assert!(d.contains("steals="));
        assert!(d.contains("telemetry: spans=0"));
        assert!(
            !d.contains("snapshots:"),
            "no snapshot lines unless checkpointing ran"
        );
        assert!(
            !report.summary().contains("busy_ms"),
            "wall-clock must never leak into the deterministic summary"
        );
        let mut with_snapshots = report.clone();
        with_snapshots.snapshots = SnapshotDiagnostics {
            writes: vec![crate::SnapshotWrite {
                generation: 8,
                bytes: 4096,
                write_ms: 0.5,
                chaos: Some("torn-write"),
            }],
            load_ms: Some(0.25),
            rejected_generations: vec![16],
            resumes: 1,
        };
        let d = with_snapshots.diagnostics();
        assert!(d.contains("snapshots: 1 written, 1 resume(s), 1 generation(s) rejected"));
        assert!(d.contains("write gen 8: 4096 B"));
        assert!(d.contains("(torn-write injected)"));
        assert!(d.contains("rejected gen 16"));
        assert!(
            !with_snapshots.summary().contains("snapshots"),
            "snapshot wall-clock must never leak into the summary"
        );
    }

    #[test]
    fn summary_is_stable_text() {
        let report = FleetReport {
            metrics: FleetMetrics::new(),
            reliability: ReliabilityStats::new(),
            region_availability: vec![("region0/lte".to_string(), 0.9)],
            vehicles: 10,
            shards: 2,
            duration: SimDuration::from_secs(60),
            events_processed: 0,
            admission_offered: 0,
            admission_rejected: 0,
            mobility: None,
            region_admission: None,
            physical_migrations: 0,
            ingest: None,
            telemetry: None,
            profile: EngineProfile::default(),
            snapshots: SnapshotDiagnostics::default(),
        };
        let s = report.summary();
        assert!(s.contains("fleet: vehicles=10 duration=60.0s"));
        assert!(s.contains("availability[region0/lte]=0.900000"));
        assert!(s.contains("class[detection]:"));
        assert!(s.contains("class[infotainment]:"));
        assert!(s.contains("class[pbeam-training]:"));
        assert!(s.contains("elastic: lanes_mean="));
        assert!(s.contains("rounds_skipped=0"));
        assert!(!s.contains("shards"), "summary must not leak shard count");
        assert!(
            !s.contains("ingest:"),
            "no ingest lines unless the pipeline ran"
        );
        let mut with_ingest = report.clone();
        let mut ing = IngestMetrics::new();
        ing.batches_sent = 4;
        ing.deadline_misses = 1;
        with_ingest.ingest = Some(ing);
        let s = with_ingest.summary();
        assert!(s.contains("ingest: batches=4"));
        assert!(s.contains("miss_rate=0.2500"));
        assert!(s.contains("ingest_ladder: outage_bounces=0"));
        assert!(s.contains("ingest_storage: rho_mean="));
    }
}
