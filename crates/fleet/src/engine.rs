//! The sharded fleet engine: epoch loop, barriers, and the run report.
//!
//! ## Why an N-shard run is bit-identical to a 1-shard run
//!
//! 1. **Partition is id-keyed.** Tenant, region, route cohort and RNG
//!    stream derive from the vehicle id alone ([`crate::FleetConfig`]),
//!    so re-sharding moves vehicles between threads without changing
//!    any vehicle's behaviour.
//! 2. **Epochs are conservative.** During an epoch a shard reads only
//!    time-determined inputs (the fault timeline, the *previous*
//!    barrier's V2V snapshot). Vehicles never observe same-epoch state
//!    of any other vehicle — not even shard-mates.
//! 3. **Barriers are canonical.** All cross-vehicle coupling (XEdge
//!    admission, fair queueing, contention, snapshot union, failover
//!    reliability samples) happens single-threaded on globally sorted
//!    data, so shard count and buffer interleaving cannot leak in.
//! 4. **Aggregation is order-free.** Per-shard metrics are integer
//!    counters and [`vdap_sim::StreamingHistogram`]s whose merge is
//!    associative and commutative bit-for-bit.

use std::sync::Arc;
use std::time::{Duration, Instant};

use vdap_edgeos::WorkloadClass;
use vdap_fault::{FaultEdge, FaultInjector, FaultKind};
use vdap_mobility::{Crossing, MobilityMetrics, RegionGraph, VehicleTrack};
use vdap_net::CellularChannel;
use vdap_obs::{BarrierProfiler, RequestSpan, SpanOutcome};
use vdap_offload::Tile;
use vdap_sim::{ReliabilityStats, SeedFactory, SimDuration, SimTime};

use crate::config::{handoff_label, tenant_label, FleetConfig, FleetConfigError};
use crate::edge::{EpochOutcome, XEdgeServer};
use crate::ingest::IngestPass;
use crate::metrics::{FleetMetrics, FleetReport, FleetTelemetry};
use crate::pool::WorkerPool;
use crate::shard::{region_label_table, CollabSnapshot, Shard};
use crate::vehicle::{BOARD_W, RADIO_W};

/// Deterministic sharded fleet simulation engine.
///
/// # Examples
///
/// ```
/// use vdap_fleet::{FleetConfig, FleetEngine};
/// use vdap_sim::SimDuration;
///
/// let mut cfg = FleetConfig::sized(64, 2);
/// cfg.duration = SimDuration::from_secs(5);
/// let report = FleetEngine::new(cfg).run();
/// assert!(report.metrics.requests > 0);
/// ```
#[derive(Debug, Clone)]
pub struct FleetEngine {
    cfg: FleetConfig,
}

impl FleetEngine {
    /// Creates an engine for the given scenario, rejecting unusable
    /// configurations (zero counts, more shards than vehicles, an epoch
    /// past the horizon, an empty class mix) with a descriptive
    /// [`FleetConfigError`] instead of a downstream panic or hang.
    pub fn try_new(cfg: FleetConfig) -> Result<Self, FleetConfigError> {
        cfg.validate()?;
        Ok(FleetEngine { cfg })
    }

    /// Creates an engine for the given scenario.
    ///
    /// # Panics
    ///
    /// Panics with the [`FleetConfigError`] message when the
    /// configuration is unusable; use [`FleetEngine::try_new`] to
    /// handle the rejection instead.
    #[must_use]
    pub fn new(cfg: FleetConfig) -> Self {
        match FleetEngine::try_new(cfg) {
            Ok(engine) => engine,
            Err(err) => panic!("invalid fleet config: {err}"),
        }
    }

    /// The scenario this engine will run.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Runs the fleet to its horizon and returns the merged report.
    #[must_use]
    pub fn run(&self) -> FleetReport {
        let cfg = Arc::new(self.cfg.clone());
        let seeds = SeedFactory::new(cfg.seed);
        let injector = cfg.chaos.as_ref().map(|plan| Arc::new(plan.compile()));
        let region_labels = Arc::new(region_label_table(cfg.regions));

        let mut shards: Vec<Shard> = (0..cfg.shards)
            .map(|i| Shard::new(i, &cfg, &seeds, injector.clone(), &region_labels))
            .collect();
        let pool = WorkerPool::new(cfg.shards as usize);
        let mut edge = XEdgeServer::new(&cfg);
        let mut engine_metrics = FleetMetrics::new();
        let mut reliability = ReliabilityStats::new();
        let mut telemetry: Option<FleetTelemetry> = cfg.telemetry.then(FleetTelemetry::default);
        let mut profiler = BarrierProfiler::new(cfg.shards as usize);
        let mut ingest: Option<IngestPass> =
            cfg.ingest.as_ref().map(|_| IngestPass::new(&cfg, &seeds));
        let mut mobility: Option<MobilityPass> = cfg
            .mobility
            .as_ref()
            .map(|mob| MobilityPass::new(mob, &cfg, &seeds));

        // The fault timeline is a pure function of the plan, so the
        // fleet-wide availability ledger can be written up front in
        // time order. Tenant-quota flaps are folded into the per-tenant
        // ledger below instead of the generic one, so a tenant's MTTR
        // reflects both its own flaps and fleet-wide node crashes
        // without double-counting the same label.
        let horizon = cfg.horizon();
        if let Some(inj) = injector.as_deref() {
            let mut transitions = inj.transitions();
            transitions.sort_by_key(|t| (t.at, t.window));
            for tr in transitions {
                let window = &inj.windows()[tr.window];
                if matches!(window.kind, FaultKind::TenantQuotaFlap { .. }) {
                    continue;
                }
                match tr.edge {
                    FaultEdge::Start => reliability.record_fault(&window.target, tr.at),
                    FaultEdge::End => reliability.record_recovery(&window.target, tr.at),
                }
            }
            record_tenant_ledger(&mut reliability, inj, &cfg, horizon);
        }

        // Ladder randomness is engine-owned and consumed in canonical
        // batch order at barriers, so it is shard-count invariant.
        let mut ladder_rng = seeds.stream("fleet-ladder");
        let tenant_labels: Vec<String> = (0..cfg.tenants).map(tenant_label).collect();
        let mut epoch_index = 0u64;
        loop {
            let end_raw = SimTime::ZERO + cfg.epoch * (epoch_index + 1);
            let end = if end_raw > horizon { horizon } else { end_raw };

            // Advance every shard to the barrier in parallel, timing
            // each shard's advance for the barrier profiler.
            pool.for_each_mut(&mut shards, |_, shard| {
                let started = Instant::now();
                shard.sim.run_until(end);
                shard.busy = started.elapsed();
            });
            let busy: Vec<Duration> = shards.iter().map(|s| s.busy).collect();
            profiler.record_epoch(&busy);

            // ---- barrier: single-threaded, canonical-order exchange ----
            let barrier_started = Instant::now();
            let mut batch = Vec::new();
            let mut ingest_batches = Vec::new();
            let mut publications: Vec<(Tile, u32)> = Vec::new();
            let mut failovers: Vec<(u32, u32, f64)> = Vec::new();
            for shard in &mut shards {
                let st = shard.sim.state_mut();
                batch.append(&mut st.outbox);
                ingest_batches.append(&mut st.ingest_outbox);
                publications.append(&mut st.publications);
                failovers.append(&mut st.failover_samples);
                if let Some(tel) = telemetry.as_mut() {
                    for span in st.spans.drain(..) {
                        tel.registry.inc(
                            match span.outcome {
                                SpanOutcome::CollabHit => "fleet.collab_hits",
                                _ => "fleet.failovers",
                            },
                            1,
                        );
                        tel.spans.push(span);
                    }
                }
            }

            // Failover latencies feed an exact (order-sensitive) Summary,
            // so sort them canonically before recording.
            failovers.sort_unstable_by_key(|&(vehicle, seq, _)| (vehicle, seq));
            for &(_, _, ms) in &failovers {
                reliability.record_failover(SimDuration::from_millis_f64(ms));
            }

            let outcome = edge.serve_epoch(batch, end, injector.as_deref(), &mut ladder_rng);
            engine_metrics
                .queue_depth
                .record(outcome.queue_depth as f64);
            engine_metrics
                .elastic_lanes
                .record(f64::from(outcome.lanes));
            if outcome.scaled_up {
                engine_metrics.scale_ups += 1;
            }
            if outcome.scaled_down {
                engine_metrics.scale_downs += 1;
            }
            record_outcome(
                &mut engine_metrics,
                &mut reliability,
                &outcome,
                &cfg,
                &tenant_labels,
                telemetry.as_mut(),
            );
            if let Some(tel) = telemetry.as_mut() {
                sample_epoch(tel, &outcome, epoch_index, end);
            }

            // The DDI ingestion pass: collector admission, the ingest
            // degradation ladder, and the storage drain — all sampled
            // at this barrier only, on canonically sorted batches.
            if let Some(ing) = ingest.as_mut() {
                let epoch_start = SimTime::ZERO + cfg.epoch * epoch_index;
                ing.barrier(
                    std::mem::take(&mut ingest_batches),
                    end - epoch_start,
                    end,
                    epoch_index,
                    injector.as_deref(),
                    &mut reliability,
                    telemetry.as_mut(),
                );
            }

            // The geo-mobility pass: advance every seeded track across
            // the epoch just completed, price region crossings, and
            // migrate vehicles whose new region is homed on another
            // shard — all single-threaded, in canonical vehicle order.
            if let Some(mob) = mobility.as_mut() {
                let epoch_start = SimTime::ZERO + cfg.epoch * epoch_index;
                mob.barrier(
                    &mut shards,
                    &mut edge,
                    ingest.as_mut(),
                    injector.as_deref(),
                    &mut reliability,
                    telemetry.as_mut(),
                    &cfg,
                    epoch_start,
                    end - epoch_start,
                    end,
                    epoch_index,
                );
            }

            // Union this epoch's publications into the next snapshot;
            // ties go to the smallest vehicle id (order-independent).
            let mut snapshot = CollabSnapshot::new();
            for (tile, producer) in publications {
                snapshot
                    .entry(tile)
                    .and_modify(|p| {
                        if producer < *p {
                            *p = producer;
                        }
                    })
                    .or_insert(producer);
            }
            let snapshot = Arc::new(snapshot);
            for shard in &mut shards {
                shard.sim.state_mut().snapshot = Arc::clone(&snapshot);
            }

            profiler.record_barrier(barrier_started.elapsed());
            epoch_index += 1;
            if end >= horizon {
                break;
            }
        }

        // Drain work still pending at the horizon: in-flight lanes
        // complete (their latency is fixed), stranded requeues take the
        // local fallback. The tail belongs to no barrier, so it updates
        // telemetry counters and spans but adds no epoch samples.
        let tail = edge.flush(horizon);
        record_outcome(
            &mut engine_metrics,
            &mut reliability,
            &tail,
            &cfg,
            &tenant_labels,
            telemetry.as_mut(),
        );

        // Merge shard-local metrics (associative + commutative).
        // Orphan events — migration leftovers that popped to a no-op —
        // are subtracted so the event ledger matches a 1-shard run,
        // where no vehicle ever physically moves.
        let mut metrics = engine_metrics;
        let mut events_processed = 0u64;
        for shard in &shards {
            let st = shard.sim.state();
            events_processed += shard.sim.events_processed() - st.orphan_events;
            metrics.merge(&st.metrics);
        }
        if let Some(tel) = telemetry.as_mut() {
            // Insertion order interleaves vehicle-side and edge-side
            // resolutions arbitrarily; canonical order restores a
            // shard-count-invariant log.
            tel.spans.sort_canonical();
            tel.registry.inc("fleet.requests", metrics.requests);
        }
        let region_availability = reliability
            .faulted_components()
            .iter()
            .map(|c| ((*c).to_string(), reliability.availability(c, horizon)))
            .collect();

        FleetReport {
            metrics,
            reliability,
            region_availability,
            vehicles: cfg.vehicles,
            shards: cfg.shards,
            duration: cfg.duration,
            events_processed,
            admission_offered: edge.offered(),
            admission_rejected: edge.rejected(),
            mobility: mobility.as_ref().map(|m| m.metrics.clone()),
            region_admission: edge.region_admission_table(),
            physical_migrations: mobility.as_ref().map_or(0, |m| m.physical_migrations),
            ingest: ingest.as_mut().map(IngestPass::finish),
            telemetry,
            profile: profiler.finish(),
        }
    }
}

/// The engine-owned geo-mobility pass.
///
/// All mobility state — the seeded region graph, every vehicle's route
/// track, and the vehicle → shard residency table — lives on the engine
/// thread and advances only at barriers, so crossings are a pure
/// function of `(seed, vehicle, epoch)` and never of shard count. The
/// pass runs in canonical vehicle-id order; only the *physical* evict/
/// adopt moves depend on how many shards this run happens to use, and
/// those feed diagnostics, never the deterministic ledger.
struct MobilityPass {
    graph: RegionGraph,
    tracks: Vec<VehicleTrack>,
    /// Which shard currently hosts each vehicle.
    host: Vec<u32>,
    channel: CellularChannel,
    handoff_labels: Vec<String>,
    metrics: MobilityMetrics,
    physical_migrations: u64,
    crossings_buf: Vec<Crossing>,
}

impl MobilityPass {
    fn new(mob: &vdap_mobility::MobilityConfig, cfg: &FleetConfig, seeds: &SeedFactory) -> Self {
        let mut graph_rng = seeds.stream("fleet-mobility-graph");
        let graph = RegionGraph::seeded(
            cfg.regions,
            mob.chords(cfg.regions),
            mob.segment_capacity,
            &mut graph_rng,
        );
        let tracks = (0..cfg.vehicles)
            .map(|id| {
                VehicleTrack::new(
                    id,
                    cfg.region_of(id),
                    mob,
                    &graph,
                    cfg.duration,
                    seeds.indexed_stream("fleet-mobility", u64::from(id)),
                )
            })
            .collect();
        MobilityPass {
            graph,
            tracks,
            host: (0..cfg.vehicles)
                .map(|id| cfg.initial_shard_of(id))
                .collect(),
            channel: CellularChannel::calibrated(),
            handoff_labels: (0..cfg.regions).map(handoff_label).collect(),
            metrics: MobilityMetrics::new(),
            physical_migrations: 0,
            crossings_buf: Vec::new(),
        }
    }

    /// One barrier's mobility step, covering the epoch
    /// `[epoch_start, end]` the shards just finished.
    #[allow(clippy::too_many_arguments)]
    fn barrier(
        &mut self,
        shards: &mut [Shard],
        edge: &mut XEdgeServer,
        mut ingest: Option<&mut IngestPass>,
        injector: Option<&FaultInjector>,
        reliability: &mut ReliabilityStats,
        telemetry: Option<&mut FleetTelemetry>,
        cfg: &FleetConfig,
        epoch_start: SimTime,
        window: SimDuration,
        end: SimTime,
        epoch_index: u64,
    ) {
        // Vehicles that crossed at the *previous* barrier spent the
        // epoch with a cold collab cache: drain the suppressed-hit
        // counters and clear every flag before marking this barrier's
        // crossers.
        for shard in shards.iter_mut() {
            let st = shard.sim.state_mut();
            self.metrics.stale_cache_hits += std::mem::take(&mut st.stale_hits);
            for v in st.vehicles.values_mut() {
                v.cache_stale = false;
            }
        }

        // Congestion multipliers from pre-advance occupancy: every
        // track still reports the segment it was on when the epoch
        // began, so the load each driver sees is globally determined
        // before anyone moves.
        let mut occupancy = vec![0u32; self.graph.segments().len()];
        for track in &self.tracks {
            if let Some(edge_id) = track.driving_edge() {
                occupancy[edge_id] += 1;
            }
        }
        let congestion: Vec<f64> = self
            .graph
            .segments()
            .iter()
            .zip(&occupancy)
            .map(|(seg, &occ)| seg.congestion_multiplier(occ))
            .collect();

        let mut epoch_crossings = 0u64;
        let mut epoch_migrations = 0u64;
        for id in 0..cfg.vehicles {
            self.crossings_buf.clear();
            self.tracks[id as usize].advance(
                epoch_start,
                window,
                &self.graph,
                &congestion,
                &mut self.crossings_buf,
            );
            if self.crossings_buf.is_empty() {
                continue;
            }
            let tenant = cfg.tenant_of(id);
            let mut handoff = SimDuration::ZERO;
            for c in &self.crossings_buf {
                // A handoff storm at the destination cell multiplies
                // the crossing cost — the single accounting path for
                // handoff seconds, organic or injected.
                let storming = injector
                    .is_some_and(|inj| inj.handoff_storm(&self.handoff_labels[c.to as usize], end));
                let cost = if storming {
                    self.metrics.storm_crossings += 1;
                    self.channel.storm_handoff_cost(c.speed)
                } else {
                    self.channel.handoff_cost(c.speed)
                };
                self.metrics.crossings += 1;
                epoch_crossings += 1;
                self.metrics.handoff_seconds += cost.as_secs_f64();
                self.metrics.handoff_ms.record_duration(cost);
                self.metrics.crossing_speed_mph.record(c.speed.0);
                // `migrations` counts home-node *domain* changes — the
                // canonical placement function — so the ledger is
                // byte-identical at any shard count.
                if c.from % cfg.edge_nodes != c.to % cfg.edge_nodes {
                    self.metrics.migrations += 1;
                    epoch_migrations += 1;
                } else {
                    self.metrics.same_shard_crossings += 1;
                }
                reliability.record_degraded(&self.handoff_labels[c.to as usize], cost);
                edge.reregister(tenant, c.from, c.to);
                handoff += cost;
            }

            // The vehicle's shard-side state: handoff debt lands on its
            // next request, the region moves, the collab cache goes
            // stale for one epoch.
            let dest = self.tracks[id as usize].region();
            let host = self.host[id as usize] as usize;
            {
                let st = shards[host].sim.state_mut();
                let v = st
                    .vehicles
                    .get_mut(&id)
                    .expect("host table tracks residency");
                v.pending_handoff += handoff;
                v.region = dest;
                v.cache_stale = true;
            }
            if let Some(ing) = ingest.as_deref_mut() {
                self.metrics.readdressed_batches += ing.readdress(u64::from(id), dest);
            }

            // Physical migration: move the whole vehicle to the shard
            // owning its new region. Shard-count dependent, so it only
            // feeds diagnostics.
            let target = cfg.shard_of_region(dest);
            if target != self.host[id as usize] {
                let v = shards[host].evict(id).expect("resident vehicle");
                shards[target as usize].adopt(v);
                self.host[id as usize] = target;
                self.physical_migrations += 1;
            }
        }

        if let Some(tel) = telemetry {
            tel.registry.sample(
                "mobility.crossings",
                epoch_index,
                end,
                epoch_crossings as f64,
            );
            tel.registry.sample(
                "mobility.migrations",
                epoch_index,
                end,
                epoch_migrations as f64,
            );
        }
    }
}

/// The interned series name for a class's per-epoch served count.
const fn served_series(class: WorkloadClass) -> &'static str {
    match class {
        WorkloadClass::Detection => "fleet.served.detection",
        WorkloadClass::Infotainment => "fleet.served.infotainment",
        WorkloadClass::PbeamTraining => "fleet.served.pbeam-training",
    }
}

/// The interned series name for a class's per-epoch rejected count.
const fn rejected_series(class: WorkloadClass) -> &'static str {
    match class {
        WorkloadClass::Detection => "fleet.rejected.detection",
        WorkloadClass::Infotainment => "fleet.rejected.infotainment",
        WorkloadClass::PbeamTraining => "fleet.rejected.pbeam-training",
    }
}

/// Samples the per-epoch time series at one barrier. Every sampled
/// value is an output of the canonical single-threaded serving pass,
/// so the series are shard-count invariant by construction.
fn sample_epoch(tel: &mut FleetTelemetry, outcome: &EpochOutcome, epoch: u64, at: SimTime) {
    tel.registry
        .sample("xedge.queue_depth", epoch, at, outcome.queue_depth as f64);
    tel.registry
        .sample("xedge.lanes", epoch, at, f64::from(outcome.lanes));
    for class in WorkloadClass::ALL {
        let served = outcome.served.iter().filter(|s| s.class == class).count();
        let rejected = outcome.rejected.iter().filter(|r| r.class == class).count();
        tel.registry
            .sample(served_series(class), epoch, at, served as f64);
        tel.registry
            .sample(rejected_series(class), epoch, at, rejected as f64);
    }
    tel.registry
        .set_gauge("xedge.lanes", f64::from(outcome.lanes));
}

/// Folds one barrier's serving outcome into the engine metrics and the
/// reliability ledger, per class. Rejected requests keep the legacy
/// accounting: the vehicle pays the uplink it wasted discovering the
/// bounce, then the full on-board fallback at the class's own service
/// time. Skipped pBEAM rounds (rung 3 for the training class) count as
/// fallbacks but accrue no degraded-mode time.
fn record_outcome(
    metrics: &mut FleetMetrics,
    reliability: &mut ReliabilityStats,
    outcome: &EpochOutcome,
    cfg: &FleetConfig,
    tenant_labels: &[String],
    mut telemetry: Option<&mut FleetTelemetry>,
) {
    for served in &outcome.served {
        metrics.record_served(
            served.class,
            served.tenant,
            served.work,
            served.e2e,
            served.energy_j,
        );
        if let Some(tel) = telemetry.as_deref_mut() {
            tel.registry.inc("fleet.served", 1);
            tel.spans.push(RequestSpan {
                vehicle: served.vehicle,
                seq: served.seq,
                tenant: served.tenant,
                region: served.region,
                shard: cfg.shard_of(served.vehicle),
                class: served.class.label(),
                generated: served.arrival,
                admitted: Some(served.admitted),
                serve_start: Some(served.serve_start),
                completed: served.arrival + served.e2e,
                outcome: SpanOutcome::EdgeServed,
                retries: served.retries,
                requeues: served.requeues,
                handoff: served.handoff,
            });
        }
    }
    for rejected in &outcome.rejected {
        let spec = cfg.class(rejected.class);
        let e2e = rejected.uplink + cfg.failover_penalty + spec.vehicle_service;
        metrics.record_rejected(
            rejected.class,
            e2e,
            rejected.uplink.as_secs_f64() * RADIO_W + spec.vehicle_service.as_secs_f64() * BOARD_W,
        );
        if let Some(tel) = telemetry.as_deref_mut() {
            tel.registry.inc("fleet.rejected", 1);
            tel.spans.push(RequestSpan {
                vehicle: rejected.vehicle,
                seq: rejected.seq,
                tenant: rejected.tenant,
                region: rejected.region,
                shard: cfg.shard_of(rejected.vehicle),
                class: rejected.class.label(),
                generated: rejected.arrival,
                admitted: None,
                serve_start: None,
                completed: rejected.arrival + e2e,
                outcome: SpanOutcome::Rejected,
                retries: 0,
                requeues: 0,
                handoff: false,
            });
        }
    }
    for fallback in &outcome.local_fallbacks {
        metrics.record_fallback(fallback.class, fallback.e2e, fallback.energy_j);
        let skipped = fallback.class == WorkloadClass::PbeamTraining;
        if skipped {
            // A skipped pBEAM round: no degraded-mode seconds accrue,
            // training just converges a round later.
            metrics.training_rounds_skipped += 1;
        } else {
            reliability
                .record_degraded(&tenant_labels[fallback.tenant as usize], fallback.degraded);
        }
        if let Some(tel) = telemetry.as_deref_mut() {
            tel.registry.inc("fleet.local_fallbacks", 1);
            tel.spans.push(RequestSpan {
                vehicle: fallback.vehicle,
                seq: fallback.seq,
                tenant: fallback.tenant,
                region: fallback.region,
                shard: cfg.shard_of(fallback.vehicle),
                class: fallback.class.label(),
                generated: fallback.arrival,
                admitted: Some(fallback.decided),
                serve_start: None,
                completed: fallback.arrival + fallback.e2e,
                outcome: if skipped {
                    SpanOutcome::Skipped
                } else {
                    SpanOutcome::LocalFallback
                },
                retries: fallback.retries,
                requeues: fallback.requeues,
                handoff: false,
            });
        }
    }
    metrics.requeued += outcome.requeued;
    metrics.retry_rescued += outcome.retry_rescued;
    metrics.handoffs += outcome.handoffs;
    if let Some(tel) = telemetry {
        tel.registry.inc("fleet.requeued", outcome.requeued);
        tel.registry
            .inc("fleet.retry_rescued", outcome.retry_rescued);
        tel.registry.inc("fleet.handoffs", outcome.handoffs);
    }
    for _ in 0..outcome.retry_attempts {
        reliability.record_retry();
    }
    for _ in 0..outcome.retry_rescued {
        reliability.record_retry_success();
    }
    for _ in 0..outcome.retry_exhausted {
        reliability.record_retry_exhausted();
    }
}

/// Writes the per-tenant availability ledger. A tenant is "down" while
/// its own quota is flapped or while any XEdge node-crash window is
/// active (every tenant's traffic shares the node pool). Crash windows
/// are quantized up to the barrier grid the serving pass actually
/// samples, so per-tenant MTTR matches what requests experienced.
fn record_tenant_ledger(
    reliability: &mut ReliabilityStats,
    inj: &FaultInjector,
    cfg: &FleetConfig,
    horizon: SimTime,
) {
    let quantize = |t: SimTime| -> SimTime {
        let k = t.elapsed().as_nanos().div_ceil(cfg.epoch.as_nanos());
        let q = SimTime::ZERO + cfg.epoch * k;
        if q > horizon {
            horizon
        } else {
            q
        }
    };
    let crash_windows: Vec<(SimTime, SimTime)> = inj
        .windows()
        .iter()
        .filter(|w| matches!(w.kind, FaultKind::EdgeNodeCrash))
        .map(|w| (quantize(w.start), quantize(w.end)))
        .filter(|(s, e)| e > s)
        .collect();
    for t in 0..cfg.tenants {
        let label = tenant_label(t);
        let mut windows = crash_windows.clone();
        for w in inj.windows() {
            if matches!(w.kind, FaultKind::TenantQuotaFlap { .. }) && w.target == label {
                let end = if w.end > horizon { horizon } else { w.end };
                if end > w.start {
                    windows.push((w.start, end));
                }
            }
        }
        if windows.is_empty() {
            continue;
        }
        windows.sort_unstable();
        // Coalesce overlaps so a tenant's downtime is not double-counted.
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
        for (s, e) in windows {
            match merged.last_mut() {
                Some((_, last_end)) if s <= *last_end => {
                    if e > *last_end {
                        *last_end = e;
                    }
                }
                _ => merged.push((s, e)),
            }
        }
        for (s, e) in merged {
            reliability.record_fault(&label, s);
            reliability.record_recovery(&label, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(shards: u32) -> FleetConfig {
        let mut cfg = FleetConfig::sized(96, shards);
        cfg.duration = SimDuration::from_secs(10);
        cfg
    }

    #[test]
    fn shard_counts_produce_identical_summaries() {
        let one = FleetEngine::new(small(1)).run();
        let four = FleetEngine::new(small(4)).run();
        assert_eq!(one.summary(), four.summary());
        assert_eq!(one.metrics, four.metrics);
    }

    #[test]
    fn requests_split_across_outcomes() {
        let report = FleetEngine::new(small(2)).run();
        let m = &report.metrics;
        assert!(m.requests >= 96 * 9, "~1 request/vehicle/second");
        assert_eq!(
            m.requests,
            m.edge_served + m.collab_hits + m.failovers + m.rejected + m.local_fallbacks,
            "every request has exactly one outcome"
        );
        assert!(m.collab_hits > 0, "cohort-mates should share results");
        assert_eq!(m.e2e_latency_ms.count(), m.requests);
        assert_eq!(m.energy_per_request_j.count(), m.requests);
    }

    #[test]
    fn regional_outage_causes_failovers_and_lowers_availability() {
        let mut cfg =
            small(2).with_regional_outage(0, SimTime::from_secs(2), SimDuration::from_secs(4));
        cfg.duration = SimDuration::from_secs(10);
        let report = FleetEngine::new(cfg).run();
        assert!(report.metrics.failovers > 0);
        assert_eq!(report.reliability.faults_injected(), 1);
        assert_eq!(report.region_availability.len(), 1);
        let (label, avail) = &report.region_availability[0];
        assert_eq!(label, "region0/lte");
        assert!((*avail - 0.6).abs() < 1e-9, "4 s down of 10 s: {avail}");
        assert!(report.reliability.failover_latency().count() > 0);
    }

    #[test]
    fn node_crash_walks_the_degradation_ladder() {
        let build = |shards: u32| {
            let mut cfg = small(shards);
            cfg.edge_nodes = 1;
            let cfg = cfg.with_edge_node_crash(0, SimTime::from_secs(2), SimDuration::from_secs(4));
            FleetEngine::new(cfg).run()
        };
        let report = build(2);
        let m = &report.metrics;
        assert!(
            m.retry_rescued > 0,
            "late arrivals should ride out the crash via rung-1 retry"
        );
        assert!(
            m.local_fallbacks > 0,
            "early arrivals exhaust their deadline and fall to rung 3"
        );
        assert_eq!(
            m.requests,
            m.edge_served + m.collab_hits + m.failovers + m.rejected + m.local_fallbacks,
            "ladder outcomes still partition the request stream"
        );
        // Every tenant shares the single node: availability dips over
        // the barrier-quantized crash window [2 s, 6 s), then recovers.
        let horizon = SimTime::from_secs(10);
        for t in 0..4u32 {
            let label = tenant_label(t);
            let down = report.reliability.downtime(&label, horizon);
            assert_eq!(down, SimDuration::from_secs(4), "tenant {t}: {down:?}");
            let avail = report.reliability.availability(&label, horizon);
            assert!((avail - 0.6).abs() < 1e-9, "tenant {t}: {avail}");
        }
        assert!(report.reliability.mttr().count() >= 4, "per-tenant MTTR");
        assert!(report.reliability.mttr().mean() > 0.0);
        assert!(report.reliability.retry_count() > 0);
        assert!(report.reliability.total_degraded_time() > SimDuration::ZERO);
        // The whole chaos story is still byte-identical across shard
        // counts.
        assert_eq!(build(1).summary(), build(4).summary());
    }

    #[test]
    fn ingest_runs_healthy_and_stays_shard_invariant() {
        let build = |shards: u32| {
            let mut cfg = small(shards).with_ingest();
            cfg.duration = SimDuration::from_secs(10);
            FleetEngine::new(cfg).run()
        };
        let report = build(2);
        let ing = report.ingest.as_ref().expect("ingest ledger present");
        assert!(ing.batches_sent > 0, "vehicles uploaded batches");
        assert_eq!(
            ing.records_sent,
            ing.records_written + ing.records_shed + ing.cache_evictions + ing.backlog_records,
            "every record is written, shed, evicted, or backlog"
        );
        assert_eq!(ing.deadline_misses, 0, "healthy run misses nothing");
        let one = build(1);
        let four = build(4);
        assert_eq!(one.summary(), four.summary());
        assert_eq!(one.ingest, four.ingest);
    }

    #[test]
    fn storage_chaos_degrades_ingest_through_the_ladder() {
        let build = |shards: u32| {
            let mut cfg = small(shards)
                .with_ingest()
                .with_collector_outage(0, SimTime::from_secs(1), SimDuration::from_secs(6))
                .with_storage_brownout(0.02, SimTime::from_secs(2), SimDuration::from_secs(6));
            cfg.duration = SimDuration::from_secs(10);
            cfg.ingest.as_mut().unwrap().storage_records_per_sec = 400.0;
            FleetEngine::new(cfg).run()
        };
        let report = build(2);
        let ing = report.ingest.as_ref().expect("ingest ledger present");
        assert!(ing.outage_bounces > 0, "collector outage bounced uploads");
        assert!(ing.retries > 0, "rung 1 retried with seeded backoff");
        assert!(ing.deferrals > 0, "rung 2 deferred into vehicle caches");
        assert!(
            ing.deadline_misses > 0,
            "a brownout this deep must miss deadlines"
        );
        assert!(
            ing.storage_rho.max() > 1.0,
            "the browned-out tier saturates: {}",
            ing.storage_rho.max()
        );
        assert_eq!(
            ing.records_sent,
            ing.records_written + ing.records_shed + ing.cache_evictions + ing.backlog_records,
            "the ledger still partitions under chaos"
        );
        assert_eq!(build(1).summary(), build(4).summary());
    }

    #[test]
    fn mobility_crossings_stay_shard_invariant() {
        let build = |shards: u32| {
            let mut cfg = small(shards).with_mobility();
            cfg.duration = SimDuration::from_secs(10);
            FleetEngine::new(cfg).run()
        };
        let one = build(1);
        let four = build(4);
        let mob = one.mobility.as_ref().expect("mobility ledger present");
        assert!(mob.crossings > 0, "vehicles cross region boundaries");
        assert!(mob.migrations > 0, "some crossings change home-node domain");
        assert!(
            mob.partitions(),
            "crossings partition into migrations + same-domain moves"
        );
        assert_eq!(one.summary(), four.summary());
        assert_eq!(one.mobility, four.mobility);
        assert_eq!(one.region_admission, four.region_admission);
    }

    #[test]
    fn handoff_storm_multiplies_crossing_cost_without_double_counting() {
        let build = |storm: bool| {
            let mut cfg = small(2).with_mobility();
            if storm {
                cfg = cfg.with_handoff_storm(1, SimTime::from_secs(2), SimDuration::from_secs(6));
            }
            cfg.duration = SimDuration::from_secs(10);
            FleetEngine::new(cfg).run()
        };
        let calm = build(false);
        let stormy = build(true);
        let calm_mob = calm.mobility.as_ref().unwrap();
        let storm_mob = stormy.mobility.as_ref().unwrap();
        assert_eq!(calm_mob.storm_crossings, 0);
        assert!(
            storm_mob.storm_crossings > 0,
            "crossings into region 1 during the storm pay the multiplier"
        );
        assert!(
            storm_mob.handoff_seconds > calm_mob.handoff_seconds,
            "the storm multiplier must show up in the mobility ledger"
        );
        // Single-path accounting: with mobility on, the only writer of
        // a region's handoff-label degraded seconds is the mobility
        // pass, so the reliability ledger and the mobility ledger must
        // agree exactly — a storm must not double-count handoff time
        // through the serving path.
        for report in [&calm, &stormy] {
            let mob = report.mobility.as_ref().unwrap();
            let ledger: f64 = (0..8)
                .map(|r| {
                    report
                        .reliability
                        .degraded_time(&handoff_label(r))
                        .as_secs_f64()
                })
                .sum();
            assert!(
                (ledger - mob.handoff_seconds).abs() < 1e-6,
                "reliability ledger {ledger} vs mobility ledger {}",
                mob.handoff_seconds
            );
        }
    }

    #[test]
    fn chaos_summary_is_shard_invariant_too() {
        let build = |shards| {
            let cfg = small(shards).with_regional_outage(
                1,
                SimTime::from_secs(3),
                SimDuration::from_secs(3),
            );
            FleetEngine::new(cfg).run().summary()
        };
        assert_eq!(build(1), build(3));
    }
}
