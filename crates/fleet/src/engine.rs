//! The sharded fleet engine: epoch loop, barriers, and the run report.
//!
//! ## Why an N-shard run is bit-identical to a 1-shard run
//!
//! 1. **Partition is id-keyed.** Tenant, region, route cohort and RNG
//!    stream derive from the vehicle id alone ([`crate::FleetConfig`]),
//!    so re-sharding moves vehicles between threads without changing
//!    any vehicle's behaviour.
//! 2. **Epochs are conservative.** During an epoch a vehicle reads only
//!    time-determined inputs (the fault timeline, the *previous*
//!    barrier's V2V snapshot). Vehicles never observe same-epoch state
//!    of any other vehicle — not even shard-mates — so the tick phase
//!    can split each shard into fixed-size vehicle batches and fan them
//!    out across the work-stealing [`WorkerPool`]: which worker runs a
//!    batch, and in what order, is unobservable.
//! 3. **Barriers are canonical.** All cross-vehicle coupling (XEdge
//!    admission, fair queueing, contention, snapshot union, failover
//!    reliability samples) happens single-threaded on globally sorted
//!    data, so shard count, batch size, executor width and buffer
//!    interleaving cannot leak in.
//! 4. **Aggregation is order-free.** Per-shard metrics are integer
//!    counters and [`vdap_sim::StreamingHistogram`]s whose merge is
//!    associative and commutative bit-for-bit, and batch outputs are
//!    folded back in canonical `(shard, vehicle id)` order regardless
//!    of the steal schedule that produced them.

use std::sync::Arc;
use std::time::{Duration, Instant};

use vdap_ckpt::json::Value;
use vdap_ckpt::{
    f64_bits, get, get_array, get_bool, get_f64_bits, get_str, get_u32, get_u64_hex, obj, u64_hex,
    CkptError, Snapshot, SnapshotStore,
};
use vdap_edgeos::WorkloadClass;
use vdap_fault::{FaultEdge, FaultInjector, FaultKind};
use vdap_mobility::{
    Crossing, MobilityMetrics, RegionGraph, RouteProfile, TrackLeg, TrackMotion, TrackSnapshot,
    VehicleTrack,
};
use vdap_net::CellularChannel;
use vdap_obs::{
    intern_name, BarrierProfiler, HistogramState, JsonlSpillSink, RequestSpan, SpanOutcome,
    StreamingHistogram,
};
use vdap_offload::Tile;
use vdap_sim::{ReliabilityStats, RngStream, SeedFactory, SimDuration, SimTime};

use crate::ckpt::{
    check_fingerprint, config_fingerprint, dur_field, enc_dur, enc_hist, enc_metrics, enc_opt_time,
    enc_reliability, enc_rng, enc_time, hist_field, metrics_field, opt_time_field,
    reliability_field, rng_field, time_field, val_array, val_f64_bits, val_pair, val_str, val_u32,
    val_u64_hex, SnapshotDiagnostics, SnapshotWrite,
};
use crate::config::{
    handoff_label, tenant_label, CheckpointConfig, FleetConfig, FleetConfigError, CKPT_STORE_LABEL,
    ENGINE_LABEL,
};
use crate::edge::{EpochOutcome, XEdgeServer};
use crate::ingest::IngestPass;
use crate::metrics::{FleetMetrics, FleetReport, FleetTelemetry};
use crate::pool::WorkerPool;
use crate::shard::{
    dec_collab, dec_vehicle, enc_collab, enc_vehicle, region_label_table, CollabSnapshot, Shard,
};
use crate::vehicle::{VehicleState, BOARD_W, RADIO_W};

/// Deterministic sharded fleet simulation engine.
///
/// # Examples
///
/// ```
/// use vdap_fleet::{FleetConfig, FleetEngine};
/// use vdap_sim::SimDuration;
///
/// let mut cfg = FleetConfig::sized(64, 2);
/// cfg.duration = SimDuration::from_secs(5);
/// let report = FleetEngine::new(cfg).run();
/// assert!(report.metrics.requests > 0);
/// ```
#[derive(Debug, Clone)]
pub struct FleetEngine {
    cfg: FleetConfig,
}

impl FleetEngine {
    /// Creates an engine for the given scenario, rejecting unusable
    /// configurations (zero counts, more shards than vehicles, an epoch
    /// past the horizon, an empty class mix) with a descriptive
    /// [`FleetConfigError`] instead of a downstream panic or hang.
    pub fn try_new(cfg: FleetConfig) -> Result<Self, FleetConfigError> {
        cfg.validate()?;
        Ok(FleetEngine { cfg })
    }

    /// Creates an engine for the given scenario.
    ///
    /// # Panics
    ///
    /// Panics with the [`FleetConfigError`] message when the
    /// configuration is unusable; use [`FleetEngine::try_new`] to
    /// handle the rejection instead.
    #[must_use]
    pub fn new(cfg: FleetConfig) -> Self {
        match FleetEngine::try_new(cfg) {
            Ok(engine) => engine,
            Err(err) => panic!("invalid fleet config: {err}"),
        }
    }

    /// The scenario this engine will run.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Runs the fleet to its horizon and returns the merged report.
    ///
    /// Crash faults in the chaos plan are ignored on this path — an
    /// unsupervised run has nothing to resume from, and no snapshots
    /// are written. Use [`FleetEngine::run_supervised`] for both.
    #[must_use]
    pub fn run(&self) -> FleetReport {
        let ctx = RunCtx::new(&self.cfg);
        match run_core(&ctx, EngineState::fresh(&ctx), None, &[]) {
            RunEnd::Completed(report) => *report,
            RunEnd::Crashed { .. } => unreachable!("run() honors no crash faults"),
        }
    }

    /// Runs the fleet under a crash supervisor backed by `store`.
    ///
    /// At every checkpoint barrier (see [`FleetConfig::with_checkpoint`])
    /// the complete deterministic engine state is serialized into the
    /// store; a seeded [`FaultKind::EngineCrash`] kills the run at its
    /// epoch barrier, and the supervisor resumes from the newest
    /// snapshot whose checksum still verifies — falling back a
    /// generation past torn or corrupted writes, or restarting from
    /// scratch when no valid snapshot survives. The returned report's
    /// summary is byte-identical to the same scenario's straight
    /// [`FleetEngine::run`]; only wall-clock diagnostics differ.
    #[must_use]
    pub fn run_supervised(&self, store: &mut SnapshotStore) -> FleetReport {
        let ctx = RunCtx::new(&self.cfg);
        let crashes: Vec<u64> = ctx
            .injector
            .as_deref()
            .map(|inj| inj.engine_crashes(ENGINE_LABEL))
            .unwrap_or_default();
        // The fence rises past each crash already taken, so a restored
        // leg replaying the same epochs does not die twice on the same
        // fault window.
        let mut fence = 0u64;
        let mut state = EngineState::fresh(&ctx);
        loop {
            let live: Vec<u64> = crashes.iter().copied().filter(|&e| e > fence).collect();
            match run_core(&ctx, state, Some(store), &live) {
                RunEnd::Completed(report) => return *report,
                RunEnd::Crashed { epoch, snapshots } => {
                    fence = epoch;
                    let (snap, rejected) = store.newest_valid();
                    let mut carried = snapshots;
                    carried.resumes += 1;
                    carried.rejected_generations.extend(rejected);
                    state = match snap {
                        Some(snapshot) => {
                            let started = Instant::now();
                            let restored = state_from_snapshot(&ctx, &snapshot.payload)
                                .expect("checksum-valid snapshot decodes");
                            carried.load_ms = Some(started.elapsed().as_secs_f64() * 1e3);
                            restored
                        }
                        // Every stored generation failed its checksum:
                        // restart from scratch. Determinism makes this
                        // indistinguishable (minus wall clock) from
                        // never having crashed.
                        None => EngineState::fresh(&ctx),
                    };
                    state.snapshots = carried;
                }
            }
        }
    }

    /// Resumes a run from `snapshot` and drives it to the horizon.
    ///
    /// The snapshot must come from a scenario with the same fingerprint
    /// (seed, fleet shape, subsystem toggles). The *shard count* is
    /// deliberately not fingerprinted: a snapshot taken by an 8-shard
    /// run restores into a 1-shard engine and vice versa, and the
    /// resumed report's summary stays byte-identical either way.
    pub fn restore(&self, snapshot: &Snapshot) -> Result<FleetReport, CkptError> {
        let ctx = RunCtx::new(&self.cfg);
        let started = Instant::now();
        let mut state = state_from_snapshot(&ctx, &snapshot.payload)?;
        if snapshot.generation != state.epoch_index {
            return Err(CkptError::new(format!(
                "snapshot generation {} disagrees with payload epoch {}",
                snapshot.generation, state.epoch_index
            )));
        }
        state.snapshots.load_ms = Some(started.elapsed().as_secs_f64() * 1e3);
        state.snapshots.resumes = 1;
        match run_core(&ctx, state, None, &[]) {
            RunEnd::Completed(report) => Ok(*report),
            RunEnd::Crashed { .. } => unreachable!("restore() honors no crash faults"),
        }
    }
}

/// Immutable per-run context: everything the engine loop needs that is
/// a pure function of the scenario and therefore never serialized.
struct RunCtx {
    cfg: Arc<FleetConfig>,
    seeds: SeedFactory,
    injector: Option<Arc<FaultInjector>>,
    region_labels: Arc<Vec<String>>,
    tenant_labels: Vec<String>,
    horizon: SimTime,
}

impl RunCtx {
    fn new(cfg: &FleetConfig) -> Self {
        let cfg = Arc::new(cfg.clone());
        let seeds = SeedFactory::new(cfg.seed);
        let injector = cfg.chaos.as_ref().map(|plan| Arc::new(plan.compile()));
        let region_labels = Arc::new(region_label_table(cfg.regions));
        let tenant_labels = (0..cfg.tenants).map(tenant_label).collect();
        let horizon = cfg.horizon();
        RunCtx {
            cfg,
            seeds,
            injector,
            region_labels,
            tenant_labels,
            horizon,
        }
    }
}

/// The complete mutable engine state carried across epoch barriers —
/// exactly the set a snapshot serializes and a restore rebuilds.
struct EngineState {
    shards: Vec<Shard>,
    edge: XEdgeServer,
    engine_metrics: FleetMetrics,
    reliability: ReliabilityStats,
    telemetry: Option<FleetTelemetry>,
    ingest: Option<IngestPass>,
    mobility: Option<MobilityPass>,
    ladder_rng: RngStream,
    epoch_index: u64,
    /// Net events already accounted by pre-crash legs (0 on a fresh
    /// run; a restore folds the writing run's shard ledgers into it).
    events_base: u64,
    /// Wall-clock snapshot diagnostics, carried across supervised legs.
    snapshots: SnapshotDiagnostics,
}

impl EngineState {
    /// Epoch-0 state for a scenario, with the availability preamble
    /// already written.
    fn fresh(ctx: &RunCtx) -> Self {
        let cfg = &ctx.cfg;
        let shards: Vec<Shard> = (0..cfg.shards)
            .map(|i| Shard::new(i, cfg, &ctx.seeds))
            .collect();
        let mut reliability = ReliabilityStats::new();

        // The fault timeline is a pure function of the plan, so the
        // fleet-wide availability ledger can be written up front in
        // time order. Tenant-quota flaps are folded into the per-tenant
        // ledger below instead of the generic one, so a tenant's MTTR
        // reflects both its own flaps and fleet-wide node crashes
        // without double-counting the same label. Engine crashes are
        // preambled too: their downtime is fixed by the plan, so the
        // resume window lands in MTTR whether or not this particular
        // run path honors the crash.
        if let Some(inj) = ctx.injector.as_deref() {
            let mut transitions = inj.transitions();
            transitions.sort_by_key(|t| (t.at, t.window));
            for tr in transitions {
                let window = &inj.windows()[tr.window];
                if matches!(window.kind, FaultKind::TenantQuotaFlap { .. }) {
                    continue;
                }
                match tr.edge {
                    FaultEdge::Start => reliability.record_fault(&window.target, tr.at),
                    FaultEdge::End => reliability.record_recovery(&window.target, tr.at),
                }
            }
            record_tenant_ledger(&mut reliability, inj, cfg, ctx.horizon);
        }

        EngineState {
            shards,
            edge: XEdgeServer::new(cfg),
            engine_metrics: FleetMetrics::new(),
            reliability,
            telemetry: cfg.telemetry.then(|| {
                FleetTelemetry::configured(
                    cfg.telemetry_budget,
                    cfg.span_sample,
                    cfg.span_spill.clone(),
                    cfg.seed,
                )
            }),
            ingest: cfg
                .ingest
                .as_ref()
                .map(|_| IngestPass::new(cfg, &ctx.seeds)),
            mobility: cfg
                .mobility
                .as_ref()
                .map(|mob| MobilityPass::new(mob, cfg, &ctx.seeds)),
            // Ladder randomness is engine-owned and consumed in
            // canonical batch order at barriers, so it is shard-count
            // invariant.
            ladder_rng: ctx.seeds.stream("fleet-ladder"),
            epoch_index: 0,
            events_base: 0,
            snapshots: SnapshotDiagnostics::default(),
        }
    }
}

/// How one leg of the engine loop ended.
enum RunEnd {
    /// Ran to the horizon: the merged report.
    Completed(Box<FleetReport>),
    /// A seeded engine crash fired at this epoch barrier. The write
    /// diagnostics accumulated so far ride along to the next leg.
    Crashed {
        epoch: u64,
        snapshots: SnapshotDiagnostics,
    },
}

/// Drives `state` from its current epoch to the horizon — the single
/// engine loop behind [`FleetEngine::run`], [`FleetEngine::run_supervised`]
/// and [`FleetEngine::restore`].
///
/// With a `store` wired and a checkpoint config present, the complete
/// state is snapshotted at every interval barrier — after the barrier's
/// canonical exchange, when every cross-shard queue is drained and all
/// scheduled events lie strictly beyond the barrier. `crashes` lists
/// epoch barriers at which a supervised leg dies (empty on unsupervised
/// paths).
fn run_core(
    ctx: &RunCtx,
    mut state: EngineState,
    mut store: Option<&mut SnapshotStore>,
    crashes: &[u64],
) -> RunEnd {
    let cfg = &ctx.cfg;
    let horizon = ctx.horizon;
    let injector = ctx.injector.as_deref();
    let pool = WorkerPool::new(cfg.executor_pool_size());
    let batch_size = cfg.batch_size as usize;
    // The profiler measures this leg's wall clock only — diagnostics,
    // so a resumed run legitimately reports a shorter profile.
    let mut profiler = BarrierProfiler::new(pool.threads(), cfg.shards as usize);
    loop {
        let end_raw = SimTime::ZERO + cfg.epoch * (state.epoch_index + 1);
        let end = if end_raw > horizon { horizon } else { end_raw };

        // ---- tick phase: stealable vehicle batches, fork/join ----
        // Split every shard's fleet into fixed-size batches and fan
        // them out across the work-stealing pool. Each batch advances
        // its vehicles to the barrier against the previous epoch's
        // collab snapshot; the steal schedule is unobservable because
        // every vehicle owns its RNG streams and every batch output is
        // merged back in canonical order below.
        let mut batches = Vec::new();
        for (i, shard) in state.shards.iter_mut().enumerate() {
            batches.extend(shard.batches(i, batch_size));
        }
        let wall_started = Instant::now();
        let samples = pool.for_each_mut(&mut batches, |_, b| {
            b.advance(cfg, injector, &ctx.region_labels, end);
        });
        let wall = wall_started.elapsed();

        // ---- barrier: single-threaded, canonical-order exchange ----
        // The canonical merge is serial barrier work: shards ascending,
        // batches in vehicle-id order within each shard.
        let barrier_started = Instant::now();
        let mut shard_busy = vec![Duration::ZERO; state.shards.len()];
        for b in &batches {
            shard_busy[b.shard] += b.busy;
        }
        for b in batches {
            let shard = b.shard;
            state.shards[shard].merge(b);
        }
        profiler.record_epoch(wall, &samples, &shard_busy);
        let mut batch = Vec::new();
        let mut ingest_batches = Vec::new();
        let mut publications: Vec<(Tile, u32)> = Vec::new();
        let mut failovers: Vec<(u32, u32, f64)> = Vec::new();
        for shard in &mut state.shards {
            batch.append(&mut shard.outbox);
            ingest_batches.append(&mut shard.ingest_outbox);
            publications.append(&mut shard.publications);
            failovers.append(&mut shard.failover_samples);
            if let Some(tel) = state.telemetry.as_mut() {
                for span in shard.spans.drain(..) {
                    tel.registry.inc(
                        match span.outcome {
                            SpanOutcome::CollabHit => "fleet.collab_hits",
                            _ => "fleet.failovers",
                        },
                        1,
                    );
                    tel.absorb(span);
                }
            }
        }

        // Failover latencies feed an exact (order-sensitive) Summary,
        // so sort them canonically before recording.
        failovers.sort_unstable_by_key(|&(vehicle, seq, _)| (vehicle, seq));
        for &(_, _, ms) in &failovers {
            state
                .reliability
                .record_failover(SimDuration::from_millis_f64(ms));
        }

        let outcome = state
            .edge
            .serve_epoch(batch, end, injector, &mut state.ladder_rng);
        state
            .engine_metrics
            .queue_depth
            .record(outcome.queue_depth as f64);
        state
            .engine_metrics
            .elastic_lanes
            .record(f64::from(outcome.lanes));
        if outcome.scaled_up {
            state.engine_metrics.scale_ups += 1;
        }
        if outcome.scaled_down {
            state.engine_metrics.scale_downs += 1;
        }
        record_outcome(
            &mut state.engine_metrics,
            &mut state.reliability,
            &outcome,
            cfg,
            &ctx.tenant_labels,
            state.telemetry.as_mut(),
        );
        if let Some(tel) = state.telemetry.as_mut() {
            sample_epoch(tel, &outcome, state.epoch_index, end);
        }

        // The DDI ingestion pass: collector admission, the ingest
        // degradation ladder, and the storage drain — all sampled
        // at this barrier only, on canonically sorted batches.
        if let Some(ing) = state.ingest.as_mut() {
            let epoch_start = SimTime::ZERO + cfg.epoch * state.epoch_index;
            ing.barrier(
                std::mem::take(&mut ingest_batches),
                end - epoch_start,
                end,
                state.epoch_index,
                injector,
                &mut state.reliability,
                state.telemetry.as_mut(),
            );
        }

        // The geo-mobility pass: advance every seeded track across
        // the epoch just completed, price region crossings, and
        // migrate vehicles whose new region is homed on another
        // shard — all single-threaded, in canonical vehicle order.
        if let Some(mob) = state.mobility.as_mut() {
            let epoch_start = SimTime::ZERO + cfg.epoch * state.epoch_index;
            mob.barrier(
                &mut state.shards,
                &mut state.edge,
                state.ingest.as_mut(),
                injector,
                &mut state.reliability,
                state.telemetry.as_mut(),
                cfg,
                epoch_start,
                end - epoch_start,
                end,
                state.epoch_index,
            );
        }

        // Union this epoch's publications into the next snapshot;
        // ties go to the smallest vehicle id (order-independent).
        let mut snapshot = CollabSnapshot::new();
        for (tile, producer) in publications {
            snapshot
                .entry(tile)
                .and_modify(|p| {
                    if producer < *p {
                        *p = producer;
                    }
                })
                .or_insert(producer);
        }
        let snapshot = Arc::new(snapshot);
        for shard in &mut state.shards {
            shard.snapshot = Arc::clone(&snapshot);
        }

        // Telemetry budget enforcement is the last barrier step, after
        // every span drain and series sample of the epoch, so the
        // resident estimate it acts on is complete — and deterministic.
        if let Some(tel) = state.telemetry.as_mut() {
            tel.barrier_flush(state.epoch_index);
        }

        profiler.record_barrier(barrier_started.elapsed());
        state.epoch_index += 1;

        // ---- durability hooks. Snapshot first, crash second: a   ----
        // ---- crash landing on a checkpoint epoch still leaves    ----
        // ---- its barrier's snapshot behind, like a process dying ----
        // ---- right after fsync.                                  ----
        if let (Some(ck), Some(store)) = (cfg.checkpoint, store.as_deref_mut()) {
            if state.epoch_index.is_multiple_of(ck.interval_epochs) && end < horizon {
                write_snapshot(ctx, &mut state, store, ck, end);
            }
        }
        if end < horizon && crashes.contains(&state.epoch_index) {
            return RunEnd::Crashed {
                epoch: state.epoch_index,
                snapshots: state.snapshots,
            };
        }
        if end >= horizon {
            break;
        }
    }

    // Drain work still pending at the horizon: in-flight lanes
    // complete (their latency is fixed), stranded requeues take the
    // local fallback. The tail belongs to no barrier, so it updates
    // telemetry counters and spans but adds no epoch samples.
    let tail = state.edge.flush(horizon);
    record_outcome(
        &mut state.engine_metrics,
        &mut state.reliability,
        &tail,
        cfg,
        &ctx.tenant_labels,
        state.telemetry.as_mut(),
    );

    // Merge shard-local metrics (associative + commutative). Events
    // are per-vehicle tick/upload fires, so the ledger is independent
    // of which shard (or worker) a vehicle happened to run on.
    let mut metrics = state.engine_metrics;
    let mut events_processed = state.events_base;
    for shard in &state.shards {
        events_processed += shard.events;
        metrics.merge(&shard.metrics);
    }
    if let Some(tel) = state.telemetry.as_mut() {
        tel.registry.inc("fleet.requests", metrics.requests);
        // With spill configured, the horizon tail goes to disk too, so
        // the JSONL segments hold the complete post-sampling stream.
        tel.final_flush(state.epoch_index);
        // Insertion order interleaves vehicle-side and edge-side
        // resolutions arbitrarily; canonical order restores a
        // shard-count-invariant log.
        tel.spans.sort_canonical();
    }
    let region_availability = state
        .reliability
        .faulted_components()
        .iter()
        .map(|c| ((*c).to_string(), state.reliability.availability(c, horizon)))
        .collect();

    RunEnd::Completed(Box::new(FleetReport {
        metrics,
        reliability: state.reliability,
        region_availability,
        vehicles: cfg.vehicles,
        shards: cfg.shards,
        duration: cfg.duration,
        events_processed,
        admission_offered: state.edge.offered(),
        admission_rejected: state.edge.rejected(),
        mobility: state.mobility.as_ref().map(|m| m.metrics.clone()),
        region_admission: state.edge.region_admission_table(),
        physical_migrations: state.mobility.as_ref().map_or(0, |m| m.physical_migrations),
        ingest: state.ingest.as_mut().map(IngestPass::finish),
        telemetry: state.telemetry,
        profile: profiler.finish(),
        snapshots: state.snapshots,
    }))
}

/// Serializes the complete engine state at a barrier and persists it,
/// applying any seeded snapshot-store chaos *to the encoded bytes* on
/// the way in — the store itself stays dumb, exactly like a writer
/// dying mid-`write` (torn) or a bad sector flipping a bit (corrupt).
fn write_snapshot(
    ctx: &RunCtx,
    state: &mut EngineState,
    store: &mut SnapshotStore,
    ck: CheckpointConfig,
    end: SimTime,
) {
    let started = Instant::now();
    let generation = state.epoch_index;
    let mut encoded = Snapshot::new(generation, snapshot_payload(&ctx.cfg, state)).encode();
    let mut chaos = None;
    if let Some(inj) = ctx.injector.as_deref() {
        if inj.snapshot_torn(CKPT_STORE_LABEL, end) {
            // A torn write: the tail of the snapshot never hit disk.
            encoded.truncate(encoded.len() / 2);
            chaos = Some("torn-write");
        } else if inj.snapshot_corrupt(CKPT_STORE_LABEL, end) {
            // Bit rot: flip the low bit of the middle byte. The
            // encoding is ASCII, so the result is still valid UTF-8 —
            // only the checksum (or the JSON grammar) can catch it.
            let mut bytes = encoded.into_bytes();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            encoded = String::from_utf8(bytes).expect("low-bit flips keep ascii valid utf-8");
            chaos = Some("corruption");
        }
    }
    if let Err(err) = store.put(generation, &encoded) {
        panic!("snapshot store write failed: {err}");
    }
    if let Err(err) = store.retain_last(ck.retain) {
        panic!("snapshot retention failed: {err}");
    }
    state.snapshots.writes.push(SnapshotWrite {
        generation,
        bytes: encoded.len(),
        write_ms: started.elapsed().as_secs_f64() * 1e3,
        chaos,
    });
}

/// The complete deterministic engine state as a canonical JSON value.
///
/// Shard-local metrics and event counts are folded into the engine
/// totals before encoding and vehicles are listed in id order, so a
/// snapshot is *canonical*: every shard count serializes the same
/// scenario at the same barrier to the same payload — which is what
/// lets a snapshot restore into a different shard count.
fn snapshot_payload(cfg: &FleetConfig, state: &EngineState) -> Value {
    let mut metrics = state.engine_metrics.clone();
    let mut events = state.events_base;
    for shard in &state.shards {
        events += shard.events;
        metrics.merge(&shard.metrics);
    }
    let mut vehicles: Vec<&VehicleState> = state
        .shards
        .iter()
        .flat_map(|s| s.vehicles.values())
        .collect();
    vehicles.sort_unstable_by_key(|v| v.id);
    // Post-barrier, every shard holds the same collab Arc.
    let collab: &CollabSnapshot = &state.shards[0].snapshot;
    obj(vec![
        ("config", config_fingerprint(cfg)),
        ("epoch", u64_hex(state.epoch_index)),
        ("events_base", u64_hex(events)),
        ("ladder_rng", enc_rng(&state.ladder_rng)),
        ("metrics", enc_metrics(&metrics)),
        ("reliability", enc_reliability(&state.reliability)),
        (
            "vehicles",
            Value::Array(vehicles.into_iter().map(enc_vehicle).collect()),
        ),
        ("collab", enc_collab(collab)),
        ("edge", state.edge.ckpt()),
        (
            "ingest",
            state.ingest.as_ref().map_or(Value::Null, IngestPass::ckpt),
        ),
        (
            "mobility",
            state
                .mobility
                .as_ref()
                .map_or(Value::Null, MobilityPass::ckpt),
        ),
        (
            "telemetry",
            state.telemetry.as_ref().map_or(Value::Null, enc_telemetry),
        ),
    ])
}

/// Rebuilds a complete [`EngineState`] from a decoded snapshot payload.
///
/// Everything that is a pure function of the scenario — the region
/// graph, contention curves, retry policies, label tables, and the
/// vehicle → shard residency map — is *recomputed*, never deserialized,
/// which is exactly why the restoring engine's shard count is free to
/// differ from the writing run's.
fn state_from_snapshot(ctx: &RunCtx, payload: &Value) -> Result<EngineState, CkptError> {
    let cfg = &ctx.cfg;
    check_fingerprint(cfg, payload)?;
    let epoch_index = get_u64_hex(payload, "epoch")?;
    let t_snap = SimTime::ZERO + cfg.epoch * epoch_index;
    if epoch_index == 0 || t_snap >= ctx.horizon {
        return Err(CkptError::new(format!(
            "snapshot epoch {epoch_index} outside the run's open interval"
        )));
    }
    let events_base = get_u64_hex(payload, "events_base")?;
    let ladder_rng = rng_field(payload, "ladder_rng")?;
    let engine_metrics = metrics_field(payload, "metrics")?;
    let reliability = reliability_field(payload, "reliability")?;
    let collab = Arc::new(dec_collab(payload, "collab")?);

    let mobility = match (get(payload, "mobility")?, cfg.mobility.is_some()) {
        (Value::Null, false) => None,
        (Value::Null, true) | (_, false) => {
            return Err(CkptError::new(
                "snapshot and config disagree on the mobility subsystem",
            ))
        }
        (enc, true) => Some(MobilityPass::restore_ckpt(cfg, &ctx.seeds, enc)?),
    };

    let vehicles_enc = get_array(payload, "vehicles")?;
    if vehicles_enc.len() != cfg.vehicles as usize {
        return Err(CkptError::new(format!(
            "snapshot holds {} vehicles, config expects {}",
            vehicles_enc.len(),
            cfg.vehicles
        )));
    }
    let mut buckets: Vec<Vec<VehicleState>> = (0..cfg.shards).map(|_| Vec::new()).collect();
    for enc in vehicles_enc {
        let v = dec_vehicle(cfg, enc)?;
        if v.id >= cfg.vehicles {
            return Err(CkptError::new(format!("vehicle id {} out of range", v.id)));
        }
        // The host shard is an invariant of the vehicle's *current*
        // region under THIS engine's partition, not the writer's.
        let host = match mobility.as_ref() {
            Some(mob) => cfg.shard_of_region(mob.tracks[v.id as usize].region()),
            None => cfg.initial_shard_of(v.id),
        };
        buckets[host as usize].push(v);
    }
    let shards: Vec<Shard> = buckets
        .into_iter()
        .enumerate()
        .map(|(i, vehicles)| Shard::restore(i as u32, cfg, vehicles, Arc::clone(&collab)))
        .collect();

    let edge = XEdgeServer::restore_ckpt(cfg, get(payload, "edge")?)?;
    let ingest = match (get(payload, "ingest")?, cfg.ingest.is_some()) {
        (Value::Null, false) => None,
        (Value::Null, true) | (_, false) => {
            return Err(CkptError::new(
                "snapshot and config disagree on the ingest subsystem",
            ))
        }
        (enc, true) => Some(IngestPass::restore_ckpt(cfg, &ctx.seeds, enc)?),
    };
    let telemetry = match (get(payload, "telemetry")?, cfg.telemetry) {
        (Value::Null, false) => None,
        (Value::Null, true) | (_, false) => {
            return Err(CkptError::new("snapshot and config disagree on telemetry"))
        }
        (enc, true) => {
            let (mut tel, spill_state) = dec_telemetry(enc)?;
            // Sink wiring is config-derived: the budget, the sampling
            // seed, and the spill *directory* come from the config the
            // run restores under, while the dynamic counters (spilled
            // spans, current segment) come from the snapshot so the
            // writer appends where the crashed run left off.
            tel.budget = cfg.telemetry_budget;
            tel.sample_seed = cfg.seed;
            tel.sample = tel.sample.or(cfg.span_sample);
            if let Some(dir) = cfg.span_spill.clone() {
                let (spilled, index, bytes) = spill_state;
                tel.spill = Some(JsonlSpillSink::resume(
                    dir,
                    vdap_obs::DEFAULT_SEGMENT_BYTES,
                    spilled,
                    index,
                    bytes,
                ));
            }
            Some(tel)
        }
    };

    Ok(EngineState {
        shards,
        edge,
        engine_metrics,
        reliability,
        telemetry,
        ingest,
        mobility,
        ladder_rng,
        epoch_index,
        events_base,
        snapshots: SnapshotDiagnostics::default(),
    })
}

// ---- telemetry codec ------------------------------------------------

fn enc_span(s: &RequestSpan) -> Value {
    obj(vec![
        ("vehicle", Value::Number(f64::from(s.vehicle))),
        ("seq", Value::Number(f64::from(s.seq))),
        ("tenant", Value::Number(f64::from(s.tenant))),
        ("region", Value::Number(f64::from(s.region))),
        ("shard", Value::Number(f64::from(s.shard))),
        ("class", Value::String(s.class.to_string())),
        ("generated", enc_time(s.generated)),
        ("admitted", enc_opt_time(s.admitted)),
        ("serve_start", enc_opt_time(s.serve_start)),
        ("completed", enc_time(s.completed)),
        ("outcome", Value::String(s.outcome.label().to_string())),
        ("retries", Value::Number(f64::from(s.retries))),
        ("requeues", Value::Number(f64::from(s.requeues))),
        ("handoff", Value::Bool(s.handoff)),
    ])
}

fn dec_span(v: &Value) -> Result<RequestSpan, CkptError> {
    let outcome_label = get_str(v, "outcome")?;
    let outcome = SpanOutcome::from_label(outcome_label)
        .ok_or_else(|| CkptError::new(format!("unknown span outcome {outcome_label:?}")))?;
    Ok(RequestSpan {
        vehicle: get_u32(v, "vehicle")?,
        seq: get_u32(v, "seq")?,
        tenant: get_u32(v, "tenant")?,
        region: get_u32(v, "region")?,
        shard: get_u32(v, "shard")?,
        class: intern_name(get_str(v, "class")?),
        generated: time_field(v, "generated")?,
        admitted: opt_time_field(v, "admitted")?,
        serve_start: opt_time_field(v, "serve_start")?,
        completed: time_field(v, "completed")?,
        outcome,
        retries: get_u32(v, "retries")?,
        requeues: get_u32(v, "requeues")?,
        handoff: get_bool(v, "handoff")?,
    })
}

/// Serializes the full telemetry surface: the span log in its current
/// order (the final `sort_canonical` has unique keys, so order here is
/// immaterial), counters, gauges, and every per-epoch series.
fn enc_telemetry(tel: &FleetTelemetry) -> Value {
    obj(vec![
        (
            "spans",
            Value::Array(tel.spans.iter().map(enc_span).collect()),
        ),
        (
            "counters",
            Value::Array(
                tel.registry
                    .counters()
                    .map(|(name, v)| {
                        Value::Array(vec![Value::String(name.to_string()), u64_hex(v)])
                    })
                    .collect(),
            ),
        ),
        (
            "gauges",
            Value::Array(
                tel.registry
                    .gauges()
                    .map(|(name, v)| {
                        Value::Array(vec![Value::String(name.to_string()), f64_bits(v)])
                    })
                    .collect(),
            ),
        ),
        (
            "series",
            Value::Array(
                tel.registry
                    .all_series()
                    .map(|(name, pts)| {
                        Value::Array(vec![
                            Value::String(name.to_string()),
                            Value::Array(
                                pts.iter()
                                    .map(|p| {
                                        Value::Array(vec![
                                            u64_hex(p.epoch),
                                            enc_time(p.at),
                                            f64_bits(p.value),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "hists",
            Value::Array(
                tel.registry
                    .all_histograms()
                    .map(|h| {
                        let st = h.state();
                        Value::Array(vec![
                            Value::String(h.name().to_string()),
                            obj(vec![
                                ("count", u64_hex(st.count)),
                                ("sum_hi", u64_hex((st.sum_ticks >> 64) as u64)),
                                ("sum_lo", u64_hex(st.sum_ticks as u64)),
                                ("min", u64_hex(st.min_ticks)),
                                ("max", u64_hex(st.max_ticks)),
                                (
                                    "buckets",
                                    Value::Array(
                                        st.buckets
                                            .iter()
                                            .map(|&(i, n)| {
                                                Value::Array(vec![
                                                    u64_hex(u64::from(i)),
                                                    u64_hex(n),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "sink",
            obj(vec![
                // 0 encodes "sampling off" (a configured rate is never
                // zero — validation rejects it).
                ("sample", u64_hex(tel.sample.map_or(0, u64::from))),
                ("sampled_out", u64_hex(tel.sampled_out)),
                ("rolled", Value::Bool(tel.rolled)),
                ("peak_bytes", u64_hex(tel.peak_bytes)),
                (
                    "spilled",
                    u64_hex(tel.spill.as_ref().map_or(0, JsonlSpillSink::spilled)),
                ),
                (
                    "spill_index",
                    u64_hex(
                        tel.spill
                            .as_ref()
                            .map_or(0, |s| u64::from(s.current_index())),
                    ),
                ),
                (
                    "spill_bytes",
                    u64_hex(tel.spill.as_ref().map_or(0, JsonlSpillSink::current_bytes)),
                ),
            ]),
        ),
    ])
}

type SpillState = (u64, u32, u64);

fn dec_telemetry(v: &Value) -> Result<(FleetTelemetry, SpillState), CkptError> {
    let mut tel = FleetTelemetry::default();
    for s in get_array(v, "spans")? {
        tel.spans.push(dec_span(s)?);
    }
    for pair in get_array(v, "counters")? {
        let (name, count) = val_pair(pair)?;
        tel.registry
            .inc(intern_name(val_str(name)?), val_u64_hex(count)?);
    }
    for pair in get_array(v, "gauges")? {
        let (name, value) = val_pair(pair)?;
        tel.registry
            .set_gauge(intern_name(val_str(name)?), val_f64_bits(value)?);
    }
    for entry in get_array(v, "series")? {
        let (name, points) = val_pair(entry)?;
        let name = intern_name(val_str(name)?);
        for p in val_array(points)? {
            let [epoch, at, value] = val_array(p)? else {
                return Err(CkptError::new("series point is not a triple"));
            };
            tel.registry.sample(
                name,
                val_u64_hex(epoch)?,
                SimTime::from_nanos(val_u64_hex(at)?),
                val_f64_bits(value)?,
            );
        }
    }
    for entry in get_array(v, "hists")? {
        let (name, body) = val_pair(entry)?;
        let name = intern_name(val_str(name)?);
        let mut buckets = Vec::new();
        for pair in get_array(body, "buckets")? {
            let (index, count) = val_pair(pair)?;
            let index = u32::try_from(val_u64_hex(index)?)
                .map_err(|_| CkptError::new("histogram bucket index out of range"))?;
            buckets.push((index, val_u64_hex(count)?));
        }
        let sum_ticks = (u128::from(get_u64_hex(body, "sum_hi")?) << 64)
            | u128::from(get_u64_hex(body, "sum_lo")?);
        tel.registry
            .restore_histogram(StreamingHistogram::from_state(
                name,
                HistogramState {
                    buckets,
                    count: get_u64_hex(body, "count")?,
                    sum_ticks,
                    min_ticks: get_u64_hex(body, "min")?,
                    max_ticks: get_u64_hex(body, "max")?,
                },
            ));
    }
    let sink = get(v, "sink")?;
    let sample = get_u64_hex(sink, "sample")?;
    tel.sample = if sample == 0 {
        None
    } else {
        Some(u32::try_from(sample).map_err(|_| CkptError::new("sample rate out of range"))?)
    };
    tel.sampled_out = get_u64_hex(sink, "sampled_out")?;
    tel.rolled = get_bool(sink, "rolled")?;
    tel.peak_bytes = get_u64_hex(sink, "peak_bytes")?;
    let spill_state = (
        get_u64_hex(sink, "spilled")?,
        u32::try_from(get_u64_hex(sink, "spill_index")?)
            .map_err(|_| CkptError::new("spill segment index out of range"))?,
        get_u64_hex(sink, "spill_bytes")?,
    );
    Ok((tel, spill_state))
}

// ---- mobility codec -------------------------------------------------

fn enc_track(t: &TrackSnapshot) -> Value {
    let profile = match t.profile {
        RouteProfile::Commute => 0.0,
        RouteProfile::Roam => 1.0,
        RouteProfile::RushHour => 2.0,
    };
    let leg = match t.leg {
        TrackLeg::BeforeOutbound => 0.0,
        TrackLeg::AtWork => 1.0,
        TrackLeg::Done => 2.0,
    };
    let motion = match &t.motion {
        TrackMotion::Parked => obj(vec![("kind", Value::String("parked".to_string()))]),
        TrackMotion::Dwell(until) => obj(vec![
            ("kind", Value::String("dwell".to_string())),
            ("until", enc_time(*until)),
        ]),
        TrackMotion::Drive {
            edge,
            remaining,
            path,
        } => obj(vec![
            ("kind", Value::String("drive".to_string())),
            ("edge", Value::Number(*edge as f64)),
            ("remaining", enc_dur(*remaining)),
            (
                "path",
                Value::Array(path.iter().map(|&r| Value::Number(f64::from(r))).collect()),
            ),
        ]),
    };
    obj(vec![
        ("id", Value::Number(f64::from(t.id))),
        ("profile", Value::Number(profile)),
        ("region", Value::Number(f64::from(t.region))),
        ("home", Value::Number(f64::from(t.home))),
        ("work", Value::Number(f64::from(t.work))),
        ("outbound_at", enc_time(t.outbound_at)),
        ("return_at", enc_time(t.return_at)),
        ("dwell_mean", enc_dur(t.dwell_mean)),
        ("leg", Value::Number(leg)),
        ("motion", motion),
        (
            "rng",
            Value::Array(t.rng.iter().copied().map(u64_hex).collect()),
        ),
    ])
}

fn dec_track(v: &Value) -> Result<TrackSnapshot, CkptError> {
    let profile = match get_u32(v, "profile")? {
        0 => RouteProfile::Commute,
        1 => RouteProfile::Roam,
        2 => RouteProfile::RushHour,
        other => return Err(CkptError::new(format!("unknown route profile {other}"))),
    };
    let leg = match get_u32(v, "leg")? {
        0 => TrackLeg::BeforeOutbound,
        1 => TrackLeg::AtWork,
        2 => TrackLeg::Done,
        other => return Err(CkptError::new(format!("unknown track leg {other}"))),
    };
    let motion_v = get(v, "motion")?;
    let motion = match get_str(motion_v, "kind")? {
        "parked" => TrackMotion::Parked,
        "dwell" => TrackMotion::Dwell(time_field(motion_v, "until")?),
        "drive" => TrackMotion::Drive {
            edge: get_u32(motion_v, "edge")? as usize,
            remaining: dur_field(motion_v, "remaining")?,
            path: get_array(motion_v, "path")?
                .iter()
                .map(val_u32)
                .collect::<Result<_, _>>()?,
        },
        other => return Err(CkptError::new(format!("unknown track motion {other:?}"))),
    };
    let [a, b, c, d] = get_array(v, "rng")? else {
        return Err(CkptError::new("track rng is not four words"));
    };
    Ok(TrackSnapshot {
        id: get_u32(v, "id")?,
        profile,
        region: get_u32(v, "region")?,
        home: get_u32(v, "home")?,
        work: get_u32(v, "work")?,
        outbound_at: time_field(v, "outbound_at")?,
        return_at: time_field(v, "return_at")?,
        dwell_mean: dur_field(v, "dwell_mean")?,
        leg,
        motion,
        rng: [
            val_u64_hex(a)?,
            val_u64_hex(b)?,
            val_u64_hex(c)?,
            val_u64_hex(d)?,
        ],
    })
}

fn enc_mobility_metrics(m: &MobilityMetrics) -> Value {
    obj(vec![
        ("crossings", u64_hex(m.crossings)),
        ("migrations", u64_hex(m.migrations)),
        ("same_shard_crossings", u64_hex(m.same_shard_crossings)),
        ("storm_crossings", u64_hex(m.storm_crossings)),
        ("stale_cache_hits", u64_hex(m.stale_cache_hits)),
        ("readdressed_batches", u64_hex(m.readdressed_batches)),
        ("handoff_seconds", f64_bits(m.handoff_seconds)),
        ("handoff_ms", enc_hist(&m.handoff_ms)),
        ("crossing_speed_mph", enc_hist(&m.crossing_speed_mph)),
    ])
}

fn dec_mobility_metrics(v: &Value) -> Result<MobilityMetrics, CkptError> {
    Ok(MobilityMetrics {
        crossings: get_u64_hex(v, "crossings")?,
        migrations: get_u64_hex(v, "migrations")?,
        same_shard_crossings: get_u64_hex(v, "same_shard_crossings")?,
        storm_crossings: get_u64_hex(v, "storm_crossings")?,
        stale_cache_hits: get_u64_hex(v, "stale_cache_hits")?,
        readdressed_batches: get_u64_hex(v, "readdressed_batches")?,
        handoff_seconds: get_f64_bits(v, "handoff_seconds")?,
        handoff_ms: hist_field(v, "handoff_ms")?,
        crossing_speed_mph: hist_field(v, "crossing_speed_mph")?,
    })
}

/// The engine-owned geo-mobility pass.
///
/// All mobility state — the seeded region graph, every vehicle's route
/// track, and the vehicle → shard residency table — lives on the engine
/// thread and advances only at barriers, so crossings are a pure
/// function of `(seed, vehicle, epoch)` and never of shard count. The
/// pass runs in canonical vehicle-id order; only the *physical* evict/
/// adopt moves depend on how many shards this run happens to use, and
/// those feed diagnostics, never the deterministic ledger.
struct MobilityPass {
    graph: RegionGraph,
    tracks: Vec<VehicleTrack>,
    /// Which shard currently hosts each vehicle.
    host: Vec<u32>,
    channel: CellularChannel,
    handoff_labels: Vec<String>,
    metrics: MobilityMetrics,
    physical_migrations: u64,
    crossings_buf: Vec<Crossing>,
}

impl MobilityPass {
    fn new(mob: &vdap_mobility::MobilityConfig, cfg: &FleetConfig, seeds: &SeedFactory) -> Self {
        let mut graph_rng = seeds.stream("fleet-mobility-graph");
        let graph = RegionGraph::seeded(
            cfg.regions,
            mob.chords(cfg.regions),
            mob.segment_capacity,
            &mut graph_rng,
        );
        let tracks = (0..cfg.vehicles)
            .map(|id| {
                VehicleTrack::new(
                    id,
                    cfg.region_of(id),
                    mob,
                    &graph,
                    cfg.duration,
                    seeds.indexed_stream("fleet-mobility", u64::from(id)),
                )
            })
            .collect();
        MobilityPass {
            graph,
            tracks,
            host: (0..cfg.vehicles)
                .map(|id| cfg.initial_shard_of(id))
                .collect(),
            channel: CellularChannel::calibrated(),
            handoff_labels: (0..cfg.regions).map(handoff_label).collect(),
            metrics: MobilityMetrics::new(),
            physical_migrations: 0,
            crossings_buf: Vec::new(),
        }
    }

    /// Serializes the pass: every route track (in vehicle-id order),
    /// the mobility ledger, and the physical-migration diagnostic. The
    /// host table is *not* stored — it is recomputable from each
    /// track's current region, and storing it would pin the writer's
    /// shard count.
    fn ckpt(&self) -> Value {
        obj(vec![
            (
                "tracks",
                Value::Array(
                    self.tracks
                        .iter()
                        .map(|t| enc_track(&t.snapshot()))
                        .collect(),
                ),
            ),
            ("metrics", enc_mobility_metrics(&self.metrics)),
            ("physical_migrations", u64_hex(self.physical_migrations)),
        ])
    }

    /// Rebuilds the pass for this engine's shard count: the region
    /// graph and channel are re-derived from the seed, the tracks come
    /// from the snapshot, and the host table is recomputed from each
    /// track's current region.
    fn restore_ckpt(
        cfg: &FleetConfig,
        seeds: &SeedFactory,
        v: &Value,
    ) -> Result<MobilityPass, CkptError> {
        let Some(mob) = cfg.mobility.as_ref() else {
            return Err(CkptError::new(
                "mobility snapshot without a mobility config",
            ));
        };
        let mut graph_rng = seeds.stream("fleet-mobility-graph");
        let graph = RegionGraph::seeded(
            cfg.regions,
            mob.chords(cfg.regions),
            mob.segment_capacity,
            &mut graph_rng,
        );
        let tracks_enc = get_array(v, "tracks")?;
        if tracks_enc.len() != cfg.vehicles as usize {
            return Err(CkptError::new(format!(
                "snapshot holds {} mobility tracks, config expects {}",
                tracks_enc.len(),
                cfg.vehicles
            )));
        }
        let mut tracks = Vec::with_capacity(tracks_enc.len());
        for (i, enc) in tracks_enc.iter().enumerate() {
            let snap = dec_track(enc)?;
            if snap.id as usize != i {
                return Err(CkptError::new(format!(
                    "mobility track {i} carries id {}",
                    snap.id
                )));
            }
            tracks.push(VehicleTrack::from_snapshot(snap));
        }
        let host = tracks
            .iter()
            .map(|t| cfg.shard_of_region(t.region()))
            .collect();
        Ok(MobilityPass {
            graph,
            tracks,
            host,
            channel: CellularChannel::calibrated(),
            handoff_labels: (0..cfg.regions).map(handoff_label).collect(),
            metrics: dec_mobility_metrics(get(v, "metrics")?)?,
            physical_migrations: get_u64_hex(v, "physical_migrations")?,
            crossings_buf: Vec::new(),
        })
    }

    /// One barrier's mobility step, covering the epoch
    /// `[epoch_start, end]` the shards just finished.
    #[allow(clippy::too_many_arguments)]
    fn barrier(
        &mut self,
        shards: &mut [Shard],
        edge: &mut XEdgeServer,
        mut ingest: Option<&mut IngestPass>,
        injector: Option<&FaultInjector>,
        reliability: &mut ReliabilityStats,
        telemetry: Option<&mut FleetTelemetry>,
        cfg: &FleetConfig,
        epoch_start: SimTime,
        window: SimDuration,
        end: SimTime,
        epoch_index: u64,
    ) {
        // Vehicles that crossed at the *previous* barrier spent the
        // epoch with a cold collab cache: drain the suppressed-hit
        // counters and clear every flag before marking this barrier's
        // crossers.
        for shard in shards.iter_mut() {
            self.metrics.stale_cache_hits += std::mem::take(&mut shard.stale_hits);
            for v in shard.vehicles.values_mut() {
                v.cache_stale = false;
            }
        }

        // Congestion multipliers from pre-advance occupancy: every
        // track still reports the segment it was on when the epoch
        // began, so the load each driver sees is globally determined
        // before anyone moves.
        let mut occupancy = vec![0u32; self.graph.segments().len()];
        for track in &self.tracks {
            if let Some(edge_id) = track.driving_edge() {
                occupancy[edge_id] += 1;
            }
        }
        let congestion: Vec<f64> = self
            .graph
            .segments()
            .iter()
            .zip(&occupancy)
            .map(|(seg, &occ)| seg.congestion_multiplier(occ))
            .collect();

        let mut epoch_crossings = 0u64;
        let mut epoch_migrations = 0u64;
        for id in 0..cfg.vehicles {
            self.crossings_buf.clear();
            self.tracks[id as usize].advance(
                epoch_start,
                window,
                &self.graph,
                &congestion,
                &mut self.crossings_buf,
            );
            if self.crossings_buf.is_empty() {
                continue;
            }
            let tenant = cfg.tenant_of(id);
            let mut handoff = SimDuration::ZERO;
            for c in &self.crossings_buf {
                // A handoff storm at the destination cell multiplies
                // the crossing cost — the single accounting path for
                // handoff seconds, organic or injected.
                let storming = injector
                    .is_some_and(|inj| inj.handoff_storm(&self.handoff_labels[c.to as usize], end));
                let cost = if storming {
                    self.metrics.storm_crossings += 1;
                    self.channel.storm_handoff_cost(c.speed)
                } else {
                    self.channel.handoff_cost(c.speed)
                };
                self.metrics.crossings += 1;
                epoch_crossings += 1;
                self.metrics.handoff_seconds += cost.as_secs_f64();
                self.metrics.handoff_ms.record_duration(cost);
                self.metrics.crossing_speed_mph.record(c.speed.0);
                // `migrations` counts home-node *domain* changes — the
                // canonical placement function — so the ledger is
                // byte-identical at any shard count.
                if c.from % cfg.edge_nodes != c.to % cfg.edge_nodes {
                    self.metrics.migrations += 1;
                    epoch_migrations += 1;
                } else {
                    self.metrics.same_shard_crossings += 1;
                }
                reliability.record_degraded(&self.handoff_labels[c.to as usize], cost);
                edge.reregister(tenant, c.from, c.to);
                handoff += cost;
            }

            // The vehicle's shard-side state: handoff debt lands on its
            // next request, the region moves, the collab cache goes
            // stale for one epoch.
            let dest = self.tracks[id as usize].region();
            let host = self.host[id as usize] as usize;
            {
                let v = shards[host]
                    .vehicles
                    .get_mut(&id)
                    .expect("host table tracks residency");
                v.pending_handoff += handoff;
                v.region = dest;
                v.cache_stale = true;
            }
            if let Some(ing) = ingest.as_deref_mut() {
                self.metrics.readdressed_batches += ing.readdress(u64::from(id), dest);
            }

            // Physical migration: move the whole vehicle to the shard
            // owning its new region. Shard-count dependent, so it only
            // feeds diagnostics.
            let target = cfg.shard_of_region(dest);
            if target != self.host[id as usize] {
                let v = shards[host].evict(id).expect("resident vehicle");
                shards[target as usize].adopt(v);
                self.host[id as usize] = target;
                self.physical_migrations += 1;
            }
        }

        if let Some(tel) = telemetry {
            tel.registry.sample(
                "mobility.crossings",
                epoch_index,
                end,
                epoch_crossings as f64,
            );
            tel.registry.sample(
                "mobility.migrations",
                epoch_index,
                end,
                epoch_migrations as f64,
            );
        }
    }
}

/// The interned series name for a class's per-epoch served count.
const fn served_series(class: WorkloadClass) -> &'static str {
    match class {
        WorkloadClass::Detection => "fleet.served.detection",
        WorkloadClass::Infotainment => "fleet.served.infotainment",
        WorkloadClass::PbeamTraining => "fleet.served.pbeam-training",
    }
}

/// The interned series name for a class's per-epoch rejected count.
const fn rejected_series(class: WorkloadClass) -> &'static str {
    match class {
        WorkloadClass::Detection => "fleet.rejected.detection",
        WorkloadClass::Infotainment => "fleet.rejected.infotainment",
        WorkloadClass::PbeamTraining => "fleet.rejected.pbeam-training",
    }
}

/// Samples the per-epoch time series at one barrier. Every sampled
/// value is an output of the canonical single-threaded serving pass,
/// so the series are shard-count invariant by construction.
fn sample_epoch(tel: &mut FleetTelemetry, outcome: &EpochOutcome, epoch: u64, at: SimTime) {
    tel.registry
        .sample("xedge.queue_depth", epoch, at, outcome.queue_depth as f64);
    tel.registry
        .sample("xedge.lanes", epoch, at, f64::from(outcome.lanes));
    for class in WorkloadClass::ALL {
        let served = outcome.served.iter().filter(|s| s.class == class).count();
        let rejected = outcome.rejected.iter().filter(|r| r.class == class).count();
        tel.registry
            .sample(served_series(class), epoch, at, served as f64);
        tel.registry
            .sample(rejected_series(class), epoch, at, rejected as f64);
    }
    tel.registry
        .set_gauge("xedge.lanes", f64::from(outcome.lanes));
}

/// Folds one barrier's serving outcome into the engine metrics and the
/// reliability ledger, per class. Rejected requests keep the legacy
/// accounting: the vehicle pays the uplink it wasted discovering the
/// bounce, then the full on-board fallback at the class's own service
/// time. Skipped pBEAM rounds (rung 3 for the training class) count as
/// fallbacks but accrue no degraded-mode time.
fn record_outcome(
    metrics: &mut FleetMetrics,
    reliability: &mut ReliabilityStats,
    outcome: &EpochOutcome,
    cfg: &FleetConfig,
    tenant_labels: &[String],
    mut telemetry: Option<&mut FleetTelemetry>,
) {
    for served in &outcome.served {
        metrics.record_served(
            served.class,
            served.tenant,
            served.work,
            served.e2e,
            served.energy_j,
        );
        if let Some(tel) = telemetry.as_deref_mut() {
            tel.registry.inc("fleet.served", 1);
            tel.absorb(RequestSpan {
                vehicle: served.vehicle,
                seq: served.seq,
                tenant: served.tenant,
                region: served.region,
                shard: cfg.shard_of(served.vehicle),
                class: served.class.label(),
                generated: served.arrival,
                admitted: Some(served.admitted),
                serve_start: Some(served.serve_start),
                completed: served.arrival + served.e2e,
                outcome: SpanOutcome::EdgeServed,
                retries: served.retries,
                requeues: served.requeues,
                handoff: served.handoff,
            });
        }
    }
    for rejected in &outcome.rejected {
        let spec = cfg.class(rejected.class);
        let e2e = rejected.uplink + cfg.failover_penalty + spec.vehicle_service;
        metrics.record_rejected(
            rejected.class,
            e2e,
            rejected.uplink.as_secs_f64() * RADIO_W + spec.vehicle_service.as_secs_f64() * BOARD_W,
        );
        if let Some(tel) = telemetry.as_deref_mut() {
            tel.registry.inc("fleet.rejected", 1);
            tel.absorb(RequestSpan {
                vehicle: rejected.vehicle,
                seq: rejected.seq,
                tenant: rejected.tenant,
                region: rejected.region,
                shard: cfg.shard_of(rejected.vehicle),
                class: rejected.class.label(),
                generated: rejected.arrival,
                admitted: None,
                serve_start: None,
                completed: rejected.arrival + e2e,
                outcome: SpanOutcome::Rejected,
                retries: 0,
                requeues: 0,
                handoff: false,
            });
        }
    }
    for fallback in &outcome.local_fallbacks {
        metrics.record_fallback(fallback.class, fallback.e2e, fallback.energy_j);
        let skipped = fallback.class == WorkloadClass::PbeamTraining;
        if skipped {
            // A skipped pBEAM round: no degraded-mode seconds accrue,
            // training just converges a round later.
            metrics.training_rounds_skipped += 1;
        } else {
            reliability
                .record_degraded(&tenant_labels[fallback.tenant as usize], fallback.degraded);
        }
        if let Some(tel) = telemetry.as_deref_mut() {
            tel.registry.inc("fleet.local_fallbacks", 1);
            tel.absorb(RequestSpan {
                vehicle: fallback.vehicle,
                seq: fallback.seq,
                tenant: fallback.tenant,
                region: fallback.region,
                shard: cfg.shard_of(fallback.vehicle),
                class: fallback.class.label(),
                generated: fallback.arrival,
                admitted: Some(fallback.decided),
                serve_start: None,
                completed: fallback.arrival + fallback.e2e,
                outcome: if skipped {
                    SpanOutcome::Skipped
                } else {
                    SpanOutcome::LocalFallback
                },
                retries: fallback.retries,
                requeues: fallback.requeues,
                handoff: false,
            });
        }
    }
    metrics.requeued += outcome.requeued;
    metrics.retry_rescued += outcome.retry_rescued;
    metrics.handoffs += outcome.handoffs;
    if let Some(tel) = telemetry {
        tel.registry.inc("fleet.requeued", outcome.requeued);
        tel.registry
            .inc("fleet.retry_rescued", outcome.retry_rescued);
        tel.registry.inc("fleet.handoffs", outcome.handoffs);
    }
    for _ in 0..outcome.retry_attempts {
        reliability.record_retry();
    }
    for _ in 0..outcome.retry_rescued {
        reliability.record_retry_success();
    }
    for _ in 0..outcome.retry_exhausted {
        reliability.record_retry_exhausted();
    }
}

/// Writes the per-tenant availability ledger. A tenant is "down" while
/// its own quota is flapped or while any XEdge node-crash window is
/// active (every tenant's traffic shares the node pool). Crash windows
/// are quantized up to the barrier grid the serving pass actually
/// samples, so per-tenant MTTR matches what requests experienced.
fn record_tenant_ledger(
    reliability: &mut ReliabilityStats,
    inj: &FaultInjector,
    cfg: &FleetConfig,
    horizon: SimTime,
) {
    let quantize = |t: SimTime| -> SimTime {
        let k = t.elapsed().as_nanos().div_ceil(cfg.epoch.as_nanos());
        let q = SimTime::ZERO + cfg.epoch * k;
        if q > horizon {
            horizon
        } else {
            q
        }
    };
    let crash_windows: Vec<(SimTime, SimTime)> = inj
        .windows()
        .iter()
        .filter(|w| matches!(w.kind, FaultKind::EdgeNodeCrash))
        .map(|w| (quantize(w.start), quantize(w.end)))
        .filter(|(s, e)| e > s)
        .collect();
    for t in 0..cfg.tenants {
        let label = tenant_label(t);
        let mut windows = crash_windows.clone();
        for w in inj.windows() {
            if matches!(w.kind, FaultKind::TenantQuotaFlap { .. }) && w.target == label {
                let end = if w.end > horizon { horizon } else { w.end };
                if end > w.start {
                    windows.push((w.start, end));
                }
            }
        }
        if windows.is_empty() {
            continue;
        }
        windows.sort_unstable();
        // Coalesce overlaps so a tenant's downtime is not double-counted.
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
        for (s, e) in windows {
            match merged.last_mut() {
                Some((_, last_end)) if s <= *last_end => {
                    if e > *last_end {
                        *last_end = e;
                    }
                }
                _ => merged.push((s, e)),
            }
        }
        for (s, e) in merged {
            reliability.record_fault(&label, s);
            reliability.record_recovery(&label, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(shards: u32) -> FleetConfig {
        let mut cfg = FleetConfig::sized(96, shards);
        cfg.duration = SimDuration::from_secs(10);
        cfg
    }

    #[test]
    fn shard_counts_produce_identical_summaries() {
        let one = FleetEngine::new(small(1)).run();
        let four = FleetEngine::new(small(4)).run();
        assert_eq!(one.summary(), four.summary());
        assert_eq!(one.metrics, four.metrics);
    }

    #[test]
    fn requests_split_across_outcomes() {
        let report = FleetEngine::new(small(2)).run();
        let m = &report.metrics;
        assert!(m.requests >= 96 * 9, "~1 request/vehicle/second");
        assert_eq!(
            m.requests,
            m.edge_served + m.collab_hits + m.failovers + m.rejected + m.local_fallbacks,
            "every request has exactly one outcome"
        );
        assert!(m.collab_hits > 0, "cohort-mates should share results");
        assert_eq!(m.e2e_latency_ms.count(), m.requests);
        assert_eq!(m.energy_per_request_j.count(), m.requests);
    }

    #[test]
    fn regional_outage_causes_failovers_and_lowers_availability() {
        let mut cfg =
            small(2).with_regional_outage(0, SimTime::from_secs(2), SimDuration::from_secs(4));
        cfg.duration = SimDuration::from_secs(10);
        let report = FleetEngine::new(cfg).run();
        assert!(report.metrics.failovers > 0);
        assert_eq!(report.reliability.faults_injected(), 1);
        assert_eq!(report.region_availability.len(), 1);
        let (label, avail) = &report.region_availability[0];
        assert_eq!(label, "region0/lte");
        assert!((*avail - 0.6).abs() < 1e-9, "4 s down of 10 s: {avail}");
        assert!(report.reliability.failover_latency().count() > 0);
    }

    #[test]
    fn node_crash_walks_the_degradation_ladder() {
        let build = |shards: u32| {
            let mut cfg = small(shards);
            cfg.edge_nodes = 1;
            let cfg = cfg.with_edge_node_crash(0, SimTime::from_secs(2), SimDuration::from_secs(4));
            FleetEngine::new(cfg).run()
        };
        let report = build(2);
        let m = &report.metrics;
        assert!(
            m.retry_rescued > 0,
            "late arrivals should ride out the crash via rung-1 retry"
        );
        assert!(
            m.local_fallbacks > 0,
            "early arrivals exhaust their deadline and fall to rung 3"
        );
        assert_eq!(
            m.requests,
            m.edge_served + m.collab_hits + m.failovers + m.rejected + m.local_fallbacks,
            "ladder outcomes still partition the request stream"
        );
        // Every tenant shares the single node: availability dips over
        // the barrier-quantized crash window [2 s, 6 s), then recovers.
        let horizon = SimTime::from_secs(10);
        for t in 0..4u32 {
            let label = tenant_label(t);
            let down = report.reliability.downtime(&label, horizon);
            assert_eq!(down, SimDuration::from_secs(4), "tenant {t}: {down:?}");
            let avail = report.reliability.availability(&label, horizon);
            assert!((avail - 0.6).abs() < 1e-9, "tenant {t}: {avail}");
        }
        assert!(report.reliability.mttr().count() >= 4, "per-tenant MTTR");
        assert!(report.reliability.mttr().mean() > 0.0);
        assert!(report.reliability.retry_count() > 0);
        assert!(report.reliability.total_degraded_time() > SimDuration::ZERO);
        // The whole chaos story is still byte-identical across shard
        // counts.
        assert_eq!(build(1).summary(), build(4).summary());
    }

    #[test]
    fn ingest_runs_healthy_and_stays_shard_invariant() {
        let build = |shards: u32| {
            let mut cfg = small(shards).with_ingest();
            cfg.duration = SimDuration::from_secs(10);
            FleetEngine::new(cfg).run()
        };
        let report = build(2);
        let ing = report.ingest.as_ref().expect("ingest ledger present");
        assert!(ing.batches_sent > 0, "vehicles uploaded batches");
        assert_eq!(
            ing.records_sent,
            ing.records_written + ing.records_shed + ing.cache_evictions + ing.backlog_records,
            "every record is written, shed, evicted, or backlog"
        );
        assert_eq!(ing.deadline_misses, 0, "healthy run misses nothing");
        let one = build(1);
        let four = build(4);
        assert_eq!(one.summary(), four.summary());
        assert_eq!(one.ingest, four.ingest);
    }

    #[test]
    fn storage_chaos_degrades_ingest_through_the_ladder() {
        let build = |shards: u32| {
            let mut cfg = small(shards)
                .with_ingest()
                .with_collector_outage(0, SimTime::from_secs(1), SimDuration::from_secs(6))
                .with_storage_brownout(0.02, SimTime::from_secs(2), SimDuration::from_secs(6));
            cfg.duration = SimDuration::from_secs(10);
            cfg.ingest.as_mut().unwrap().storage_records_per_sec = 400.0;
            FleetEngine::new(cfg).run()
        };
        let report = build(2);
        let ing = report.ingest.as_ref().expect("ingest ledger present");
        assert!(ing.outage_bounces > 0, "collector outage bounced uploads");
        assert!(ing.retries > 0, "rung 1 retried with seeded backoff");
        assert!(ing.deferrals > 0, "rung 2 deferred into vehicle caches");
        assert!(
            ing.deadline_misses > 0,
            "a brownout this deep must miss deadlines"
        );
        assert!(
            ing.storage_rho.max() > 1.0,
            "the browned-out tier saturates: {}",
            ing.storage_rho.max()
        );
        assert_eq!(
            ing.records_sent,
            ing.records_written + ing.records_shed + ing.cache_evictions + ing.backlog_records,
            "the ledger still partitions under chaos"
        );
        assert_eq!(build(1).summary(), build(4).summary());
    }

    #[test]
    fn mobility_crossings_stay_shard_invariant() {
        let build = |shards: u32| {
            let mut cfg = small(shards).with_mobility();
            cfg.duration = SimDuration::from_secs(10);
            FleetEngine::new(cfg).run()
        };
        let one = build(1);
        let four = build(4);
        let mob = one.mobility.as_ref().expect("mobility ledger present");
        assert!(mob.crossings > 0, "vehicles cross region boundaries");
        assert!(mob.migrations > 0, "some crossings change home-node domain");
        assert!(
            mob.partitions(),
            "crossings partition into migrations + same-domain moves"
        );
        assert_eq!(one.summary(), four.summary());
        assert_eq!(one.mobility, four.mobility);
        assert_eq!(one.region_admission, four.region_admission);
    }

    #[test]
    fn handoff_storm_multiplies_crossing_cost_without_double_counting() {
        let build = |storm: bool| {
            let mut cfg = small(2).with_mobility();
            if storm {
                cfg = cfg.with_handoff_storm(1, SimTime::from_secs(2), SimDuration::from_secs(6));
            }
            cfg.duration = SimDuration::from_secs(10);
            FleetEngine::new(cfg).run()
        };
        let calm = build(false);
        let stormy = build(true);
        let calm_mob = calm.mobility.as_ref().unwrap();
        let storm_mob = stormy.mobility.as_ref().unwrap();
        assert_eq!(calm_mob.storm_crossings, 0);
        assert!(
            storm_mob.storm_crossings > 0,
            "crossings into region 1 during the storm pay the multiplier"
        );
        assert!(
            storm_mob.handoff_seconds > calm_mob.handoff_seconds,
            "the storm multiplier must show up in the mobility ledger"
        );
        // Single-path accounting: with mobility on, the only writer of
        // a region's handoff-label degraded seconds is the mobility
        // pass, so the reliability ledger and the mobility ledger must
        // agree exactly — a storm must not double-count handoff time
        // through the serving path.
        for report in [&calm, &stormy] {
            let mob = report.mobility.as_ref().unwrap();
            let ledger: f64 = (0..8)
                .map(|r| {
                    report
                        .reliability
                        .degraded_time(&handoff_label(r))
                        .as_secs_f64()
                })
                .sum();
            assert!(
                (ledger - mob.handoff_seconds).abs() < 1e-6,
                "reliability ledger {ledger} vs mobility ledger {}",
                mob.handoff_seconds
            );
        }
    }

    #[test]
    fn chaos_summary_is_shard_invariant_too() {
        let build = |shards| {
            let cfg = small(shards).with_regional_outage(
                1,
                SimTime::from_secs(3),
                SimDuration::from_secs(3),
            );
            FleetEngine::new(cfg).run().summary()
        };
        assert_eq!(build(1), build(3));
    }
}
