//! One fleet shard: a private `vdap-sim` event loop over a set of
//! vehicles.
//!
//! Shards never communicate directly. During an epoch a shard only
//! *reads* globally-deterministic inputs (virtual time, the compiled
//! fault timeline, the previous barrier's V2V snapshot) and *buffers*
//! its outputs (edge requests, result publications, failover samples)
//! for the engine to exchange at the barrier. Vehicles inside the same
//! shard are isolated from each other exactly as strictly as vehicles
//! in different shards — that symmetry is what makes an N-shard run
//! reproduce a 1-shard run bit-for-bit.
//!
//! Without mobility a shard owns a contiguous id block for the whole
//! run. With mobility ([`crate::FleetConfig::with_mobility`]) vehicles
//! are keyed by id and the engine *migrates* them between shards at
//! epoch barriers as they cross region boundaries: the whole
//! [`VehicleState`] (RNG streams, sequence counters, DDI uplink,
//! pending handoff debt) moves, and the stored next-event times let the
//! destination shard reschedule the vehicle's ticks. Events left behind
//! in the source shard's queue find a missing (or regenerated) vehicle
//! and count as orphans, which the engine subtracts so the processed-
//! event ledger stays shard-count invariant.
//!
//! Each request tick draws its [`vdap_edgeos::WorkloadClass`] from the
//! config's weighted mix using the vehicle's private RNG stream, so the
//! same vehicle issues the same class sequence no matter how the fleet
//! is sharded, and every vehicle-side cost (fallback service, V2V fetch
//! bytes) is priced by the drawn class's [`crate::ClassSpec`].

use std::collections::BTreeMap;
use std::sync::Arc;

use vdap_ddi::UploadBatch;
use vdap_edgeos::WorkloadClass;
use vdap_fault::FaultInjector;
use vdap_net::{Direction, LinkSpec};
use vdap_obs::{RequestSpan, SpanOutcome};
use vdap_offload::Tile;
use vdap_sim::{Ctx, SeedFactory, SimDuration, SimTime, Simulation};

use crate::config::{region_label, FleetConfig};
use crate::edge::EdgeRequest;
use crate::metrics::FleetMetrics;
use crate::vehicle::{tile_at, DdiUplink, VehicleState, BOARD_W, DSRC_W};

/// The V2V snapshot published at the previous barrier: tile → producer.
pub(crate) type CollabSnapshot = BTreeMap<Tile, u32>;

/// World state for one shard's event loop.
pub(crate) struct ShardState {
    /// Vehicles this shard currently hosts, keyed by fleet id.
    pub vehicles: BTreeMap<u32, VehicleState>,
    /// Requests bound for the edge, drained at the barrier.
    pub outbox: Vec<EdgeRequest>,
    /// Telemetry upload batches bound for the regional DDI collectors,
    /// drained at the barrier.
    pub ingest_outbox: Vec<UploadBatch>,
    /// Cacheable results produced this epoch: (tile, producer).
    pub publications: Vec<(Tile, u32)>,
    /// Failover latency samples `(vehicle, seq, ms)`, drained at the
    /// barrier and recorded fleet-wide in canonical order.
    pub failover_samples: Vec<(u32, u32, f64)>,
    /// Previous barrier's V2V snapshot (read-only during the epoch).
    pub snapshot: Arc<CollabSnapshot>,
    /// Spans for requests resolved on the vehicle side (collab hits,
    /// regional-outage failovers), drained at the barrier. Empty unless
    /// the config enables telemetry.
    pub spans: Vec<RequestSpan>,
    /// Events that fired for a vehicle this shard no longer hosts (or a
    /// pre-migration generation of one). The engine subtracts these
    /// from the sim's processed-event count so migrations don't perturb
    /// the deterministic event ledger.
    pub orphan_events: u64,
    /// V2V lookups that *would* have hit but were suppressed because
    /// the vehicle's collab cache went stale at its last crossing,
    /// drained into `MobilityMetrics` at the barrier.
    pub stale_hits: u64,
    /// Compiled fault timeline (pure function of time).
    injector: Option<Arc<FaultInjector>>,
    /// Shard-local mergeable metrics.
    pub metrics: FleetMetrics,
    /// Scenario constants.
    cfg: Arc<FleetConfig>,
    /// Cached region labels, indexed by region id.
    region_labels: Arc<Vec<String>>,
}

impl std::fmt::Debug for ShardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardState")
            .field("vehicles", &self.vehicles.len())
            .field("outbox", &self.outbox.len())
            .field("orphan_events", &self.orphan_events)
            .finish()
    }
}

/// One shard's event loop.
#[derive(Debug)]
pub(crate) struct Shard {
    pub sim: Simulation<ShardState>,
    /// Wall-clock time this shard's last epoch advance took (written
    /// inside the worker closure, read single-threaded at the barrier;
    /// diagnostics only, never feeds the deterministic report).
    pub busy: std::time::Duration,
}

impl Shard {
    /// Builds shard `index` over the vehicles it initially hosts and
    /// schedules every vehicle's first request tick.
    pub fn new(
        index: u32,
        cfg: &Arc<FleetConfig>,
        seeds: &SeedFactory,
        injector: Option<Arc<FaultInjector>>,
        region_labels: &Arc<Vec<String>>,
    ) -> Self {
        // Without mobility the initial assignment is the contiguous id
        // range; with mobility it is the contiguous *region* block, so
        // a vehicle starts on the shard that owns its starting region.
        let ids: Vec<u32> = (0..cfg.vehicles)
            .filter(|&id| cfg.initial_shard_of(id) == index)
            .collect();
        let mut vehicles = BTreeMap::new();
        for &id in &ids {
            vehicles.insert(
                id,
                VehicleState {
                    id,
                    tenant: cfg.tenant_of(id),
                    region: cfg.region_of(id),
                    rng: seeds.indexed_stream("fleet-vehicle", u64::from(id)),
                    seq: 0,
                    ddi: cfg.ingest.is_some().then(|| DdiUplink {
                        rng: seeds.indexed_stream("fleet-ddi", u64::from(id)),
                        seq: 0,
                    }),
                    generation: 0,
                    next_tick: None,
                    next_ingest: None,
                    pending_handoff: SimDuration::ZERO,
                    cache_stale: false,
                },
            );
        }
        let state = ShardState {
            vehicles,
            outbox: Vec::new(),
            ingest_outbox: Vec::new(),
            publications: Vec::new(),
            failover_samples: Vec::new(),
            snapshot: Arc::new(CollabSnapshot::new()),
            spans: Vec::new(),
            orphan_events: 0,
            stale_hits: 0,
            injector,
            metrics: FleetMetrics::new(),
            cfg: Arc::clone(cfg),
            region_labels: Arc::clone(region_labels),
        };
        let mut sim = Simulation::new(state);
        // First ticks: deterministic per-vehicle phase in [0, period).
        let period = cfg.request_period.as_secs_f64();
        let upload_period = cfg.ingest.as_ref().map(|i| i.upload_period.as_secs_f64());
        for id in ids {
            let offset = {
                let v = sim
                    .state_mut()
                    .vehicles
                    .get_mut(&id)
                    .expect("just inserted");
                v.rng.uniform_range(0.0, period)
            };
            let first = SimTime::ZERO + SimDuration::from_secs_f64(offset);
            sim.state_mut()
                .vehicles
                .get_mut(&id)
                .expect("present")
                .next_tick = Some(first);
            sim.schedule_at(first, "fleet-tick", move |ctx| tick(ctx, id, 0));
            // First ingest upload: a deterministic phase in
            // [0, upload_period), drawn from the separate DDI stream.
            if let Some(period) = upload_period {
                let offset = {
                    let v = sim.state_mut().vehicles.get_mut(&id).expect("present");
                    v.ddi
                        .as_mut()
                        .expect("ingest on")
                        .rng
                        .uniform_range(0.0, period)
                };
                let first = SimTime::ZERO + SimDuration::from_secs_f64(offset);
                sim.state_mut()
                    .vehicles
                    .get_mut(&id)
                    .expect("present")
                    .next_ingest = Some(first);
                sim.schedule_at(first, "ddi-upload", move |ctx| ingest_tick(ctx, id, 0));
            }
        }
        Shard {
            sim,
            busy: std::time::Duration::ZERO,
        }
    }

    /// Removes a vehicle for migration, bumping its generation so any
    /// events still queued here (or in an earlier residence) orphan
    /// instead of double-firing after re-adoption.
    pub fn evict(&mut self, id: u32) -> Option<VehicleState> {
        self.sim.state_mut().vehicles.remove(&id).map(|mut v| {
            v.generation = v.generation.wrapping_add(1);
            v
        })
    }

    /// Adopts a migrated vehicle: inserts its state and reschedules its
    /// stored next-event times in this shard's event loop under the new
    /// generation.
    pub fn adopt(&mut self, v: VehicleState) {
        let id = v.id;
        let generation = v.generation;
        let next_tick = v.next_tick;
        let next_ingest = v.next_ingest;
        self.sim.state_mut().vehicles.insert(id, v);
        if let Some(at) = next_tick {
            self.sim
                .schedule_at(at, "fleet-tick", move |ctx| tick(ctx, id, generation));
        }
        if let Some(at) = next_ingest {
            self.sim.schedule_at(at, "ddi-upload", move |ctx| {
                ingest_tick(ctx, id, generation)
            });
        }
    }
}

/// One vehicle request tick. All branching depends only on virtual
/// time, the fault timeline, the previous barrier's snapshot, and the
/// vehicle's private RNG — all shard-count-independent inputs.
///
/// `generation` is the migration generation the event was scheduled
/// under: a stale generation (or a vehicle this shard no longer hosts)
/// means the vehicle migrated after the event was queued, and the event
/// is an orphan — counted and otherwise ignored, since the destination
/// shard carries a rescheduled copy.
fn tick(ctx: &mut Ctx<'_, ShardState>, id: u32, generation: u32) {
    let now = ctx.now();
    let st = ctx.state_mut();
    let cfg = Arc::clone(&st.cfg);
    let horizon = cfg.horizon();

    // Per-request draws, in a fixed order so the stream replays
    // identically: class pick, cache eligibility, cost jitter.
    let (tenant, region, seq, class, cacheable, jitter, handoff, stale) = {
        let Some(v) = st.vehicles.get_mut(&id) else {
            st.orphan_events += 1;
            return;
        };
        if v.generation != generation {
            st.orphan_events += 1;
            return;
        }
        let seq = v.seq;
        v.seq += 1;
        let pick = v.rng.below(u64::from(cfg.total_class_weight()));
        let class = cfg.class_for_draw(pick);
        let cache_draw = v.rng.chance(cfg.cacheable_fraction);
        let jitter = v.rng.uniform();
        let cacheable = cache_draw && cfg.class(class).cacheable;
        let handoff = std::mem::take(&mut v.pending_handoff);
        (
            v.tenant,
            v.region,
            seq,
            class,
            cacheable,
            jitter,
            handoff,
            v.cache_stale,
        )
    };
    let spec = cfg.class(class);

    let region_down = st
        .injector
        .as_deref()
        .is_some_and(|inj| inj.is_down(&st.region_labels[region as usize], now));

    st.metrics.record_request(class);
    if region_down {
        // Regional LTE outage: re-plan and run the pipeline on board
        // (a pBEAM round continues training locally at its own cost).
        let failover = cfg.failover_penalty.mul_f64(1.0 + 0.2 * jitter);
        let service = spec.vehicle_service.mul_f64(1.0 + 0.1 * jitter);
        let e2e = handoff + failover + service;
        st.metrics
            .record_failover(class, e2e, service.as_secs_f64() * BOARD_W);
        st.failover_samples
            .push((id, seq, failover.as_millis_f64()));
        if cfg.telemetry {
            st.spans.push(vehicle_span(
                &cfg,
                id,
                seq,
                class,
                now,
                e2e,
                SpanOutcome::Failover,
            ));
        }
    } else {
        let tile = tile_at(id, now);
        let lookup = if cacheable {
            st.snapshot.get(&tile).copied().filter(|p| *p != id)
        } else {
            None
        };
        // A vehicle that just crossed a region boundary cannot trust
        // its collab cache: the would-be hit is counted, then dropped.
        let shared_by = if stale {
            if lookup.is_some() {
                st.stale_hits += 1;
            }
            None
        } else {
            lookup
        };
        if shared_by.is_some() {
            // V2V collaboration hit: fetch the neighbour's result over
            // DSRC instead of recomputing.
            let dsrc = LinkSpec::dsrc();
            let fetch = dsrc.transfer_time(Direction::Downlink, spec.download_bytes);
            let merge = SimDuration::from_millis_f64(2.0 + jitter);
            let e2e = handoff + dsrc.latency() + fetch + merge;
            st.metrics
                .record_collab(class, e2e, fetch.as_secs_f64() * DSRC_W);
            if cfg.telemetry {
                st.spans.push(vehicle_span(
                    &cfg,
                    id,
                    seq,
                    class,
                    now,
                    e2e,
                    SpanOutcome::CollabHit,
                ));
            }
        } else {
            st.outbox.push(EdgeRequest {
                vehicle: id,
                seq,
                tenant,
                region,
                class,
                arrival: now,
                attempts: 0,
                handoff,
            });
            if cacheable {
                st.publications.push((tile, id));
            }
        }
    }

    // Open-loop reschedule with ±10% deterministic jitter.
    let v = st.vehicles.get_mut(&id).expect("vehicle present mid-tick");
    let next_jitter = v.rng.uniform();
    let delay = cfg.request_period.mul_f64(0.9 + 0.2 * next_jitter);
    if now + delay <= horizon {
        v.next_tick = Some(now + delay);
        ctx.schedule_in(delay, "fleet-tick", move |ctx| tick(ctx, id, generation));
    } else {
        v.next_tick = None;
    }
}

/// One vehicle telemetry-upload tick: batch the records accumulated
/// since the last upload and address them to the region's collector.
/// The batch is only *buffered* here — pricing, collector admission and
/// the storage drain all happen in the engine's barrier ingest pass, so
/// everything a shard does is a pure function of the vehicle's private
/// DDI stream.
fn ingest_tick(ctx: &mut Ctx<'_, ShardState>, id: u32, generation: u32) {
    let now = ctx.now();
    let st = ctx.state_mut();
    let cfg = Arc::clone(&st.cfg);
    let ingest = cfg.ingest.as_ref().expect("ingest ticks imply config");
    let horizon = cfg.horizon();

    let Some(v) = st.vehicles.get_mut(&id) else {
        st.orphan_events += 1;
        return;
    };
    if v.generation != generation {
        st.orphan_events += 1;
        return;
    }
    let region = v.region;
    // Fixed draw order on the DDI stream: priority, then reschedule
    // jitter — the stream replays identically at any shard count.
    let d = v.ddi.as_mut().expect("ingest ticks imply uplink state");
    let seq = d.seq;
    d.seq += 1;
    let priority = d.rng.below(4) as u8;
    let next_jitter = d.rng.uniform();
    let delay = ingest.upload_period.mul_f64(0.9 + 0.2 * next_jitter);
    v.next_ingest = if now + delay <= horizon {
        Some(now + delay)
    } else {
        None
    };
    st.ingest_outbox.push(UploadBatch {
        vehicle: u64::from(id),
        region,
        seq,
        records: ingest.records_per_batch,
        bytes: ingest.batch_bytes(),
        sent_at: now,
        deadline: now + ingest.deadline,
        priority,
    });

    if now + delay <= horizon {
        ctx.schedule_in(delay, "ddi-upload", move |ctx| {
            ingest_tick(ctx, id, generation)
        });
    }
}

/// Builds a span for a request resolved entirely on the vehicle side
/// (collab hits and regional-outage failovers never reach the edge, so
/// `admitted` and `serve_start` stay empty).
fn vehicle_span(
    cfg: &FleetConfig,
    vehicle: u32,
    seq: u32,
    class: WorkloadClass,
    generated: SimTime,
    e2e: SimDuration,
    outcome: SpanOutcome,
) -> RequestSpan {
    RequestSpan {
        vehicle,
        seq,
        tenant: cfg.tenant_of(vehicle),
        region: cfg.region_of(vehicle),
        shard: cfg.shard_of(vehicle),
        class: class.label(),
        generated,
        admitted: None,
        serve_start: None,
        completed: generated + e2e,
        outcome,
        retries: 0,
        requeues: 0,
        handoff: false,
    }
}

/// Builds the label table `region id → fault target label`.
pub(crate) fn region_label_table(regions: u32) -> Vec<String> {
    (0..regions).map(region_label).collect()
}

// --- snapshot codec --------------------------------------------------

use crate::ckpt::{
    dur_field, enc_dur, enc_opt_time, enc_rng, opt_time_field, rng_field, val_array,
};
use vdap_ckpt::json::Value;
use vdap_ckpt::{get, get_array, get_bool, get_u32, obj, CkptError};

/// Serializes one vehicle's complete private state: both RNG stream
/// positions, sequence counters, migration generation, the stored
/// next-event times (which [`Shard::adopt`]-style rescheduling turns
/// back into queued events on restore), handoff debt, and the stale
/// collab-cache flag.
pub(crate) fn enc_vehicle(v: &VehicleState) -> Value {
    obj(vec![
        ("id", Value::Number(f64::from(v.id))),
        ("tenant", Value::Number(f64::from(v.tenant))),
        ("region", Value::Number(f64::from(v.region))),
        ("rng", enc_rng(&v.rng)),
        ("seq", Value::Number(f64::from(v.seq))),
        (
            "ddi",
            match &v.ddi {
                Some(ddi) => obj(vec![
                    ("rng", enc_rng(&ddi.rng)),
                    ("seq", Value::Number(f64::from(ddi.seq))),
                ]),
                None => Value::Null,
            },
        ),
        ("generation", Value::Number(f64::from(v.generation))),
        ("next_tick", enc_opt_time(v.next_tick)),
        ("next_ingest", enc_opt_time(v.next_ingest)),
        ("pending_handoff", enc_dur(v.pending_handoff)),
        ("cache_stale", Value::Bool(v.cache_stale)),
    ])
}

/// Decodes one vehicle, checking the stored DDI uplink against the
/// restoring config's ingest flag.
pub(crate) fn dec_vehicle(cfg: &FleetConfig, v: &Value) -> Result<VehicleState, CkptError> {
    let ddi = match (get(v, "ddi")?, cfg.ingest.is_some()) {
        (Value::Null, false) => None,
        (enc, true) => Some(DdiUplink {
            rng: rng_field(enc, "rng")?,
            seq: get_u32(enc, "seq")?,
        }),
        _ => {
            return Err(CkptError::new(
                "snapshot and config disagree on DDI ingestion",
            ))
        }
    };
    Ok(VehicleState {
        id: get_u32(v, "id")?,
        tenant: get_u32(v, "tenant")?,
        region: get_u32(v, "region")?,
        rng: rng_field(v, "rng")?,
        seq: get_u32(v, "seq")?,
        ddi,
        generation: get_u32(v, "generation")?,
        next_tick: opt_time_field(v, "next_tick")?,
        next_ingest: opt_time_field(v, "next_ingest")?,
        pending_handoff: dur_field(v, "pending_handoff")?,
        cache_stale: get_bool(v, "cache_stale")?,
    })
}

/// Serializes the shared V2V snapshot (tile → producer).
pub(crate) fn enc_collab(snapshot: &CollabSnapshot) -> Value {
    Value::Array(
        snapshot
            .iter()
            .map(|(tile, &producer)| {
                Value::Array(vec![
                    crate::ckpt::enc_i64(tile.0),
                    Value::Number(f64::from(producer)),
                ])
            })
            .collect(),
    )
}

/// Decodes the shared V2V snapshot.
pub(crate) fn dec_collab(v: &Value, key: &str) -> Result<CollabSnapshot, CkptError> {
    let mut snapshot = CollabSnapshot::new();
    for pair in get_array(v, key)? {
        let entry = val_array(pair)?;
        let [tile, producer] = entry else {
            return Err(CkptError::new("collab entry must be a pair"));
        };
        snapshot.insert(
            Tile(crate::ckpt::dec_i64(tile)?),
            crate::ckpt::val_u32(producer)?,
        );
    }
    Ok(snapshot)
}

impl Shard {
    /// Rebuilds shard `index` mid-run from restored vehicles.
    ///
    /// The fresh event loop is advanced (with an empty queue) to the
    /// snapshot instant, pinning `now` without processing anything;
    /// each vehicle's stored next-event times are then rescheduled
    /// under its stored generation, exactly as [`Shard::adopt`] does
    /// for a migration. Every stored next-event time is strictly after
    /// the snapshot barrier by construction, so nothing fires early.
    pub fn restore(
        index: u32,
        cfg: &Arc<FleetConfig>,
        injector: Option<Arc<FaultInjector>>,
        region_labels: &Arc<Vec<String>>,
        at: SimTime,
        vehicles: Vec<VehicleState>,
        snapshot: Arc<CollabSnapshot>,
    ) -> Self {
        debug_assert!(vehicles
            .iter()
            .all(|v| cfg.mobility.is_some() || cfg.initial_shard_of(v.id) == index));
        let _ = index;
        let state = ShardState {
            vehicles: BTreeMap::new(),
            outbox: Vec::new(),
            ingest_outbox: Vec::new(),
            publications: Vec::new(),
            failover_samples: Vec::new(),
            snapshot,
            spans: Vec::new(),
            orphan_events: 0,
            stale_hits: 0,
            injector,
            metrics: FleetMetrics::new(),
            cfg: Arc::clone(cfg),
            region_labels: Arc::clone(region_labels),
        };
        let mut sim = Simulation::new(state);
        sim.run_until(at);
        let mut shard = Shard {
            sim,
            busy: std::time::Duration::ZERO,
        };
        for v in vehicles {
            shard.adopt(v);
        }
        shard
    }
}
