//! One fleet shard: a private `vdap-sim` event loop over a contiguous
//! block of vehicles.
//!
//! Shards never communicate directly. During an epoch a shard only
//! *reads* globally-deterministic inputs (virtual time, the compiled
//! fault timeline, the previous barrier's V2V snapshot) and *buffers*
//! its outputs (edge requests, result publications, failover samples)
//! for the engine to exchange at the barrier. Vehicles inside the same
//! shard are isolated from each other exactly as strictly as vehicles
//! in different shards — that symmetry is what makes an N-shard run
//! reproduce a 1-shard run bit-for-bit.
//!
//! Each request tick draws its [`vdap_edgeos::WorkloadClass`] from the
//! config's
//! weighted mix using the vehicle's private RNG stream, so the same
//! vehicle issues the same class sequence no matter how the fleet is
//! sharded, and every vehicle-side cost (fallback service, V2V fetch
//! bytes) is priced by the drawn class's [`crate::ClassSpec`].

use std::collections::BTreeMap;
use std::sync::Arc;

use vdap_ddi::UploadBatch;
use vdap_edgeos::WorkloadClass;
use vdap_fault::FaultInjector;
use vdap_net::{Direction, LinkSpec};
use vdap_obs::{RequestSpan, SpanOutcome};
use vdap_offload::Tile;
use vdap_sim::{Ctx, RngStream, SeedFactory, SimDuration, SimTime, Simulation};

use crate::config::{region_label, FleetConfig};
use crate::edge::EdgeRequest;
use crate::metrics::FleetMetrics;
use crate::vehicle::{tile_at, VehicleState, BOARD_W, DSRC_W};

/// The V2V snapshot published at the previous barrier: tile → producer.
pub(crate) type CollabSnapshot = BTreeMap<Tile, u32>;

/// One vehicle's DDI uplink state: a private RNG stream (separate from
/// the request stream, so enabling ingestion cannot perturb the
/// request timeline) and a batch sequence counter.
struct DdiUplink {
    rng: RngStream,
    seq: u32,
}

/// World state for one shard's event loop.
pub(crate) struct ShardState {
    /// Vehicles this shard owns, in id order.
    vehicles: Vec<VehicleState>,
    /// Per-vehicle DDI uplink state, parallel to `vehicles` (empty when
    /// ingestion is disabled).
    ddi: Vec<DdiUplink>,
    /// Fleet id of `vehicles[0]`.
    base_id: u32,
    /// Requests bound for the edge, drained at the barrier.
    pub outbox: Vec<EdgeRequest>,
    /// Telemetry upload batches bound for the regional DDI collectors,
    /// drained at the barrier.
    pub ingest_outbox: Vec<UploadBatch>,
    /// Cacheable results produced this epoch: (tile, producer).
    pub publications: Vec<(Tile, u32)>,
    /// Failover latency samples `(vehicle, seq, ms)`, drained at the
    /// barrier and recorded fleet-wide in canonical order.
    pub failover_samples: Vec<(u32, u32, f64)>,
    /// Previous barrier's V2V snapshot (read-only during the epoch).
    pub snapshot: Arc<CollabSnapshot>,
    /// Spans for requests resolved on the vehicle side (collab hits,
    /// regional-outage failovers), drained at the barrier. Empty unless
    /// the config enables telemetry.
    pub spans: Vec<RequestSpan>,
    /// Compiled fault timeline (pure function of time).
    injector: Option<Arc<FaultInjector>>,
    /// Shard-local mergeable metrics.
    pub metrics: FleetMetrics,
    /// Scenario constants.
    cfg: Arc<FleetConfig>,
    /// Cached region labels, indexed by region id.
    region_labels: Arc<Vec<String>>,
}

impl std::fmt::Debug for ShardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardState")
            .field("vehicles", &self.vehicles.len())
            .field("base_id", &self.base_id)
            .field("outbox", &self.outbox.len())
            .finish()
    }
}

/// One shard's event loop.
#[derive(Debug)]
pub(crate) struct Shard {
    pub sim: Simulation<ShardState>,
    /// Wall-clock time this shard's last epoch advance took (written
    /// inside the worker closure, read single-threaded at the barrier;
    /// diagnostics only, never feeds the deterministic report).
    pub busy: std::time::Duration,
}

impl Shard {
    /// Builds shard `index` over its id range and schedules every
    /// vehicle's first request tick.
    pub fn new(
        index: u32,
        cfg: &Arc<FleetConfig>,
        seeds: &SeedFactory,
        injector: Option<Arc<FaultInjector>>,
        region_labels: &Arc<Vec<String>>,
    ) -> Self {
        let range = cfg.shard_range(index);
        let base_id = range.start;
        let vehicles: Vec<VehicleState> = range
            .clone()
            .map(|id| VehicleState {
                id,
                tenant: cfg.tenant_of(id),
                region: cfg.region_of(id),
                rng: seeds.indexed_stream("fleet-vehicle", u64::from(id)),
                seq: 0,
            })
            .collect();
        let ddi: Vec<DdiUplink> = if cfg.ingest.is_some() {
            range
                .map(|id| DdiUplink {
                    rng: seeds.indexed_stream("fleet-ddi", u64::from(id)),
                    seq: 0,
                })
                .collect()
        } else {
            Vec::new()
        };
        let state = ShardState {
            vehicles,
            ddi,
            base_id,
            outbox: Vec::new(),
            ingest_outbox: Vec::new(),
            publications: Vec::new(),
            failover_samples: Vec::new(),
            snapshot: Arc::new(CollabSnapshot::new()),
            spans: Vec::new(),
            injector,
            metrics: FleetMetrics::new(),
            cfg: Arc::clone(cfg),
            region_labels: Arc::clone(region_labels),
        };
        let mut sim = Simulation::new(state);
        // First ticks: deterministic per-vehicle phase in [0, period).
        let period = cfg.request_period.as_secs_f64();
        for local in 0..sim.state().vehicles.len() {
            let offset = sim.state_mut().vehicles[local]
                .rng
                .uniform_range(0.0, period);
            sim.schedule_at(
                SimTime::ZERO + SimDuration::from_secs_f64(offset),
                "fleet-tick",
                move |ctx| tick(ctx, local),
            );
        }
        // First ingest uploads: deterministic per-vehicle phase in
        // [0, upload_period), drawn from the separate DDI stream.
        if let Some(ingest) = &cfg.ingest {
            let period = ingest.upload_period.as_secs_f64();
            for local in 0..sim.state().ddi.len() {
                let offset = sim.state_mut().ddi[local].rng.uniform_range(0.0, period);
                sim.schedule_at(
                    SimTime::ZERO + SimDuration::from_secs_f64(offset),
                    "ddi-upload",
                    move |ctx| ingest_tick(ctx, local),
                );
            }
        }
        Shard {
            sim,
            busy: std::time::Duration::ZERO,
        }
    }
}

/// One vehicle request tick. All branching depends only on virtual
/// time, the fault timeline, the previous barrier's snapshot, and the
/// vehicle's private RNG — all shard-count-independent inputs.
fn tick(ctx: &mut Ctx<'_, ShardState>, local: usize) {
    let now = ctx.now();
    let st = ctx.state_mut();
    let cfg = Arc::clone(&st.cfg);
    let horizon = cfg.horizon();

    // Per-request draws, in a fixed order so the stream replays
    // identically: class pick, cache eligibility, cost jitter.
    let (id, tenant, region, seq, class, cacheable, jitter) = {
        let v = &mut st.vehicles[local];
        let seq = v.seq;
        v.seq += 1;
        let pick = v.rng.below(u64::from(cfg.total_class_weight()));
        let class = cfg.class_for_draw(pick);
        let cache_draw = v.rng.chance(cfg.cacheable_fraction);
        let jitter = v.rng.uniform();
        let cacheable = cache_draw && cfg.class(class).cacheable;
        (v.id, v.tenant, v.region, seq, class, cacheable, jitter)
    };
    let spec = cfg.class(class);

    let region_down = st
        .injector
        .as_deref()
        .is_some_and(|inj| inj.is_down(&st.region_labels[region as usize], now));

    st.metrics.record_request(class);
    if region_down {
        // Regional LTE outage: re-plan and run the pipeline on board
        // (a pBEAM round continues training locally at its own cost).
        let failover = cfg.failover_penalty.mul_f64(1.0 + 0.2 * jitter);
        let service = spec.vehicle_service.mul_f64(1.0 + 0.1 * jitter);
        let e2e = failover + service;
        st.metrics
            .record_failover(class, e2e, service.as_secs_f64() * BOARD_W);
        st.failover_samples
            .push((id, seq, failover.as_millis_f64()));
        if cfg.telemetry {
            st.spans.push(vehicle_span(
                &cfg,
                id,
                seq,
                class,
                now,
                e2e,
                SpanOutcome::Failover,
            ));
        }
    } else {
        let tile = tile_at(id, now);
        let shared_by = if cacheable {
            st.snapshot.get(&tile).copied().filter(|p| *p != id)
        } else {
            None
        };
        if shared_by.is_some() {
            // V2V collaboration hit: fetch the neighbour's result over
            // DSRC instead of recomputing.
            let dsrc = LinkSpec::dsrc();
            let fetch = dsrc.transfer_time(Direction::Downlink, spec.download_bytes);
            let merge = SimDuration::from_millis_f64(2.0 + jitter);
            let e2e = dsrc.latency() + fetch + merge;
            st.metrics
                .record_collab(class, e2e, fetch.as_secs_f64() * DSRC_W);
            if cfg.telemetry {
                st.spans.push(vehicle_span(
                    &cfg,
                    id,
                    seq,
                    class,
                    now,
                    e2e,
                    SpanOutcome::CollabHit,
                ));
            }
        } else {
            st.outbox.push(EdgeRequest {
                vehicle: id,
                seq,
                tenant,
                region,
                class,
                arrival: now,
                attempts: 0,
            });
            if cacheable {
                st.publications.push((tile, id));
            }
        }
    }

    // Open-loop reschedule with ±10% deterministic jitter.
    let next_jitter = st.vehicles[local].rng.uniform();
    let delay = cfg.request_period.mul_f64(0.9 + 0.2 * next_jitter);
    if now + delay <= horizon {
        ctx.schedule_in(delay, "fleet-tick", move |ctx| tick(ctx, local));
    }
}

/// One vehicle telemetry-upload tick: batch the records accumulated
/// since the last upload and address them to the region's collector.
/// The batch is only *buffered* here — pricing, collector admission and
/// the storage drain all happen in the engine's barrier ingest pass, so
/// everything a shard does is a pure function of the vehicle's private
/// DDI stream.
fn ingest_tick(ctx: &mut Ctx<'_, ShardState>, local: usize) {
    let now = ctx.now();
    let st = ctx.state_mut();
    let cfg = Arc::clone(&st.cfg);
    let ingest = cfg.ingest.as_ref().expect("ingest ticks imply config");
    let horizon = cfg.horizon();

    let (id, region) = {
        let v = &st.vehicles[local];
        (v.id, v.region)
    };
    // Fixed draw order on the DDI stream: priority, then reschedule
    // jitter — the stream replays identically at any shard count.
    let d = &mut st.ddi[local];
    let seq = d.seq;
    d.seq += 1;
    let priority = d.rng.below(4) as u8;
    let next_jitter = d.rng.uniform();
    st.ingest_outbox.push(UploadBatch {
        vehicle: u64::from(id),
        region,
        seq,
        records: ingest.records_per_batch,
        bytes: ingest.batch_bytes(),
        sent_at: now,
        deadline: now + ingest.deadline,
        priority,
    });

    let delay = ingest.upload_period.mul_f64(0.9 + 0.2 * next_jitter);
    if now + delay <= horizon {
        ctx.schedule_in(delay, "ddi-upload", move |ctx| ingest_tick(ctx, local));
    }
}

/// Builds a span for a request resolved entirely on the vehicle side
/// (collab hits and regional-outage failovers never reach the edge, so
/// `admitted` and `serve_start` stay empty).
fn vehicle_span(
    cfg: &FleetConfig,
    vehicle: u32,
    seq: u32,
    class: WorkloadClass,
    generated: SimTime,
    e2e: SimDuration,
    outcome: SpanOutcome,
) -> RequestSpan {
    RequestSpan {
        vehicle,
        seq,
        tenant: cfg.tenant_of(vehicle),
        region: cfg.region_of(vehicle),
        shard: cfg.shard_of(vehicle),
        class: class.label(),
        generated,
        admitted: None,
        serve_start: None,
        completed: generated + e2e,
        outcome,
        retries: 0,
        requeues: 0,
        handoff: false,
    }
}

/// Builds the label table `region id → fault target label`.
pub(crate) fn region_label_table(regions: u32) -> Vec<String> {
    (0..regions).map(region_label).collect()
}
