//! One fleet shard: a set of vehicles advanced epoch-by-epoch as
//! stealable batches.
//!
//! Shards never communicate directly. During an epoch a shard only
//! *reads* globally-deterministic inputs (virtual time, the compiled
//! fault timeline, the previous barrier's V2V snapshot) and *buffers*
//! its outputs (edge requests, result publications, failover samples)
//! for the engine to exchange at the barrier. Vehicles inside the same
//! shard are isolated from each other exactly as strictly as vehicles
//! in different shards — that symmetry is what makes an N-shard run
//! reproduce a 1-shard run bit-for-bit.
//!
//! There is no central event queue: each vehicle stores its own next
//! request-tick and next ingest-upload time, and an epoch advance just
//! replays each vehicle's private timeline up to the epoch boundary.
//! That makes the vehicle the unit of work — [`Shard::batches`] splits
//! the hosted fleet (in canonical id order) into fixed-size
//! [`VehicleBatch`]es that the engine fans out across its work-stealing
//! executor, and [`Shard::merge`] folds the results back in the same
//! canonical order, so which worker ran a batch (or when it was
//! stolen) can never reach any report.
//!
//! Without mobility a shard owns a contiguous id block for the whole
//! run. With mobility ([`crate::FleetConfig::with_mobility`]) vehicles
//! are keyed by id and the engine *migrates* them between shards at
//! epoch barriers as they cross region boundaries: the whole
//! [`VehicleState`] (RNG streams, sequence counters, DDI uplink,
//! pending handoff debt, stored next-event times) moves, and the
//! destination shard simply resumes the vehicle's timeline — there is
//! no queue to leave stale events behind in.
//!
//! Each request tick draws its [`vdap_edgeos::WorkloadClass`] from the
//! config's weighted mix using the vehicle's private RNG stream, so the
//! same vehicle issues the same class sequence no matter how the fleet
//! is sharded or batched, and every vehicle-side cost (fallback
//! service, V2V fetch bytes) is priced by the drawn class's
//! [`crate::ClassSpec`].

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vdap_ddi::UploadBatch;
use vdap_edgeos::WorkloadClass;
use vdap_fault::FaultInjector;
use vdap_net::{Direction, LinkSpec};
use vdap_obs::{RequestSpan, SpanOutcome};
use vdap_offload::Tile;
use vdap_sim::{SeedFactory, SimDuration, SimTime};

use crate::config::{region_label, FleetConfig};
use crate::edge::EdgeRequest;
use crate::metrics::FleetMetrics;
use crate::vehicle::{tile_at, DdiUplink, VehicleState, BOARD_W, DSRC_W};

/// The V2V snapshot published at the previous barrier: tile → producer.
pub(crate) type CollabSnapshot = BTreeMap<Tile, u32>;

/// One fleet shard: its hosted vehicles plus the output buffers the
/// engine drains at each barrier.
pub(crate) struct Shard {
    /// Vehicles this shard currently hosts, keyed by fleet id.
    pub vehicles: BTreeMap<u32, VehicleState>,
    /// Requests bound for the edge, drained at the barrier.
    pub outbox: Vec<EdgeRequest>,
    /// Telemetry upload batches bound for the regional DDI collectors,
    /// drained at the barrier.
    pub ingest_outbox: Vec<UploadBatch>,
    /// Cacheable results produced this epoch: (tile, producer).
    pub publications: Vec<(Tile, u32)>,
    /// Failover latency samples `(vehicle, seq, ms)`, drained at the
    /// barrier and recorded fleet-wide in canonical order.
    pub failover_samples: Vec<(u32, u32, f64)>,
    /// Previous barrier's V2V snapshot (read-only during the epoch).
    pub snapshot: Arc<CollabSnapshot>,
    /// Spans for requests resolved on the vehicle side (collab hits,
    /// regional-outage failovers), drained at the barrier. Empty unless
    /// the config enables telemetry.
    pub spans: Vec<RequestSpan>,
    /// V2V lookups that *would* have hit but were suppressed because
    /// the vehicle's collab cache went stale at its last crossing,
    /// drained into `MobilityMetrics` at the barrier.
    pub stale_hits: u64,
    /// Shard-local mergeable metrics.
    pub metrics: FleetMetrics,
    /// Per-vehicle events (request ticks + ingest uploads) processed by
    /// this shard's batches, for the deterministic event ledger.
    pub events: u64,
    /// Cumulative wall-clock attributed to this shard's batches,
    /// wherever they ran (diagnostics only, never feeds the
    /// deterministic report).
    pub busy: Duration,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("vehicles", &self.vehicles.len())
            .field("outbox", &self.outbox.len())
            .field("events", &self.events)
            .finish()
    }
}

impl Shard {
    fn empty(snapshot: Arc<CollabSnapshot>) -> Self {
        Shard {
            vehicles: BTreeMap::new(),
            outbox: Vec::new(),
            ingest_outbox: Vec::new(),
            publications: Vec::new(),
            failover_samples: Vec::new(),
            snapshot,
            spans: Vec::new(),
            stale_hits: 0,
            metrics: FleetMetrics::new(),
            events: 0,
            busy: Duration::ZERO,
        }
    }

    /// Builds shard `index` over the vehicles it initially hosts and
    /// draws every vehicle's first request-tick (and ingest-upload)
    /// phase, in canonical id order.
    pub fn new(index: u32, cfg: &Arc<FleetConfig>, seeds: &SeedFactory) -> Self {
        // Without mobility the initial assignment is the contiguous id
        // range; with mobility it is the contiguous *region* block, so
        // a vehicle starts on the shard that owns its starting region.
        let mut shard = Shard::empty(Arc::new(CollabSnapshot::new()));
        // First ticks: deterministic per-vehicle phase in [0, period),
        // drawn from each vehicle's private streams in a fixed order
        // (tick phase, then ingest phase).
        let period = cfg.request_period.as_secs_f64();
        let upload_period = cfg.ingest.as_ref().map(|i| i.upload_period.as_secs_f64());
        for id in (0..cfg.vehicles).filter(|&id| cfg.initial_shard_of(id) == index) {
            let mut v = VehicleState {
                id,
                tenant: cfg.tenant_of(id),
                region: cfg.region_of(id),
                rng: seeds.indexed_stream("fleet-vehicle", u64::from(id)),
                seq: 0,
                ddi: cfg.ingest.is_some().then(|| DdiUplink {
                    rng: seeds.indexed_stream("fleet-ddi", u64::from(id)),
                    seq: 0,
                }),
                generation: 0,
                next_tick: None,
                next_ingest: None,
                pending_handoff: SimDuration::ZERO,
                cache_stale: false,
            };
            let offset = v.rng.uniform_range(0.0, period);
            v.next_tick = Some(SimTime::ZERO + SimDuration::from_secs_f64(offset));
            if let Some(period) = upload_period {
                let offset = v
                    .ddi
                    .as_mut()
                    .expect("ingest on")
                    .rng
                    .uniform_range(0.0, period);
                v.next_ingest = Some(SimTime::ZERO + SimDuration::from_secs_f64(offset));
            }
            shard.vehicles.insert(id, v);
        }
        shard
    }

    /// Rebuilds shard `index` mid-run from restored vehicles. Every
    /// stored next-event time is strictly after the snapshot barrier by
    /// construction, so the next epoch advance resumes each vehicle's
    /// timeline exactly where the writer left it.
    pub fn restore(
        index: u32,
        cfg: &Arc<FleetConfig>,
        vehicles: Vec<VehicleState>,
        snapshot: Arc<CollabSnapshot>,
    ) -> Self {
        debug_assert!(vehicles
            .iter()
            .all(|v| cfg.mobility.is_some() || cfg.initial_shard_of(v.id) == index));
        let _ = index;
        let mut shard = Shard::empty(snapshot);
        for v in vehicles {
            shard.vehicles.insert(v.id, v);
        }
        shard
    }

    /// Removes a vehicle for migration, bumping its migration
    /// generation (carried in snapshots so a restored run replays the
    /// same residency history).
    pub fn evict(&mut self, id: u32) -> Option<VehicleState> {
        self.vehicles.remove(&id).map(|mut v| {
            v.generation = v.generation.wrapping_add(1);
            v
        })
    }

    /// Adopts a migrated vehicle: its stored next-event times resume on
    /// this shard's next epoch advance.
    pub fn adopt(&mut self, v: VehicleState) {
        self.vehicles.insert(v.id, v);
    }

    /// Drains the hosted fleet (in canonical id order) into stealable
    /// batches of at most `batch_size` vehicles for the epoch's tick
    /// phase. Counterpart of [`Shard::merge`].
    pub fn batches(&mut self, shard: usize, batch_size: usize) -> Vec<VehicleBatch> {
        debug_assert!(batch_size > 0, "validated by FleetConfig");
        let vehicles = std::mem::take(&mut self.vehicles);
        let mut batches = Vec::with_capacity(vehicles.len().div_ceil(batch_size.max(1)));
        let mut iter = vehicles.into_values().peekable();
        while iter.peek().is_some() {
            batches.push(VehicleBatch {
                shard,
                vehicles: iter.by_ref().take(batch_size).collect(),
                snapshot: Arc::clone(&self.snapshot),
                out: BatchOut::new(),
                busy: Duration::ZERO,
            });
        }
        batches
    }

    /// Folds one advanced batch back into the shard. The engine calls
    /// this in canonical submission order (shards ascending, batches in
    /// id order), and every buffer append and metrics merge below is
    /// order-free across batches anyway — the steal schedule cannot
    /// reach any report.
    pub fn merge(&mut self, batch: VehicleBatch) {
        debug_assert!(std::ptr::eq(
            Arc::as_ptr(&batch.snapshot),
            Arc::as_ptr(&self.snapshot)
        ));
        for v in batch.vehicles {
            self.vehicles.insert(v.id, v);
        }
        let out = batch.out;
        self.outbox.extend(out.outbox);
        self.ingest_outbox.extend(out.ingest_outbox);
        self.publications.extend(out.publications);
        self.failover_samples.extend(out.failover_samples);
        self.spans.extend(out.spans);
        self.stale_hits += out.stale_hits;
        self.events += out.events;
        self.metrics.merge(&out.metrics);
        self.busy += batch.busy;
    }
}

/// Output buffers one batch fills while advancing its vehicles: the
/// batch-private slice of what used to be shard state, merged back in
/// canonical order at the barrier.
struct BatchOut {
    outbox: Vec<EdgeRequest>,
    ingest_outbox: Vec<UploadBatch>,
    publications: Vec<(Tile, u32)>,
    failover_samples: Vec<(u32, u32, f64)>,
    spans: Vec<RequestSpan>,
    stale_hits: u64,
    events: u64,
    metrics: FleetMetrics,
}

impl BatchOut {
    fn new() -> Self {
        BatchOut {
            outbox: Vec::new(),
            ingest_outbox: Vec::new(),
            publications: Vec::new(),
            failover_samples: Vec::new(),
            spans: Vec::new(),
            stale_hits: 0,
            events: 0,
            metrics: FleetMetrics::new(),
        }
    }
}

/// A fixed-size slice of one shard's vehicles, advanced independently
/// on any executor worker. Batches are order-free by construction:
/// every RNG draw comes from a stream owned by one vehicle, every
/// branch reads only time-determined inputs (the fault timeline, the
/// previous barrier's snapshot), and every output lands in the batch's
/// private buffers.
pub(crate) struct VehicleBatch {
    /// Owning shard index, for the canonical merge.
    pub shard: usize,
    vehicles: Vec<VehicleState>,
    snapshot: Arc<CollabSnapshot>,
    out: BatchOut,
    /// Wall-clock this batch's advance took on whichever worker ran it
    /// (diagnostics only).
    pub busy: Duration,
}

impl VehicleBatch {
    /// Advances every vehicle in the batch to the epoch boundary
    /// `end` (inclusive), replaying each vehicle's private timeline of
    /// request ticks and ingest uploads.
    pub fn advance(
        &mut self,
        cfg: &FleetConfig,
        injector: Option<&FaultInjector>,
        region_labels: &[String],
        end: SimTime,
    ) {
        let started = Instant::now();
        for v in &mut self.vehicles {
            loop {
                let next_tick = v.next_tick.filter(|&t| t <= end);
                let next_ingest = v.next_ingest.filter(|&t| t <= end);
                // Tick-before-ingest on equal timestamps is arbitrary
                // but fixed: the two event kinds draw from separate
                // streams and write disjoint buffers, so either order
                // yields the same outputs.
                match (next_tick, next_ingest) {
                    (Some(t), Some(g)) if g < t => {
                        ingest_tick(cfg, v, &mut self.out, g);
                    }
                    (Some(t), _) => {
                        tick(
                            cfg,
                            injector,
                            region_labels,
                            &self.snapshot,
                            v,
                            &mut self.out,
                            t,
                        );
                    }
                    (None, Some(g)) => {
                        ingest_tick(cfg, v, &mut self.out, g);
                    }
                    (None, None) => break,
                }
                self.out.events += 1;
            }
        }
        self.busy = started.elapsed();
    }
}

/// One vehicle request tick at time `now`. All branching depends only
/// on virtual time, the fault timeline, the previous barrier's
/// snapshot, and the vehicle's private RNG — inputs independent of
/// shard count, batch size, and steal schedule alike.
fn tick(
    cfg: &FleetConfig,
    injector: Option<&FaultInjector>,
    region_labels: &[String],
    snapshot: &CollabSnapshot,
    v: &mut VehicleState,
    out: &mut BatchOut,
    now: SimTime,
) {
    let horizon = cfg.horizon();

    // Per-request draws, in a fixed order so the stream replays
    // identically: class pick, cache eligibility, cost jitter.
    let seq = v.seq;
    v.seq += 1;
    let pick = v.rng.below(u64::from(cfg.total_class_weight()));
    let class = cfg.class_for_draw(pick);
    let cache_draw = v.rng.chance(cfg.cacheable_fraction);
    let jitter = v.rng.uniform();
    let cacheable = cache_draw && cfg.class(class).cacheable;
    let handoff = std::mem::take(&mut v.pending_handoff);
    let stale = v.cache_stale;
    let spec = cfg.class(class);

    let region_down =
        injector.is_some_and(|inj| inj.is_down(&region_labels[v.region as usize], now));

    out.metrics.record_request(class);
    if region_down {
        // Regional LTE outage: re-plan and run the pipeline on board
        // (a pBEAM round continues training locally at its own cost).
        let failover = cfg.failover_penalty.mul_f64(1.0 + 0.2 * jitter);
        let service = spec.vehicle_service.mul_f64(1.0 + 0.1 * jitter);
        let e2e = handoff + failover + service;
        out.metrics
            .record_failover(class, e2e, service.as_secs_f64() * BOARD_W);
        out.failover_samples
            .push((v.id, seq, failover.as_millis_f64()));
        if cfg.telemetry {
            out.spans.push(vehicle_span(
                cfg,
                v.id,
                seq,
                class,
                now,
                e2e,
                SpanOutcome::Failover,
            ));
        }
    } else {
        let tile = tile_at(v.id, now);
        let lookup = if cacheable {
            snapshot.get(&tile).copied().filter(|p| *p != v.id)
        } else {
            None
        };
        // A vehicle that just crossed a region boundary cannot trust
        // its collab cache: the would-be hit is counted, then dropped.
        let shared_by = if stale {
            if lookup.is_some() {
                out.stale_hits += 1;
            }
            None
        } else {
            lookup
        };
        if shared_by.is_some() {
            // V2V collaboration hit: fetch the neighbour's result over
            // DSRC instead of recomputing.
            let dsrc = LinkSpec::dsrc();
            let fetch = dsrc.transfer_time(Direction::Downlink, spec.download_bytes);
            let merge = SimDuration::from_millis_f64(2.0 + jitter);
            let e2e = handoff + dsrc.latency() + fetch + merge;
            out.metrics
                .record_collab(class, e2e, fetch.as_secs_f64() * DSRC_W);
            if cfg.telemetry {
                out.spans.push(vehicle_span(
                    cfg,
                    v.id,
                    seq,
                    class,
                    now,
                    e2e,
                    SpanOutcome::CollabHit,
                ));
            }
        } else {
            out.outbox.push(EdgeRequest {
                vehicle: v.id,
                seq,
                tenant: v.tenant,
                region: v.region,
                class,
                arrival: now,
                attempts: 0,
                handoff,
            });
            if cacheable {
                out.publications.push((tile, v.id));
            }
        }
    }

    // Open-loop reschedule with ±10% deterministic jitter.
    let next_jitter = v.rng.uniform();
    let delay = cfg.request_period.mul_f64(0.9 + 0.2 * next_jitter);
    v.next_tick = (now + delay <= horizon).then(|| now + delay);
}

/// One vehicle telemetry-upload tick at time `now`: batch the records
/// accumulated since the last upload and address them to the region's
/// collector. The batch is only *buffered* here — pricing, collector
/// admission and the storage drain all happen in the engine's barrier
/// ingest pass, so everything a vehicle does is a pure function of its
/// private DDI stream.
fn ingest_tick(cfg: &FleetConfig, v: &mut VehicleState, out: &mut BatchOut, now: SimTime) {
    let ingest = cfg.ingest.as_ref().expect("ingest ticks imply config");
    let horizon = cfg.horizon();
    let region = v.region;
    // Fixed draw order on the DDI stream: priority, then reschedule
    // jitter — the stream replays identically at any shard count.
    let d = v.ddi.as_mut().expect("ingest ticks imply uplink state");
    let seq = d.seq;
    d.seq += 1;
    let priority = d.rng.below(4) as u8;
    let next_jitter = d.rng.uniform();
    let delay = ingest.upload_period.mul_f64(0.9 + 0.2 * next_jitter);
    v.next_ingest = (now + delay <= horizon).then(|| now + delay);
    out.ingest_outbox.push(UploadBatch {
        vehicle: u64::from(v.id),
        region,
        seq,
        records: ingest.records_per_batch,
        bytes: ingest.batch_bytes(),
        sent_at: now,
        deadline: now + ingest.deadline,
        priority,
    });
}

/// Builds a span for a request resolved entirely on the vehicle side
/// (collab hits and regional-outage failovers never reach the edge, so
/// `admitted` and `serve_start` stay empty).
fn vehicle_span(
    cfg: &FleetConfig,
    vehicle: u32,
    seq: u32,
    class: WorkloadClass,
    generated: SimTime,
    e2e: SimDuration,
    outcome: SpanOutcome,
) -> RequestSpan {
    RequestSpan {
        vehicle,
        seq,
        tenant: cfg.tenant_of(vehicle),
        region: cfg.region_of(vehicle),
        shard: cfg.shard_of(vehicle),
        class: class.label(),
        generated,
        admitted: None,
        serve_start: None,
        completed: generated + e2e,
        outcome,
        retries: 0,
        requeues: 0,
        handoff: false,
    }
}

/// Builds the label table `region id → fault target label`.
pub(crate) fn region_label_table(regions: u32) -> Vec<String> {
    (0..regions).map(region_label).collect()
}

// --- snapshot codec --------------------------------------------------

use crate::ckpt::{
    dur_field, enc_dur, enc_opt_time, enc_rng, opt_time_field, rng_field, val_array,
};
use vdap_ckpt::json::Value;
use vdap_ckpt::{get, get_array, get_bool, get_u32, obj, CkptError};

/// Serializes one vehicle's complete private state: both RNG stream
/// positions, sequence counters, migration generation, the stored
/// next-event times (which the next epoch advance resumes from on
/// restore), handoff debt, and the stale collab-cache flag.
pub(crate) fn enc_vehicle(v: &VehicleState) -> Value {
    obj(vec![
        ("id", Value::Number(f64::from(v.id))),
        ("tenant", Value::Number(f64::from(v.tenant))),
        ("region", Value::Number(f64::from(v.region))),
        ("rng", enc_rng(&v.rng)),
        ("seq", Value::Number(f64::from(v.seq))),
        (
            "ddi",
            match &v.ddi {
                Some(ddi) => obj(vec![
                    ("rng", enc_rng(&ddi.rng)),
                    ("seq", Value::Number(f64::from(ddi.seq))),
                ]),
                None => Value::Null,
            },
        ),
        ("generation", Value::Number(f64::from(v.generation))),
        ("next_tick", enc_opt_time(v.next_tick)),
        ("next_ingest", enc_opt_time(v.next_ingest)),
        ("pending_handoff", enc_dur(v.pending_handoff)),
        ("cache_stale", Value::Bool(v.cache_stale)),
    ])
}

/// Decodes one vehicle, checking the stored DDI uplink against the
/// restoring config's ingest flag.
pub(crate) fn dec_vehicle(cfg: &FleetConfig, v: &Value) -> Result<VehicleState, CkptError> {
    let ddi = match (get(v, "ddi")?, cfg.ingest.is_some()) {
        (Value::Null, false) => None,
        (enc, true) => Some(DdiUplink {
            rng: rng_field(enc, "rng")?,
            seq: get_u32(enc, "seq")?,
        }),
        _ => {
            return Err(CkptError::new(
                "snapshot and config disagree on DDI ingestion",
            ))
        }
    };
    Ok(VehicleState {
        id: get_u32(v, "id")?,
        tenant: get_u32(v, "tenant")?,
        region: get_u32(v, "region")?,
        rng: rng_field(v, "rng")?,
        seq: get_u32(v, "seq")?,
        ddi,
        generation: get_u32(v, "generation")?,
        next_tick: opt_time_field(v, "next_tick")?,
        next_ingest: opt_time_field(v, "next_ingest")?,
        pending_handoff: dur_field(v, "pending_handoff")?,
        cache_stale: get_bool(v, "cache_stale")?,
    })
}

/// Serializes the shared V2V snapshot (tile → producer).
pub(crate) fn enc_collab(snapshot: &CollabSnapshot) -> Value {
    Value::Array(
        snapshot
            .iter()
            .map(|(tile, &producer)| {
                Value::Array(vec![
                    crate::ckpt::enc_i64(tile.0),
                    Value::Number(f64::from(producer)),
                ])
            })
            .collect(),
    )
}

/// Decodes the shared V2V snapshot.
pub(crate) fn dec_collab(v: &Value, key: &str) -> Result<CollabSnapshot, CkptError> {
    let mut snapshot = CollabSnapshot::new();
    for pair in get_array(v, key)? {
        let entry = val_array(pair)?;
        let [tile, producer] = entry else {
            return Err(CkptError::new("collab entry must be a pair"));
        };
        snapshot.insert(
            Tile(crate::ckpt::dec_i64(tile)?),
            crate::ckpt::val_u32(producer)?,
        );
    }
    Ok(snapshot)
}
