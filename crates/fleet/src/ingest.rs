//! The engine's barrier ingest pass: fleet-scale DDI ingestion under
//! pressure.
//!
//! Shards only *generate* [`UploadBatch`]es (a pure function of each
//! vehicle's private DDI stream); everything cross-vehicle happens here,
//! single-threaded at epoch barriers, in canonical batch order:
//!
//! 1. **Uplink pricing.** Each region's batches share the cellular
//!    uplink; the [`ContentionModel`] prices the transfer from how many
//!    uploads the region offered this epoch.
//! 2. **Collector admission.** A batch is offered to its region's
//!    bounded [`RegionCollector`] queue. A collector outage
//!    ([`vdap_fault::FaultKind::CollectorOutage`]) or a full queue
//!    bounces the batch into the ingestion degradation ladder:
//!    *rung 1* — seeded-backoff retry at a later barrier (while the
//!    attempt budget and the batch deadline allow); *rung 2* — defer
//!    into the vehicle's local TTL cache, mem tier first, disk spill
//!    second (mirroring the `DdiService` two-tier cache); *rung 3* —
//!    shed, lowest-priority first: a deferred lower-priority batch is
//!    sacrificed before a higher-priority newcomer is dropped.
//! 3. **Storage drain.** The shared storage tier drains collector
//!    queues round-robin at the [`StorageTierModel`]'s finite write
//!    throughput. A brownout
//!    ([`vdap_fault::FaultKind::StorageBrownout`]) shrinks the epoch's
//!    write capacity; a hard write-error window
//!    ([`vdap_fault::FaultKind::StorageWriteError`]) zeroes it.
//!
//! All ladder randomness comes from one engine-owned RNG stream
//! consumed in canonical batch order, and every counter below is a
//! plain integer or a [`StreamingHistogram`], so the pass preserves the
//! N-shard vs 1-shard byte-identity contract.

use std::collections::BTreeMap;

use vdap_ddi::{RegionCollector, StorageTierModel, UploadBatch};
use vdap_fault::{FaultInjector, RetryPolicy};
use vdap_net::{Direction, LinkSpec};
use vdap_offload::ContentionModel;
use vdap_sim::{
    ReliabilityStats, RngStream, SeedFactory, SimDuration, SimTime, StreamingHistogram,
};

use crate::config::{collector_label, FleetConfig, IngestConfig, STORE_LABEL};
use crate::metrics::FleetTelemetry;

/// Mergeable ingestion accounting (engine-side; reported through
/// `FleetReport::ingest` and the deterministic summary).
#[derive(Debug, Clone, PartialEq)]
pub struct IngestMetrics {
    /// Upload batches vehicles sent.
    pub batches_sent: u64,
    /// Telemetry records vehicles sent.
    pub records_sent: u64,
    /// Batches made durable by the storage tier.
    pub batches_written: u64,
    /// Records made durable by the storage tier.
    pub records_written: u64,
    /// Batches that missed their ingestion deadline (written late,
    /// TTL-evicted, or shed).
    pub deadline_misses: u64,
    /// Offers bounced by a collector outage.
    pub outage_bounces: u64,
    /// Offers bounced by a full collector queue (backpressure).
    pub queue_bounces: u64,
    /// Rung-1 seeded-backoff retries scheduled.
    pub retries: u64,
    /// Rung-2 deferrals into vehicle TTL caches.
    pub deferrals: u64,
    /// Deferrals that overflowed the mem tier onto the disk tier.
    pub disk_spills: u64,
    /// Records TTL-evicted from vehicle caches before reaching storage.
    pub cache_evictions: u64,
    /// Records shed at rung 3 (lowest-priority first).
    pub records_shed: u64,
    /// Records not yet durable when the run ended (queued, cached, or
    /// awaiting retry).
    pub backlog_records: u64,
    /// Storage-tier utilization sampled once per epoch.
    pub storage_rho: StreamingHistogram,
    /// Contention-priced uplink time per offer (ms).
    pub uplink_ms: StreamingHistogram,
    /// Sent-to-durable latency of written batches (ms).
    pub ingest_latency_ms: StreamingHistogram,
}

impl Default for IngestMetrics {
    fn default() -> Self {
        IngestMetrics::new()
    }
}

impl IngestMetrics {
    /// Creates empty ingestion metrics.
    #[must_use]
    pub fn new() -> Self {
        IngestMetrics {
            batches_sent: 0,
            records_sent: 0,
            batches_written: 0,
            records_written: 0,
            deadline_misses: 0,
            outage_bounces: 0,
            queue_bounces: 0,
            retries: 0,
            deferrals: 0,
            disk_spills: 0,
            cache_evictions: 0,
            records_shed: 0,
            backlog_records: 0,
            storage_rho: StreamingHistogram::new("ingest_storage_rho"),
            uplink_ms: StreamingHistogram::new("ingest_uplink_ms"),
            ingest_latency_ms: StreamingHistogram::new("ingest_latency_ms"),
        }
    }

    /// Merges another ingestion ledger (associative and commutative).
    pub fn merge(&mut self, other: &IngestMetrics) {
        self.batches_sent += other.batches_sent;
        self.records_sent += other.records_sent;
        self.batches_written += other.batches_written;
        self.records_written += other.records_written;
        self.deadline_misses += other.deadline_misses;
        self.outage_bounces += other.outage_bounces;
        self.queue_bounces += other.queue_bounces;
        self.retries += other.retries;
        self.deferrals += other.deferrals;
        self.disk_spills += other.disk_spills;
        self.cache_evictions += other.cache_evictions;
        self.records_shed += other.records_shed;
        self.backlog_records += other.backlog_records;
        self.storage_rho.merge(&other.storage_rho);
        self.uplink_ms.merge(&other.uplink_ms);
        self.ingest_latency_ms.merge(&other.ingest_latency_ms);
    }

    /// Fraction of sent batches that missed their ingestion deadline.
    #[must_use]
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.batches_sent == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.batches_sent as f64
        }
    }
}

/// A batch waiting out its rung-1 backoff.
#[derive(Debug)]
struct Pending {
    due: SimTime,
    attempts: u32,
    /// Original cache expiry, once the batch has ever been deferred.
    expires: Option<SimTime>,
    batch: UploadBatch,
}

/// A batch deferred into its vehicle's local TTL cache.
#[derive(Debug)]
struct Cached {
    expires: SimTime,
    attempts: u32,
    disk: bool,
    batch: UploadBatch,
}

/// One batch offered to a collector this barrier.
struct Offer {
    attempts: u32,
    expires: Option<SimTime>,
    batch: UploadBatch,
}

/// Engine-owned ingestion state, advanced once per barrier.
#[derive(Debug)]
pub(crate) struct IngestPass {
    ing: IngestConfig,
    collectors: Vec<RegionCollector>,
    collector_labels: Vec<String>,
    storage: StorageTierModel,
    lte: LinkSpec,
    contention: ContentionModel,
    policy: RetryPolicy,
    rng: RngStream,
    pending: Vec<Pending>,
    cached: Vec<Cached>,
    /// Records occupying each vehicle's mem-tier cache.
    mem_used: BTreeMap<u64, u64>,
    /// Records occupying each vehicle's disk-tier cache.
    disk_used: BTreeMap<u64, u64>,
    pub metrics: IngestMetrics,
}

impl IngestPass {
    pub fn new(cfg: &FleetConfig, seeds: &SeedFactory) -> Self {
        let ing = cfg.ingest.clone().expect("ingest pass implies config");
        let lte = LinkSpec::lte();
        // How many serialized batch uploads one region's shared uplink
        // absorbs per epoch at nominal speed — the contention capacity.
        let nominal = lte
            .transfer_time(Direction::Uplink, ing.batch_bytes())
            .as_secs_f64();
        let per_epoch = (cfg.epoch.as_secs_f64() / nominal.max(1e-9)).floor() as u32;
        let mut policy = RetryPolicy::transfer_default();
        policy.max_attempts = ing.max_upload_attempts;
        IngestPass {
            collectors: (0..cfg.regions)
                .map(|r| RegionCollector::new(r, ing.collector_queue_records))
                .collect(),
            collector_labels: (0..cfg.regions).map(collector_label).collect(),
            storage: StorageTierModel::new(ing.storage_records_per_sec),
            lte,
            contention: ContentionModel::new(per_epoch.max(1)),
            policy,
            rng: seeds.stream("fleet-ingest"),
            pending: Vec::new(),
            cached: Vec::new(),
            mem_used: BTreeMap::new(),
            disk_used: BTreeMap::new(),
            metrics: IngestMetrics::new(),
            ing,
        }
    }

    /// Re-addresses a migrated vehicle's in-flight batches — pending
    /// retries and TTL-cached deferrals — to its new region's
    /// collector, returning how many batches moved. Called by the
    /// engine's mobility pass in canonical vehicle order, so the
    /// re-addressing is shard-count invariant.
    pub fn readdress(&mut self, vehicle: u64, region: u32) -> u64 {
        let mut moved = 0u64;
        for p in self.pending.iter_mut() {
            if p.batch.vehicle == vehicle && p.batch.readdress(region) {
                moved += 1;
            }
        }
        for c in self.cached.iter_mut() {
            if c.batch.vehicle == vehicle && c.batch.readdress(region) {
                moved += 1;
            }
        }
        moved
    }

    /// Runs one barrier's ingest pass over the freshly drained batches.
    #[allow(clippy::too_many_arguments)] // one call site, in the engine's barrier loop
    pub fn barrier(
        &mut self,
        mut fresh: Vec<UploadBatch>,
        window: SimDuration,
        end: SimTime,
        epoch: u64,
        injector: Option<&FaultInjector>,
        reliability: &mut ReliabilityStats,
        telemetry: Option<&mut FleetTelemetry>,
    ) {
        fresh.sort_unstable_by_key(|b| (b.sent_at, b.vehicle, b.seq));
        for b in &fresh {
            self.metrics.batches_sent += 1;
            self.metrics.records_sent += u64::from(b.records);
        }
        let mut offers: Vec<Offer> = fresh
            .into_iter()
            .map(|batch| Offer {
                attempts: 0,
                expires: None,
                batch,
            })
            .collect();

        // Wake rung-1 retries whose backoff has elapsed.
        let mut still_pending = Vec::new();
        for p in self.pending.drain(..) {
            if p.due <= end {
                offers.push(Offer {
                    attempts: p.attempts,
                    expires: p.expires,
                    batch: p.batch,
                });
            } else {
                still_pending.push(p);
            }
        }
        self.pending = still_pending;

        // Vehicle caches: TTL-evict what expired (the records never
        // reach storage — a terminal deadline miss), re-offer the rest.
        for c in std::mem::take(&mut self.cached) {
            let records = u64::from(c.batch.records);
            let used = if c.disk {
                &mut self.disk_used
            } else {
                &mut self.mem_used
            };
            if let Some(u) = used.get_mut(&c.batch.vehicle) {
                *u = u.saturating_sub(records);
            }
            if c.expires <= end {
                self.metrics.cache_evictions += records;
                self.metrics.deadline_misses += 1;
                reliability.record_cache_ttl_evictions(records);
            } else {
                offers.push(Offer {
                    attempts: c.attempts,
                    expires: Some(c.expires),
                    batch: c.batch,
                });
            }
        }

        // Canonical processing order: the batch identity (vehicle, seq)
        // is unique and sent_at is fixed at generation, so this order is
        // independent of shard count and of which path re-offered a
        // batch.
        offers.sort_unstable_by_key(|o| (o.batch.sent_at, o.batch.vehicle, o.batch.seq));

        // Contention-priced uplink per region: every batch a region
        // offered this epoch shares its cellular uplink.
        let mut offered_per_region = vec![0u32; self.collectors.len()];
        for o in &offers {
            offered_per_region[o.batch.region as usize] += 1;
        }
        let uplink_ms: Vec<f64> = offered_per_region
            .iter()
            .map(|&n| {
                let transfer = self
                    .lte
                    .transfer_time(Direction::Uplink, self.ing.batch_bytes());
                let priced = transfer.mul_f64(self.contention.service_multiplier(n));
                (self.lte.latency() + priced).as_millis_f64()
            })
            .collect();

        for offer in offers {
            let region = offer.batch.region as usize;
            self.metrics.uplink_ms.record(uplink_ms[region]);
            let down = injector.is_some_and(|inj| inj.is_down(&self.collector_labels[region], end));
            if down {
                self.metrics.outage_bounces += 1;
                self.ladder(offer, end, reliability);
            } else if let Err(batch) = self.collectors[region].offer(offer.batch) {
                self.metrics.queue_bounces += 1;
                self.ladder(
                    Offer {
                        attempts: offer.attempts,
                        expires: offer.expires,
                        batch,
                    },
                    end,
                    reliability,
                );
            }
        }

        // Storage drain: finite write throughput, browned out or hard-
        // failed by the fault timeline, shared round-robin across the
        // regional collector queues.
        let store_down = injector.is_some_and(|inj| inj.is_down(STORE_LABEL, end));
        let factor = if store_down {
            0.0
        } else {
            injector.map_or(1.0, |inj| inj.brownout_factor(STORE_LABEL, end))
        };
        let offered: u64 = self
            .collectors
            .iter()
            .map(RegionCollector::queued_records)
            .sum();
        let rho = self.storage.utilization(offered, window, factor);
        self.metrics.storage_rho.record(rho);
        let delay = self.storage.write_delay(offered, window, factor);
        let mut budget = self.storage.capacity_in(window, factor);
        let mut written_records = 0u64;
        loop {
            let mut progressed = false;
            for c in &mut self.collectors {
                if let Some(records) = c.peek_records() {
                    if u64::from(records) <= budget {
                        let batch = c.pop().expect("peeked batch present");
                        budget -= u64::from(records);
                        written_records += u64::from(records);
                        let durable = end + delay;
                        self.metrics.batches_written += 1;
                        self.metrics.records_written += u64::from(records);
                        self.metrics
                            .ingest_latency_ms
                            .record((durable - batch.sent_at).as_millis_f64());
                        if durable > batch.deadline {
                            self.metrics.deadline_misses += 1;
                        }
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }

        if let Some(tel) = telemetry {
            let queued: u64 = self
                .collectors
                .iter()
                .map(RegionCollector::queued_records)
                .sum();
            tel.registry
                .sample("ingest.queued_records", epoch, end, queued as f64);
            tel.registry
                .sample("ingest.written_records", epoch, end, written_records as f64);
            tel.registry.sample("ingest.storage_rho", epoch, end, rho);
            tel.registry.inc("fleet.ingest_written", written_records);
        }
    }

    /// The ingestion degradation ladder, applied to one bounced offer:
    /// seeded-backoff retry → defer-to-cache (mem, then disk spill) →
    /// shed lowest-priority.
    fn ladder(&mut self, offer: Offer, end: SimTime, reliability: &mut ReliabilityStats) {
        let attempts = offer.attempts + 1;
        // Rung 1: retry while the attempt budget and the deadline allow.
        if attempts < self.ing.max_upload_attempts {
            let delay = self.policy.backoff_delay(attempts + 1, &mut self.rng);
            let due = end + delay;
            if due <= offer.batch.deadline {
                self.metrics.retries += 1;
                self.pending.push(Pending {
                    due,
                    attempts,
                    expires: offer.expires,
                    batch: offer.batch,
                });
                return;
            }
        }
        // Rung 2: defer into the vehicle's local TTL cache. The expiry
        // is fixed at first deferral so re-offers cannot refresh it.
        let vehicle = offer.batch.vehicle;
        let records = u64::from(offer.batch.records);
        let expires = offer.expires.unwrap_or(end + self.ing.cache_ttl);
        let mem = self.mem_used.entry(vehicle).or_insert(0);
        if *mem + records <= self.ing.cache_mem_records {
            *mem += records;
            self.metrics.deferrals += 1;
            self.cached.push(Cached {
                expires,
                attempts,
                disk: false,
                batch: offer.batch,
            });
            return;
        }
        let disk = self.disk_used.entry(vehicle).or_insert(0);
        if *disk + records <= self.ing.cache_disk_records {
            *disk += records;
            self.metrics.deferrals += 1;
            self.metrics.disk_spills += 1;
            reliability.record_disk_spills(records);
            self.cached.push(Cached {
                expires,
                attempts,
                disk: true,
                batch: offer.batch,
            });
            return;
        }
        // Rung 3: shed lowest-priority first. If this vehicle holds a
        // strictly lower-priority cached batch, sacrifice that one and
        // cache the newcomer in its tier; otherwise drop the newcomer.
        let victim = self
            .cached
            .iter()
            .enumerate()
            .filter(|(_, c)| c.batch.vehicle == vehicle && c.batch.priority < offer.batch.priority)
            .min_by_key(|(_, c)| (c.batch.priority, c.batch.sent_at, c.batch.seq))
            .map(|(i, _)| i);
        if let Some(i) = victim {
            let shed = self.cached.remove(i);
            // The victim's cache slot transfers to the newcomer.
            let tier = if shed.disk {
                &mut self.disk_used
            } else {
                &mut self.mem_used
            };
            if let Some(u) = tier.get_mut(&vehicle) {
                *u = u.saturating_sub(u64::from(shed.batch.records)) + records;
            }
            self.shed(&shed.batch);
            self.cached.push(Cached {
                expires,
                attempts,
                disk: shed.disk,
                batch: offer.batch,
            });
            self.metrics.deferrals += 1;
            if shed.disk {
                self.metrics.disk_spills += 1;
            }
        } else {
            // Free the occupancy this batch never claimed: the maps were
            // only read above, nothing to release — just shed.
            self.shed(&offer.batch);
        }
    }

    /// Records one batch shed at rung 3 (a terminal deadline miss).
    fn shed(&mut self, batch: &UploadBatch) {
        self.metrics.records_shed += u64::from(batch.records);
        self.metrics.deadline_misses += 1;
    }

    /// Closes the ledger at the horizon: everything not yet durable —
    /// queued in collectors, parked in vehicle caches, or awaiting a
    /// retry — is backlog.
    pub fn finish(&mut self) -> IngestMetrics {
        let queued: u64 = self
            .collectors
            .iter()
            .map(RegionCollector::queued_records)
            .sum();
        let cached: u64 = self.cached.iter().map(|c| u64::from(c.batch.records)).sum();
        let pending: u64 = self
            .pending
            .iter()
            .map(|p| u64::from(p.batch.records))
            .sum();
        self.metrics.backlog_records = queued + cached + pending;
        self.metrics.clone()
    }
}

// --- snapshot codec --------------------------------------------------

use crate::ckpt::{
    enc_batch, enc_hist, enc_opt_time, enc_rng, enc_time, hist_field, opt_time_field, rng_field,
    time_field, val_array, val_pair, val_u64_hex,
};
use vdap_ckpt::json::Value;
use vdap_ckpt::{get, get_array, get_bool, get_u32, get_u64_hex, obj, u64_hex, CkptError};

fn enc_ingest_metrics(m: &IngestMetrics) -> Value {
    obj(vec![
        ("batches_sent", u64_hex(m.batches_sent)),
        ("records_sent", u64_hex(m.records_sent)),
        ("batches_written", u64_hex(m.batches_written)),
        ("records_written", u64_hex(m.records_written)),
        ("deadline_misses", u64_hex(m.deadline_misses)),
        ("outage_bounces", u64_hex(m.outage_bounces)),
        ("queue_bounces", u64_hex(m.queue_bounces)),
        ("retries", u64_hex(m.retries)),
        ("deferrals", u64_hex(m.deferrals)),
        ("disk_spills", u64_hex(m.disk_spills)),
        ("cache_evictions", u64_hex(m.cache_evictions)),
        ("records_shed", u64_hex(m.records_shed)),
        ("backlog_records", u64_hex(m.backlog_records)),
        ("storage_rho", enc_hist(&m.storage_rho)),
        ("uplink_ms", enc_hist(&m.uplink_ms)),
        ("ingest_latency_ms", enc_hist(&m.ingest_latency_ms)),
    ])
}

fn dec_ingest_metrics(v: &Value) -> Result<IngestMetrics, CkptError> {
    Ok(IngestMetrics {
        batches_sent: get_u64_hex(v, "batches_sent")?,
        records_sent: get_u64_hex(v, "records_sent")?,
        batches_written: get_u64_hex(v, "batches_written")?,
        records_written: get_u64_hex(v, "records_written")?,
        deadline_misses: get_u64_hex(v, "deadline_misses")?,
        outage_bounces: get_u64_hex(v, "outage_bounces")?,
        queue_bounces: get_u64_hex(v, "queue_bounces")?,
        retries: get_u64_hex(v, "retries")?,
        deferrals: get_u64_hex(v, "deferrals")?,
        disk_spills: get_u64_hex(v, "disk_spills")?,
        cache_evictions: get_u64_hex(v, "cache_evictions")?,
        records_shed: get_u64_hex(v, "records_shed")?,
        backlog_records: get_u64_hex(v, "backlog_records")?,
        storage_rho: hist_field(v, "storage_rho")?,
        uplink_ms: hist_field(v, "uplink_ms")?,
        ingest_latency_ms: hist_field(v, "ingest_latency_ms")?,
    })
}

fn enc_used(map: &BTreeMap<u64, u64>) -> Value {
    Value::Array(
        map.iter()
            .map(|(&vehicle, &records)| Value::Array(vec![u64_hex(vehicle), u64_hex(records)]))
            .collect(),
    )
}

fn dec_used(v: &Value, key: &str) -> Result<BTreeMap<u64, u64>, CkptError> {
    let mut map = BTreeMap::new();
    for pair in get_array(v, key)? {
        let (vehicle, records) = val_pair(pair)?;
        map.insert(val_u64_hex(vehicle)?, val_u64_hex(records)?);
    }
    Ok(map)
}

impl IngestPass {
    /// Serializes everything the ingest pass carries across barriers:
    /// the ladder RNG position, rung-1 retry queue, rung-2 TTL caches
    /// with their per-vehicle tier occupancy, the ingestion ledger, and
    /// every collector's queued batches. The config-derived pieces
    /// (uplink model, contention capacity, retry policy, storage tier)
    /// are rebuilt on restore.
    ///
    /// Deliberately does **not** call [`IngestPass::finish`] — that
    /// closes the backlog ledger, which only happens at the horizon.
    pub(crate) fn ckpt(&self) -> Value {
        obj(vec![
            ("rng", enc_rng(&self.rng)),
            (
                "pending",
                Value::Array(
                    self.pending
                        .iter()
                        .map(|p| {
                            obj(vec![
                                ("due", enc_time(p.due)),
                                ("attempts", Value::Number(f64::from(p.attempts))),
                                ("expires", enc_opt_time(p.expires)),
                                ("batch", enc_batch(&p.batch)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "cached",
                Value::Array(
                    self.cached
                        .iter()
                        .map(|c| {
                            obj(vec![
                                ("expires", enc_time(c.expires)),
                                ("attempts", Value::Number(f64::from(c.attempts))),
                                ("disk", Value::Bool(c.disk)),
                                ("batch", enc_batch(&c.batch)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("mem_used", enc_used(&self.mem_used)),
            ("disk_used", enc_used(&self.disk_used)),
            ("metrics", enc_ingest_metrics(&self.metrics)),
            (
                "collectors",
                Value::Array(
                    self.collectors
                        .iter()
                        .map(|c| Value::Array(c.batches().map(enc_batch).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds the pass from config plus the serialized barrier state.
    pub(crate) fn restore_ckpt(
        cfg: &FleetConfig,
        seeds: &SeedFactory,
        v: &Value,
    ) -> Result<IngestPass, CkptError> {
        let mut pass = IngestPass::new(cfg, seeds);
        pass.rng = rng_field(v, "rng")?;
        pass.pending = get_array(v, "pending")?
            .iter()
            .map(|p| {
                Ok(Pending {
                    due: time_field(p, "due")?,
                    attempts: get_u32(p, "attempts")?,
                    expires: opt_time_field(p, "expires")?,
                    batch: crate::ckpt::dec_batch(get(p, "batch")?)?,
                })
            })
            .collect::<Result<Vec<_>, CkptError>>()?;
        pass.cached = get_array(v, "cached")?
            .iter()
            .map(|c| {
                Ok(Cached {
                    expires: time_field(c, "expires")?,
                    attempts: get_u32(c, "attempts")?,
                    disk: get_bool(c, "disk")?,
                    batch: crate::ckpt::dec_batch(get(c, "batch")?)?,
                })
            })
            .collect::<Result<Vec<_>, CkptError>>()?;
        pass.mem_used = dec_used(v, "mem_used")?;
        pass.disk_used = dec_used(v, "disk_used")?;
        pass.metrics = dec_ingest_metrics(get(v, "metrics")?)?;
        let queues = get_array(v, "collectors")?;
        if queues.len() != pass.collectors.len() {
            return Err(CkptError::new(format!(
                "snapshot has {} collectors, config has {}",
                queues.len(),
                pass.collectors.len()
            )));
        }
        for (region, queue) in queues.iter().enumerate() {
            let batches = val_array(queue)?
                .iter()
                .map(crate::ckpt::dec_batch)
                .collect::<Result<Vec<_>, _>>()?;
            pass.collectors[region] = RegionCollector::from_batches(
                region as u32,
                pass.ing.collector_queue_records,
                batches,
            );
        }
        Ok(pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ingest_cfg() -> FleetConfig {
        let mut cfg = FleetConfig::sized(64, 1).with_ingest();
        cfg.duration = SimDuration::from_secs(10);
        cfg
    }

    fn batch(vehicle: u64, seq: u32, sent_at: SimTime, priority: u8) -> UploadBatch {
        UploadBatch {
            vehicle,
            region: 0,
            seq,
            records: 24,
            bytes: 24 * 512,
            sent_at,
            deadline: sent_at + SimDuration::from_secs(5),
            priority,
        }
    }

    #[test]
    fn healthy_pass_writes_everything_within_deadline() {
        let cfg = ingest_cfg();
        let seeds = SeedFactory::new(7);
        let mut pass = IngestPass::new(&cfg, &seeds);
        let mut rel = ReliabilityStats::new();
        let batches: Vec<UploadBatch> = (0..8)
            .map(|v| batch(v, 0, SimTime::from_secs(1), 2))
            .collect();
        pass.barrier(
            batches,
            SimDuration::from_millis(500),
            SimTime::ZERO + SimDuration::from_millis(1500),
            0,
            None,
            &mut rel,
            None,
        );
        let m = pass.finish();
        assert_eq!(m.batches_sent, 8);
        assert_eq!(m.records_written, 8 * 24);
        assert_eq!(m.deadline_misses, 0);
        assert_eq!(m.backlog_records, 0);
        assert_eq!(m.uplink_ms.count(), 8);
        assert!(m.storage_rho.max() < 1.0, "light load stays subcritical");
    }

    #[test]
    fn collector_outage_walks_retry_then_cache() {
        let cfg = ingest_cfg().with_collector_outage(0, SimTime::ZERO, SimDuration::from_secs(60));
        let inj = cfg.chaos.clone().unwrap().compile();
        let seeds = SeedFactory::new(7);
        let mut pass = IngestPass::new(&cfg, &seeds);
        let mut rel = ReliabilityStats::new();
        let epoch = SimDuration::from_millis(500);
        let mut sent = vec![batch(
            1,
            0,
            SimTime::ZERO + SimDuration::from_millis(200),
            2,
        )];
        for k in 0..60u64 {
            let end = SimTime::ZERO + epoch * (k + 1);
            pass.barrier(
                std::mem::take(&mut sent),
                epoch,
                end,
                k,
                Some(&inj),
                &mut rel,
                None,
            );
        }
        let m = pass.finish();
        assert!(
            m.outage_bounces > 0,
            "offers bounced off the dead collector"
        );
        assert!(m.retries > 0, "rung 1 scheduled seeded-backoff retries");
        assert!(m.deferrals > 0, "rung 2 parked the batch in the cache");
        assert_eq!(m.records_written, 0, "nothing reaches storage");
        assert!(
            m.cache_evictions > 0,
            "a 60 s outage outlives the 20 s cache TTL"
        );
        assert!(rel.cache_ttl_eviction_count() > 0);
    }

    #[test]
    fn full_queue_backpressure_prefers_shedding_low_priority() {
        let mut cfg = ingest_cfg();
        {
            let ing = cfg.ingest.as_mut().unwrap();
            ing.collector_queue_records = 24; // one batch
            ing.cache_mem_records = 24; // one cached batch per vehicle
            ing.cache_disk_records = 0;
            ing.max_upload_attempts = 1; // ladder skips straight to rung 2
            ing.storage_records_per_sec = 0.1; // storage can't drain
        }
        let seeds = SeedFactory::new(7);
        let mut pass = IngestPass::new(&cfg, &seeds);
        let mut rel = ReliabilityStats::new();
        let t = SimTime::ZERO + SimDuration::from_millis(100);
        let batches = vec![
            batch(5, 0, t, 3),                               // fills the queue
            batch(5, 1, t + SimDuration::from_millis(1), 0), // deferred (low prio)
            batch(5, 2, t + SimDuration::from_millis(2), 3), // sheds the cached 0
        ];
        pass.barrier(
            batches,
            SimDuration::from_millis(500),
            SimTime::ZERO + SimDuration::from_millis(500),
            0,
            None,
            &mut rel,
            None,
        );
        let m = &pass.metrics;
        assert_eq!(m.queue_bounces, 2);
        assert_eq!(m.records_shed, 24, "exactly the low-priority batch shed");
        assert!(m.deadline_misses >= 1);
        // The surviving cached batch is the high-priority newcomer.
        assert_eq!(pass.cached.len(), 1);
        assert_eq!(pass.cached[0].batch.priority, 3);
        assert_eq!(pass.cached[0].batch.seq, 2);
    }

    #[test]
    fn storage_brownout_backs_queues_up_and_raises_rho() {
        let run = |brown: bool| {
            let mut cfg = ingest_cfg();
            cfg.ingest.as_mut().unwrap().storage_records_per_sec = 200.0;
            if brown {
                cfg = cfg.with_storage_brownout(0.05, SimTime::ZERO, SimDuration::from_secs(60));
            }
            let inj = cfg.chaos.clone().map(|p| p.compile());
            let seeds = SeedFactory::new(7);
            let mut pass = IngestPass::new(&cfg, &seeds);
            let mut rel = ReliabilityStats::new();
            let epoch = SimDuration::from_millis(500);
            for k in 0..10u64 {
                let end = SimTime::ZERO + epoch * (k + 1);
                let sent: Vec<UploadBatch> = (0..4)
                    .map(|v| batch(v, k as u32, end - SimDuration::from_millis(100), 2))
                    .collect();
                pass.barrier(sent, epoch, end, k, inj.as_ref(), &mut rel, None);
            }
            pass.finish()
        };
        let nominal = run(false);
        let browned = run(true);
        assert!(browned.storage_rho.max() > nominal.storage_rho.max());
        assert!(browned.records_written < nominal.records_written);
        assert!(
            browned.backlog_records > 0 || browned.deadline_misses > nominal.deadline_misses,
            "brownout must leave visible pressure"
        );
    }

    #[test]
    fn metrics_merge_is_additive() {
        let mut a = IngestMetrics::new();
        a.batches_sent = 3;
        a.records_shed = 24;
        a.storage_rho.record(0.5);
        let mut b = IngestMetrics::new();
        b.batches_sent = 2;
        b.deadline_misses = 1;
        b.storage_rho.record(1.5);
        a.merge(&b);
        assert_eq!(a.batches_sent, 5);
        assert_eq!(a.deadline_misses, 1);
        assert_eq!(a.records_shed, 24);
        assert_eq!(a.storage_rho.count(), 2);
        assert!((a.deadline_miss_rate() - 0.2).abs() < 1e-12);
    }
}
