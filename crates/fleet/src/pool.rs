//! Bounded worker pool for shard advancement and parameter sweeps.
//!
//! The fleet engine needs "run these N independent chunks of work on at
//! most K OS threads, return results in input order" — nothing more. A
//! [`WorkerPool`] provides exactly that with scoped threads and an
//! atomic work index, so neither the engine nor `openvdap::scenario`
//! spawns one thread per work item (the unbounded-thread bug this pool
//! replaces). Results are returned in input order regardless of which
//! worker ran them, so pool size never affects determinism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// A fixed-size pool of worker threads, capped at the machine's
/// available parallelism.
///
/// The pool holds no persistent threads: each [`WorkerPool::map`] /
/// [`WorkerPool::for_each_mut`] call spawns scoped workers, which keeps
/// the type trivially `Send + Sync` and leak-free.
///
/// # Examples
///
/// ```
/// use vdap_fleet::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = pool.map((0u64..8).collect(), |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool of at most `max_threads` workers, clamped to
    /// `[1, available_parallelism]`.
    #[must_use]
    pub fn new(max_threads: usize) -> Self {
        let hw = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        WorkerPool {
            threads: max_threads.clamp(1, hw),
        }
    }

    /// A pool sized to the machine (`available_parallelism` workers).
    #[must_use]
    pub fn with_default_size() -> Self {
        WorkerPool::new(usize::MAX)
    }

    /// Number of worker threads this pool will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every input on the pool and returns outputs in
    /// input order.
    pub fn map<P, T>(&self, inputs: Vec<P>, f: impl Fn(P) -> T + Sync) -> Vec<T>
    where
        P: Send,
        T: Send,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        if workers <= 1 {
            return inputs.into_iter().map(f).collect();
        }
        let cells: Vec<Mutex<(Option<P>, Option<T>)>> = inputs
            .into_iter()
            .map(|p| Mutex::new((Some(p), None)))
            .collect();
        let next = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let input = cells[i]
                        .lock()
                        .expect("pool cell lock")
                        .0
                        .take()
                        .expect("each input is taken exactly once");
                    let output = f(input);
                    cells[i].lock().expect("pool cell lock").1 = Some(output);
                });
            }
        });
        cells
            .into_iter()
            .map(|c| {
                c.into_inner()
                    .expect("pool cell lock")
                    .1
                    .expect("every input produced an output")
            })
            .collect()
    }

    /// Runs `f(index, item)` for every item, mutating in place. Items
    /// are distributed across workers; each item is visited exactly
    /// once.
    pub fn for_each_mut<S: Send>(&self, items: &mut [S], f: impl Fn(usize, &mut S) + Sync) {
        let n = items.len();
        if n == 0 {
            return;
        }
        let workers = self.threads.min(n);
        if workers <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let cells: Vec<Mutex<&mut S>> = items.iter_mut().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut guard = cells[i].lock().expect("pool cell lock");
                    f(i, &mut guard);
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let pool = WorkerPool::new(3);
        let out = pool.map((0..100u32).collect(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn map_handles_fewer_inputs_than_workers() {
        let pool = WorkerPool::new(16);
        assert_eq!(pool.map(vec![7u8], |x| x + 1), vec![8]);
        assert_eq!(pool.map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let pool = WorkerPool::new(4);
        let mut items = vec![0u32; 50];
        pool.for_each_mut(&mut items, |i, x| *x += i as u32 + 1);
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, i as u32 + 1);
        }
    }

    #[test]
    fn pool_size_is_clamped() {
        assert!(WorkerPool::new(0).threads() >= 1);
        let hw = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert!(WorkerPool::new(usize::MAX).threads() <= hw);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.map(vec![1, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
