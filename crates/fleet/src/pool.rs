//! Persistent work-stealing executor for shard advancement and
//! parameter sweeps.
//!
//! The fleet engine needs "run these N independent chunks of work on at
//! most K OS threads, return results in input order" — but it needs it
//! *every epoch*, thousands of times per run. The old pool spawned and
//! joined fresh scoped threads per call and funneled every item through
//! its own `Mutex` cell; this one holds K persistent parked workers for
//! the pool's lifetime and hands items out by disjoint index, so the
//! steady-state cost of a submission is one condvar broadcast.
//!
//! Work distribution is classic stealing: each worker owns a deque and
//! pops from the front; a contiguous chunk of the submission is
//! pre-pushed onto each deque and the remainder goes to a shared
//! injector queue; a worker that runs dry takes from the injector and
//! then steals from the *back* of its siblings' deques. Per-worker
//! busy time, steal counts, and stolen-work time are reported back per
//! submission ([`WorkerSample`]) so the barrier profiler can show where
//! the epoch's wall-clock went.
//!
//! The steal schedule is wall-clock-dependent and therefore
//! nondeterministic — which is why callers must only submit work whose
//! *outputs* are order-free (the fleet's vehicle batches each own their
//! seeded RNG streams and private output buffers, and the engine merges
//! batch results in canonical order). Results of [`WorkerPool::map`]
//! are returned in input order regardless of which worker ran them, so
//! pool size never affects determinism.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use vdap_obs::WorkerSample;

/// A fixed-size pool of persistent worker threads, capped at the
/// machine's available parallelism.
///
/// Workers are spawned lazily on the first parallel submission and
/// parked between submissions; dropping the pool shuts them down and
/// joins them. A single-thread pool never spawns: it runs submissions
/// inline on the caller, in index order.
///
/// # Examples
///
/// ```
/// use vdap_fleet::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = pool.map((0u64..8).collect(), |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct WorkerPool {
    threads: usize,
    inner: OnceLock<Inner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("spawned", &self.inner.get().is_some())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of at most `max_threads` workers, clamped to
    /// `[1, available_parallelism]`. No threads are spawned until the
    /// first parallel submission.
    #[must_use]
    pub fn new(max_threads: usize) -> Self {
        let hw = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        WorkerPool {
            threads: max_threads.clamp(1, hw),
            inner: OnceLock::new(),
        }
    }

    /// A pool sized to the machine (`available_parallelism` workers).
    #[must_use]
    pub fn with_default_size() -> Self {
        WorkerPool::new(usize::MAX)
    }

    /// Number of worker threads this pool will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every input on the pool and returns outputs in
    /// input order.
    pub fn map<P, T>(&self, inputs: Vec<P>, f: impl Fn(P) -> T + Sync) -> Vec<T>
    where
        P: Send,
        T: Send,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let inputs: Slots<Option<P>> = Slots(
            inputs
                .into_iter()
                .map(|p| UnsafeCell::new(Some(p)))
                .collect(),
        );
        let outputs: Slots<Option<T>> = Slots((0..n).map(|_| UnsafeCell::new(None)).collect());
        self.run_tasks(n, &|_w, i| {
            // SAFETY: the executor hands each index to exactly one
            // worker, so these disjoint-slot accesses never alias.
            let input = unsafe { &mut *inputs.slot(i) }
                .take()
                .expect("each input is taken exactly once");
            let output = f(input);
            unsafe { *outputs.slot(i) = Some(output) };
        });
        outputs
            .0
            .into_iter()
            .map(|c| c.into_inner().expect("every input produced an output"))
            .collect()
    }

    /// Runs `f(index, item)` for every item, mutating in place. Items
    /// are handed to workers by disjoint index — no per-item locks —
    /// and each item is visited exactly once. Returns one
    /// [`WorkerSample`] per pool thread for this submission.
    pub fn for_each_mut<S: Send>(
        &self,
        items: &mut [S],
        f: impl Fn(usize, &mut S) + Sync,
    ) -> Vec<WorkerSample> {
        let n = items.len();
        let base = SendPtr(items.as_mut_ptr());
        self.run_tasks(n, &move |_w, i| {
            // SAFETY: the executor hands each index to exactly one
            // worker, so these &mut borrows are disjoint, and the
            // submission blocks until every task finished, so the
            // slice outlives all of them.
            let item = unsafe { &mut *base.at(i) };
            f(i, item);
        })
    }

    /// Executes `task(worker, index)` for every index in `0..n` across
    /// the pool and blocks until all of them finished. The core
    /// submission primitive behind [`WorkerPool::map`] and
    /// [`WorkerPool::for_each_mut`].
    fn run_tasks(&self, n: usize, task: &(dyn Fn(usize, usize) + Sync)) -> Vec<WorkerSample> {
        if self.threads == 1 {
            let started = Instant::now();
            for i in 0..n {
                task(0, i);
            }
            return vec![WorkerSample {
                busy: started.elapsed(),
                steals: 0,
                stolen: Duration::ZERO,
            }];
        }
        if n == 0 {
            return vec![WorkerSample::default(); self.threads];
        }
        let inner = self.inner.get_or_init(|| Inner::spawn(self.threads));
        inner.submit(n, task)
    }
}

/// `Vec<UnsafeCell<T>>` shared across workers; sound because each index
/// is claimed by exactly one worker per submission. Access goes through
/// [`Slots::slot`] so closures capture the wrapper (and its `Sync`
/// impl), not the raw `Vec` field.
struct Slots<T>(Vec<UnsafeCell<T>>);

impl<T> Slots<T> {
    fn slot(&self, i: usize) -> *mut T {
        self.0[i].get()
    }
}

// SAFETY: disjoint-index access only (see Slots doc).
unsafe impl<T: Send> Sync for Slots<T> {}

/// A raw `*mut S` that may cross threads; each worker only dereferences
/// offsets it exclusively claimed. Access goes through [`SendPtr::at`]
/// so closures capture the wrapper, not the raw pointer field.
#[derive(Clone, Copy)]
struct SendPtr<S>(*mut S);

impl<S> SendPtr<S> {
    /// The `i`-th element's address.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds of the allocation this pointer heads.
    unsafe fn at(&self, i: usize) -> *mut S {
        unsafe { self.0.add(i) }
    }
}

// SAFETY: disjoint-index access only (see SendPtr doc).
unsafe impl<S: Send> Send for SendPtr<S> {}
unsafe impl<S: Send> Sync for SendPtr<S> {}

/// The current submission, guarded by `Shared::job`. The task pointer
/// is lifetime-erased: `Inner::submit` blocks until every task has run
/// and clears it before returning, so workers never observe a dangling
/// closure.
struct JobSlot {
    epoch: u64,
    task: Option<&'static (dyn Fn(usize, usize) + Sync)>,
    shutdown: bool,
}

#[derive(Default)]
struct WorkerStat {
    busy_ns: AtomicU64,
    steals: AtomicU64,
    stolen_ns: AtomicU64,
}

struct Shared {
    job: Mutex<JobSlot>,
    job_cv: Condvar,
    /// Per-worker deques: the owner pops from the front, thieves steal
    /// from the back.
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Overflow/remainder queue any worker may take from (not a steal).
    injector: Mutex<VecDeque<usize>>,
    /// Tasks of the current submission not yet completed.
    pending: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
    stats: Vec<WorkerStat>,
}

struct Inner {
    shared: Arc<Shared>,
    /// Serializes submissions: the distribution/stat-reset protocol
    /// assumes one job in flight.
    submit_lock: Mutex<()>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl Inner {
    fn spawn(threads: usize) -> Inner {
        let shared = Arc::new(Shared {
            job: Mutex::new(JobSlot {
                epoch: 0,
                task: None,
                shutdown: false,
            }),
            job_cv: Condvar::new(),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            stats: (0..threads).map(|_| WorkerStat::default()).collect(),
        });
        let handles = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("vdap-steal-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Inner {
            shared,
            submit_lock: Mutex::new(()),
            handles,
        }
    }

    fn submit(&self, n: usize, task: &(dyn Fn(usize, usize) + Sync)) -> Vec<WorkerSample> {
        let _serial = self.submit_lock.lock().expect("pool submit lock");
        let shared = &self.shared;
        let threads = shared.deques.len();
        {
            // All setup happens under the job lock: a worker that claims
            // a task from a refilled deque must take this lock to read
            // the closure, so it cannot run ahead of the installation.
            let mut job = shared.job.lock().expect("pool job lock");
            for stat in &shared.stats {
                stat.busy_ns.store(0, Ordering::Relaxed);
                stat.steals.store(0, Ordering::Relaxed);
                stat.stolen_ns.store(0, Ordering::Relaxed);
            }
            shared.pending.store(n, Ordering::Release);
            let chunk = n / threads;
            for (w, deque) in shared.deques.iter().enumerate() {
                deque
                    .lock()
                    .expect("pool deque lock")
                    .extend(w * chunk..(w + 1) * chunk);
            }
            shared
                .injector
                .lock()
                .expect("pool injector lock")
                .extend(threads * chunk..n);
            job.epoch += 1;
            // SAFETY: lifetime erasure — this reference is cleared
            // below before `submit` returns, and `submit` only returns
            // once `pending` hit zero, i.e. after the last use.
            job.task = Some(unsafe {
                std::mem::transmute::<
                    &(dyn Fn(usize, usize) + Sync),
                    &'static (dyn Fn(usize, usize) + Sync),
                >(task)
            });
            shared.job_cv.notify_all();
        }
        {
            let mut guard = shared.done.lock().expect("pool done lock");
            while shared.pending.load(Ordering::Acquire) > 0 {
                guard = shared.done_cv.wait(guard).expect("pool done wait");
            }
        }
        shared.job.lock().expect("pool job lock").task = None;
        shared
            .stats
            .iter()
            .map(|stat| WorkerSample {
                busy: Duration::from_nanos(stat.busy_ns.load(Ordering::Relaxed)),
                steals: stat.steals.load(Ordering::Relaxed),
                stolen: Duration::from_nanos(stat.stolen_ns.load(Ordering::Relaxed)),
            })
            .collect()
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        {
            let mut job = self.shared.job.lock().expect("pool job lock");
            job.shutdown = true;
            self.shared.job_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Claims one task index for worker `w`: own deque front, then the
/// injector, then a steal from the back of a sibling's deque. Returns
/// `(index, was_stolen)`.
fn claim(w: usize, shared: &Shared) -> Option<(usize, bool)> {
    if let Some(i) = shared.deques[w]
        .lock()
        .expect("pool deque lock")
        .pop_front()
    {
        return Some((i, false));
    }
    if let Some(i) = shared
        .injector
        .lock()
        .expect("pool injector lock")
        .pop_front()
    {
        return Some((i, false));
    }
    let threads = shared.deques.len();
    for k in 1..threads {
        let victim = (w + k) % threads;
        if let Some(i) = shared.deques[victim]
            .lock()
            .expect("pool deque lock")
            .pop_back()
        {
            return Some((i, true));
        }
    }
    None
}

fn worker_loop(w: usize, shared: &Shared) {
    let mut last_epoch = 0u64;
    loop {
        {
            let mut job = shared.job.lock().expect("pool job lock");
            while job.epoch == last_epoch && !job.shutdown {
                job = shared.job_cv.wait(job).expect("pool job wait");
            }
            if job.shutdown {
                return;
            }
            last_epoch = job.epoch;
        }
        while let Some((i, was_stolen)) = claim(w, shared) {
            // Re-read the closure under the lock: a claimed task pins
            // `pending > 0`, so the job it belongs to cannot be
            // replaced (or its closure cleared) before we run it.
            let task = shared
                .job
                .lock()
                .expect("pool job lock")
                .task
                .expect("claimed task implies an installed job");
            let started = Instant::now();
            task(w, i);
            let elapsed = started.elapsed().as_nanos() as u64;
            let stat = &shared.stats[w];
            stat.busy_ns.fetch_add(elapsed, Ordering::Relaxed);
            if was_stolen {
                stat.steals.fetch_add(1, Ordering::Relaxed);
                stat.stolen_ns.fetch_add(elapsed, Ordering::Relaxed);
            }
            if shared.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = shared.done.lock().expect("pool done lock");
                shared.done_cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let pool = WorkerPool::new(3);
        let out = pool.map((0..100u32).collect(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn map_handles_fewer_inputs_than_workers() {
        let pool = WorkerPool::new(16);
        assert_eq!(pool.map(vec![7u8], |x| x + 1), vec![8]);
        assert_eq!(pool.map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let pool = WorkerPool::new(4);
        let mut items = vec![0u32; 50];
        pool.for_each_mut(&mut items, |i, x| *x += i as u32 + 1);
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, i as u32 + 1);
        }
    }

    #[test]
    fn pool_size_is_clamped() {
        assert!(WorkerPool::new(0).threads() >= 1);
        let hw = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert!(WorkerPool::new(usize::MAX).threads() <= hw);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.map(vec![1, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn workers_persist_across_submissions() {
        // Thousands of submissions on one pool: the old implementation
        // spawned a thread per worker per call; the persistent pool
        // must reuse its parked workers and stay correct throughout.
        let pool = WorkerPool::new(4);
        let mut items = vec![0u64; 64];
        for _ in 0..1000 {
            pool.for_each_mut(&mut items, |_, x| *x += 1);
        }
        assert!(items.iter().all(|&x| x == 1000));
    }

    #[test]
    fn samples_cover_every_worker_and_account_all_work() {
        let pool = WorkerPool::new(4);
        let mut items = vec![0u8; 32];
        let samples = pool.for_each_mut(&mut items, |_, x| {
            *x = 1;
            // Make the work long enough to register on the clock.
            std::hint::black_box((0..10_000u64).sum::<u64>());
        });
        if pool.threads() > 1 {
            assert_eq!(samples.len(), pool.threads());
        } else {
            assert_eq!(samples.len(), 1);
        }
        assert!(samples.iter().any(|s| s.busy > Duration::ZERO));
        // Stolen time is a subset of busy time, per worker.
        for s in &samples {
            assert!(s.stolen <= s.busy);
        }
    }

    #[test]
    fn uneven_items_get_stolen() {
        // One pathologically slow item pinned to worker 0's chunk: the
        // rest of worker 0's chunk should be stolen by idle siblings
        // (on a multi-core machine) — and regardless of stealing, every
        // item must be visited exactly once.
        let pool = WorkerPool::with_default_size();
        let mut items = vec![0u32; 256];
        let samples = pool.for_each_mut(&mut items, |i, x| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
            *x += 1;
        });
        assert!(items.iter().all(|&x| x == 1));
        if pool.threads() > 1 {
            let steals: u64 = samples.iter().map(|s| s.steals).sum();
            assert!(steals > 0, "no batch was stolen from the stalled worker");
        }
    }
}
