//! The shared XEdge deployment served at epoch barriers.
//!
//! All cross-vehicle coupling funnels through this single-threaded
//! server: at each barrier the engine hands it the canonical-sorted
//! global batch of requests, and the server applies per-tenant admission
//! control, per-(tenant, class) deficit round-robin fair queueing, a
//! load-dependent service time (the [`ContentionModel`] priced per
//! class), and per-region LTE bandwidth sharing. Because serving
//! consumes only globally-determined data in a canonical order, its
//! outputs are independent of how the fleet was sharded.
//!
//! ## Workload classes
//!
//! Every request carries a [`WorkloadClass`], and every stage of the
//! serving pass reads the class's [`ClassSpec`]: bytes on the wire,
//! work units charged in the fair queue (against a per-class quantum),
//! base service time (each class's queued share contributes its own
//! fraction to the contention load), deadline budget, and what rung 3
//! of the degradation ladder means for it.
//!
//! ## Elastic lane scaling
//!
//! When the config carries a [`vdap_edgeos::LanePolicy`], a
//! [`LaneScaler`] resizes the lane pool and the per-tenant admission
//! caps from the queue depth observed at the *previous* barrier —
//! observe at barrier `k`, actuate at barrier `k + 1`. Decisions are
//! integer functions of (lane count, queue depth), both of which are
//! globally determined, so elasticity composes with the N-shard vs
//! 1-shard byte-identity invariant. Grown lanes join round-robin
//! (`node = index % edge_nodes`, preserving the homing rule); shrinks
//! remove only *idle* tail lanes and never drop a node's last lane, so
//! a busy pool defers its shrink to a later barrier instead of
//! cancelling in-flight work.
//!
//! ## Edge-tier chaos and the degradation ladder
//!
//! The lane pool is partitioned across `edge_nodes` physical XEdge
//! nodes; each region is homed on node `region % edge_nodes`. Fault
//! state ([`vdap_fault::FaultKind::EdgeNodeCrash`],
//! [`vdap_fault::FaultKind::TenantQuotaFlap`],
//! [`vdap_fault::FaultKind::RegionHandoffStorm`]) is sampled only at
//! epoch barriers — the injector is a pure function of time — so chaos
//! lives entirely in this deterministic serving pass.
//!
//! A request hitting a fault walks a graceful-degradation ladder:
//!
//! 1. **Deadline-aware retry** ([`vdap_fault::retry_until_deadline`]):
//!    probe the crashed home node once per epoch until the request's
//!    *class* deadline budget runs out (a pBEAM round can ride out a
//!    crash a pedestrian-alert frame cannot).
//! 2. **Neighbor-region handoff**: re-register through the nearest
//!    region whose home node is healthy, paying the mobility handoff
//!    cost from [`vdap_net::CellularChannel`].
//! 3. **Local degraded execution, per class**: detection re-runs on the
//!    VCU at reduced accuracy, infotainment falls back to a lower-
//!    bitrate on-board decode (both charge degraded-mode seconds to the
//!    tenant), and a pBEAM training round is *skipped* — the vehicle
//!    pays only the re-planning penalty and training converges a round
//!    later.
//!
//! A node that crashes more than [`vdap_edgeos::CrashLoopPolicy`]
//! allows inside its window is declared crash-looping and stays down
//! for the rest of the run.

use std::collections::BTreeMap;

use vdap_edgeos::{
    ClassQueueKey, CrashLoopPolicy, FairQueue, LaneDecision, LaneScaler, TenantAdmission, TenantId,
    WorkloadClass,
};
use vdap_fault::{retry_until_deadline, AttemptOutcome, FaultInjector, RetryPolicy};
use vdap_net::{CellularChannel, Direction, LinkSpec, Mph};
use vdap_offload::ContentionModel;
use vdap_sim::{RngStream, SimDuration, SimTime};

use crate::config::{
    edge_node_label, handoff_label, region_label, tenant_label, ClassSpec, FleetConfig,
};
use crate::vehicle::{DEGRADED_BOARD_W, RADIO_W, SPEED_MPH};

/// One vehicle request bound for the shared edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct EdgeRequest {
    pub vehicle: u32,
    pub seq: u32,
    pub tenant: u32,
    pub region: u32,
    pub class: WorkloadClass,
    pub arrival: SimTime,
    /// Serving attempts so far (0 = never assigned a lane). Bumped when
    /// a node crash re-queues the request.
    pub attempts: u32,
    /// Mobility handoff debt the vehicle accrued at region crossings
    /// since its last request, charged as extra latency and radio
    /// energy when this request is served (zero with mobility off).
    pub handoff: SimDuration,
}

/// A request the edge finished serving, with vehicle-side accounting
/// and the lifecycle stamps telemetry spans are built from.
#[derive(Debug, Clone)]
pub(crate) struct ServedRequest {
    pub vehicle: u32,
    pub seq: u32,
    pub tenant: u32,
    pub region: u32,
    pub class: WorkloadClass,
    /// Work units charged in the fair queue (the tenant ledger entry).
    pub work: u64,
    pub arrival: SimTime,
    /// The barrier whose serving pass placed the request (admit stamp).
    pub admitted: SimTime,
    /// When the request began occupying a lane (or the reconstructed
    /// start of a successful rung-1 retry).
    pub serve_start: SimTime,
    pub e2e: SimDuration,
    pub energy_j: f64,
    /// Rung-1 retry probes spent before this request was served.
    pub retries: u32,
    /// Times the request was re-queued off a crashed lane.
    pub requeues: u32,
    /// Whether rung 2 served it through a neighbor region's node.
    pub handoff: bool,
}

/// A request bounced at the admission gate under nominal quotas (its
/// uplink time was already spent discovering that).
#[derive(Debug, Clone)]
pub(crate) struct RejectedRequest {
    pub vehicle: u32,
    pub seq: u32,
    pub tenant: u32,
    pub region: u32,
    pub class: WorkloadClass,
    pub arrival: SimTime,
    pub uplink: SimDuration,
}

/// A request that fell to the bottom ladder rung. What that means is
/// class-specific: degraded on-VCU execution for detection, a lower-
/// bitrate local decode for infotainment, a skipped round for pBEAM
/// training (`degraded` is zero and the round simply doesn't happen).
#[derive(Debug, Clone)]
pub(crate) struct LocalFallback {
    pub vehicle: u32,
    pub seq: u32,
    pub tenant: u32,
    pub region: u32,
    pub class: WorkloadClass,
    pub arrival: SimTime,
    /// The barrier (or run horizon) at which the ladder resolved it.
    pub decided: SimTime,
    pub e2e: SimDuration,
    pub energy_j: f64,
    /// Degraded-mode serving time charged to the tenant.
    pub degraded: SimDuration,
    /// Rung-1 retry probes spent before falling through.
    pub retries: u32,
    /// Times the request was re-queued off a crashed lane.
    pub requeues: u32,
}

/// What one barrier's serving pass produced.
#[derive(Debug, Default)]
pub(crate) struct EpochOutcome {
    pub served: Vec<ServedRequest>,
    pub rejected: Vec<RejectedRequest>,
    pub local_fallbacks: Vec<LocalFallback>,
    pub queue_depth: usize,
    /// Lane-pool size after this barrier's elastic step.
    pub lanes: u32,
    /// Whether the elastic step grew the pool at this barrier.
    pub scaled_up: bool,
    /// Whether the elastic step shrank the pool at this barrier.
    pub scaled_down: bool,
    /// In-flight requests re-queued off crashed lanes this barrier.
    pub requeued: u64,
    /// Retry attempts spent on ladder rung 1.
    pub retry_attempts: u64,
    /// Requests rescued by rung-1 retry (sub-count of `served`).
    pub retry_rescued: u64,
    /// Rung-1 retries that exhausted their deadline budget.
    pub retry_exhausted: u64,
    /// Requests served through a neighbor region's node (rung 2,
    /// sub-count of `served`).
    pub handoffs: u64,
}

/// One lane of one physical XEdge node.
#[derive(Debug, Clone)]
struct Lane {
    node: u32,
    free: SimTime,
}

/// A request occupying a lane until `finish`.
#[derive(Debug, Clone)]
struct InFlight {
    finish: SimTime,
    node: u32,
    served: ServedRequest,
    req: EdgeRequest,
}

/// The shared multi-tenant XEdge deployment.
#[derive(Debug)]
pub(crate) struct XEdgeServer {
    /// Lanes persist across epochs so backlog carries over; lane `i`
    /// belongs to node `i % edge_nodes` (grown lanes keep the rule by
    /// joining round-robin).
    lanes: Vec<Lane>,
    /// Requests currently occupying lanes, completion-pending.
    in_flight: Vec<InFlight>,
    /// Requests stripped off crashed lanes, awaiting the next pass.
    requeued: Vec<EdgeRequest>,
    /// Whether each node was down at the previous barrier.
    node_down: Vec<bool>,
    /// Barrier instants at which each node crashed (windowed).
    crash_history: Vec<Vec<SimTime>>,
    /// Nodes declared crash-looping: down for the rest of the run.
    crash_looped: Vec<bool>,
    crash_policy: CrashLoopPolicy,
    contention: ContentionModel,
    admission: TenantAdmission,
    /// Per-region admission gates, `Some` iff geo-mobility is on: a
    /// request admits through its *current* region's gate and crossings
    /// re-register the vehicle's tenant at the destination, so rush-hour
    /// convergence on downtown regions produces organic admission
    /// pressure with zero injected faults. `None` keeps the single
    /// global gate and byte-identical legacy behavior.
    region_admission: Option<Vec<TenantAdmission>>,
    lte: LinkSpec,
    /// Per-handoff connectivity gap at fleet cruising speed.
    handoff_cost: SimDuration,
    epoch: SimDuration,
    /// Per-class cost models, indexed by [`WorkloadClass::index`].
    classes: [ClassSpec; 3],
    /// Pre-built (flow key, quantum) table applied to each epoch's
    /// fair queue (only classes with a non-zero weight serve).
    class_quanta: Vec<(ClassQueueKey, u64)>,
    /// Elastic lane controller; `None` keeps the pool statically sized.
    scaler: Option<LaneScaler>,
    /// Queue depth observed at the previous barrier (the elastic
    /// controller's input — observe at `k`, actuate at `k + 1`).
    last_depth: usize,
    nominal_lanes: u32,
    edge_nodes: u32,
    regions: u32,
    tenants: u32,
    nominal_cap: usize,
    failover_penalty: SimDuration,
    /// Cached fault-target labels, indexed by id.
    node_labels: Vec<String>,
    region_labels: Vec<String>,
    handoff_labels: Vec<String>,
    tenant_labels: Vec<String>,
}

impl XEdgeServer {
    pub fn new(cfg: &FleetConfig) -> Self {
        let nodes = cfg.edge_nodes.max(1);
        let capacity = cfg.edge_capacity.max(1);
        let lanes = (0..capacity)
            .map(|i| Lane {
                node: i % nodes,
                free: SimTime::ZERO,
            })
            .collect();
        let mut class_quanta = Vec::new();
        for t in 0..cfg.tenants {
            for class in WorkloadClass::ALL {
                let spec = cfg.class(class);
                if spec.weight > 0 && spec.drr_quantum > 0 {
                    class_quanta.push((
                        ClassQueueKey::new(TenantId::new(t), class),
                        spec.drr_quantum,
                    ));
                }
            }
        }
        XEdgeServer {
            lanes,
            in_flight: Vec::new(),
            requeued: Vec::new(),
            node_down: vec![false; nodes as usize],
            crash_history: vec![Vec::new(); nodes as usize],
            crash_looped: vec![false; nodes as usize],
            crash_policy: CrashLoopPolicy::new(SimDuration::from_secs(30), 3),
            contention: ContentionModel::new(capacity),
            admission: TenantAdmission::new(cfg.tenant_queue_cap),
            region_admission: cfg.mobility.as_ref().map(|_| {
                let mut gates: Vec<TenantAdmission> = (0..cfg.regions)
                    .map(|_| TenantAdmission::new(cfg.tenant_queue_cap))
                    .collect();
                for id in 0..cfg.vehicles {
                    gates[cfg.region_of(id) as usize].register(TenantId::new(cfg.tenant_of(id)));
                }
                gates
            }),
            lte: LinkSpec::lte(),
            handoff_cost: CellularChannel::calibrated().handoff_cost(Mph(SPEED_MPH)),
            epoch: cfg.epoch,
            classes: cfg.classes.clone(),
            class_quanta,
            scaler: cfg.elastic.map(LaneScaler::new),
            last_depth: 0,
            nominal_lanes: capacity,
            edge_nodes: nodes,
            regions: cfg.regions,
            tenants: cfg.tenants,
            nominal_cap: cfg.tenant_queue_cap,
            failover_penalty: cfg.failover_penalty,
            node_labels: (0..nodes).map(edge_node_label).collect(),
            region_labels: (0..cfg.regions).map(region_label).collect(),
            handoff_labels: (0..cfg.regions).map(handoff_label).collect(),
            tenant_labels: (0..cfg.tenants).map(tenant_label).collect(),
        }
    }

    /// Requests offered to the admission gate(s) so far.
    pub fn offered(&self) -> u64 {
        match &self.region_admission {
            Some(gates) => gates.iter().map(|g| g.admitted() + g.rejected()).sum(),
            None => self.admission.admitted() + self.admission.rejected(),
        }
    }

    /// Requests rejected by the admission gate(s) so far.
    pub fn rejected(&self) -> u64 {
        match &self.region_admission {
            Some(gates) => gates.iter().map(TenantAdmission::rejected).sum(),
            None => self.admission.rejected(),
        }
    }

    /// Re-registers a migrating vehicle's tenant: deregistered at the
    /// source region's gate, registered at the destination's. No-op
    /// with mobility off.
    pub fn reregister(&mut self, tenant: u32, from: u32, to: u32) {
        if let Some(gates) = &mut self.region_admission {
            let t = TenantId::new(tenant);
            gates[from as usize].deregister(t);
            gates[to as usize].register(t);
        }
    }

    /// Vehicles registered with `region`'s gate across all tenants
    /// (`None` with mobility off).
    pub fn region_registered(&self, region: u32) -> Option<u32> {
        self.region_admission
            .as_ref()
            .map(|g| g[region as usize].registered_total())
    }

    /// Admission counters `(offered, rejected)` for one region's gate
    /// (`None` with mobility off).
    pub fn region_admission_stats(&self, region: u32) -> Option<(u64, u64)> {
        self.region_admission.as_ref().map(|g| {
            let gate = &g[region as usize];
            (gate.admitted() + gate.rejected(), gate.rejected())
        })
    }

    /// The per-region admission table for the run report: one
    /// [`RegionAdmission`] per region (`None` with mobility off).
    pub fn region_admission_table(&self) -> Option<Vec<crate::metrics::RegionAdmission>> {
        let gates = self.region_admission.as_ref()?;
        Some(
            (0..gates.len() as u32)
                .map(|r| crate::metrics::RegionAdmission {
                    registered: self.region_registered(r).expect("gates present"),
                    offered: self.region_admission_stats(r).expect("gates present").0,
                    rejected: self.region_admission_stats(r).expect("gates present").1,
                })
                .collect(),
        )
    }

    /// The physical node serving `region`'s traffic.
    fn home_node(&self, region: u32) -> u32 {
        region % self.edge_nodes
    }

    /// Whether `node` is unusable at `barrier` (crashed or looping).
    fn node_unavailable(
        &self,
        injector: Option<&FaultInjector>,
        node: u32,
        barrier: SimTime,
    ) -> bool {
        self.crash_looped[node as usize]
            || injector.is_some_and(|inj| inj.is_down(&self.node_labels[node as usize], barrier))
    }

    /// The per-vehicle share of a region's LTE cell given the average
    /// uplink concurrency (in transfer-seconds) this epoch's batch
    /// implies for the region.
    fn region_link(&self, uplink_secs: f64) -> LinkSpec {
        let concurrency = (uplink_secs / self.epoch.as_secs_f64()).ceil();
        self.lte.shared_among(concurrency.max(1.0) as u32)
    }

    /// Earliest-free lane of `node` (lowest index breaks ties).
    fn best_lane(&self, node: u32) -> usize {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| l.node == node)
            .min_by_key(|(i, l)| (l.free, *i))
            .map(|(i, _)| i)
            .expect("every node owns at least one lane")
    }

    /// Runs the elastic step at `barrier`: one [`LaneScaler`] decision
    /// from the previous barrier's queue depth, applied to the lane
    /// pool, the contention capacity, and the per-tenant admission cap.
    /// Records what happened into `outcome`.
    fn scale_capacity(&mut self, barrier: SimTime, outcome: &mut EpochOutcome) {
        let Some(mut scaler) = self.scaler.take() else {
            return;
        };
        let decision = scaler.decide(self.lanes.len() as u32, self.last_depth);
        // Never drop below one lane per node: the homing rule (and
        // `best_lane`) requires every node to keep a lane.
        let target = decision.lanes().max(self.edge_nodes) as usize;
        match decision {
            LaneDecision::Grow(_) => {
                while self.lanes.len() < target {
                    let node = (self.lanes.len() as u32) % self.edge_nodes;
                    self.lanes.push(Lane {
                        node,
                        free: barrier,
                    });
                }
                outcome.scaled_up = true;
            }
            LaneDecision::Shrink(_) => {
                // Remove idle tail lanes only; a busy tail defers the
                // shrink to a later barrier rather than cancelling
                // in-flight work.
                let mut removed = false;
                while self.lanes.len() > target
                    && self.lanes.last().is_some_and(|l| l.free <= barrier)
                {
                    self.lanes.pop();
                    removed = true;
                }
                outcome.scaled_down = removed;
            }
            LaneDecision::Hold(_) => {}
        }
        let lanes = self.lanes.len() as u32;
        self.contention = self.contention.resized(lanes);
        let cap = scaler.tenant_cap(self.nominal_cap, self.nominal_lanes, lanes);
        self.admission.set_queue_cap(cap);
        if let Some(gates) = &mut self.region_admission {
            for gate in gates {
                gate.set_queue_cap(cap);
            }
        }
        self.scaler = Some(scaler);
    }

    /// Refreshes node health at `barrier`: detects up→down edges,
    /// strips in-flight work off crashed lanes into the requeue buffer,
    /// and applies the crash-loop policy.
    fn refresh_nodes(&mut self, injector: Option<&FaultInjector>, barrier: SimTime) -> u64 {
        let mut requeued = 0u64;
        for node in 0..self.edge_nodes {
            let idx = node as usize;
            let down = self.node_unavailable(injector, node, barrier);
            if down && !self.node_down[idx] {
                // Fresh crash at this barrier: in-flight work on the
                // node's lanes is lost and must be re-queued; the lane
                // pool restarts cold on recovery.
                let mut kept = Vec::with_capacity(self.in_flight.len());
                for inf in self.in_flight.drain(..) {
                    if inf.node == node && inf.finish > barrier {
                        let mut req = inf.req;
                        req.attempts += 1;
                        requeued += 1;
                        self.requeued.push(req);
                    } else {
                        kept.push(inf);
                    }
                }
                self.in_flight = kept;
                for lane in self.lanes.iter_mut().filter(|l| l.node == node) {
                    lane.free = barrier;
                }
                if !self.crash_looped[idx] {
                    let (_, looping) = self
                        .crash_policy
                        .observe(&mut self.crash_history[idx], barrier);
                    if looping {
                        self.crash_looped[idx] = true;
                    }
                }
            }
            self.node_down[idx] = down;
        }
        requeued
    }

    /// Pops completions (`finish <= barrier`) into `outcome.served`.
    fn emit_completions(&mut self, barrier: SimTime, outcome: &mut EpochOutcome) {
        let mut kept = Vec::with_capacity(self.in_flight.len());
        for inf in self.in_flight.drain(..) {
            if inf.finish <= barrier {
                outcome.served.push(inf.served);
            } else {
                kept.push(inf);
            }
        }
        self.in_flight = kept;
    }

    /// Syncs per-tenant admission caps with the quota-flap state at
    /// `barrier`: an active flap shrinks the cap to
    /// `max(1, floor(current × factor))` of the (possibly elastically
    /// scaled) base cap.
    fn refresh_quotas(&mut self, injector: Option<&FaultInjector>, barrier: SimTime) {
        let Some(inj) = injector else { return };
        let base_cap = self.admission.queue_cap();
        for t in 0..self.tenants {
            let factor = inj.quota_factor(&self.tenant_labels[t as usize], barrier);
            let tenant = TenantId::new(t);
            let flap_cap =
                (factor < 1.0).then(|| ((base_cap as f64 * factor).floor() as usize).max(1));
            // The global gate mirrors the override even under mobility
            // so `tenant_flapped` has one place to look.
            match flap_cap {
                Some(cap) => self.admission.set_cap_override(tenant, cap),
                None => self.admission.clear_cap_override(tenant),
            }
            if let Some(gates) = &mut self.region_admission {
                for gate in gates.iter_mut() {
                    match flap_cap {
                        Some(cap) => gate.set_cap_override(tenant, cap),
                        None => gate.clear_cap_override(tenant),
                    }
                }
            }
        }
    }

    /// Whether `tenant`'s quota is currently flapped (a cap override is
    /// in force — the elastic base cap is not a flap).
    fn tenant_flapped(&self, tenant: u32) -> bool {
        let t = TenantId::new(tenant);
        self.admission.effective_cap(t) != self.admission.queue_cap()
    }

    /// Rung 3, per class: degraded on-VCU execution for detection, a
    /// lower-bitrate local decode for infotainment, a *skipped round*
    /// for pBEAM training (only the re-planning penalty is paid; no
    /// degraded seconds accrue, the round just doesn't happen).
    fn local_fallback(&self, req: &EdgeRequest, decided: SimTime, retries: u32) -> LocalFallback {
        let spec = &self.classes[req.class.index()];
        let (e2e, energy_j, degraded) = match req.class {
            WorkloadClass::PbeamTraining => (self.failover_penalty, 0.0, SimDuration::ZERO),
            _ => {
                let service = spec.vehicle_service.mul_f64(spec.degraded_service_factor);
                (
                    self.failover_penalty + service,
                    service.as_secs_f64() * DEGRADED_BOARD_W,
                    service,
                )
            }
        };
        LocalFallback {
            vehicle: req.vehicle,
            seq: req.seq,
            tenant: req.tenant,
            region: req.region,
            class: req.class,
            arrival: req.arrival,
            decided,
            e2e: e2e + req.handoff,
            energy_j: energy_j + req.handoff.as_secs_f64() * RADIO_W,
            degraded,
            retries,
            requeues: req.attempts,
        }
    }

    /// Rung 1: probe the crashed home node once per epoch under the
    /// request's remaining *class* deadline budget. Returns the rescued
    /// [`ServedRequest`] and the attempt count, or the attempts spent
    /// when the budget ran dry.
    #[allow(clippy::too_many_arguments)]
    fn retry_rescue(
        &self,
        injector: &FaultInjector,
        req: &EdgeRequest,
        node: u32,
        barrier: SimTime,
        up: SimDuration,
        down: SimDuration,
        service: SimDuration,
        rng: &mut RngStream,
    ) -> Result<(ServedRequest, u32), u32> {
        let spec = &self.classes[req.class.index()];
        let elapsed = barrier.duration_since(req.arrival);
        if elapsed >= spec.deadline {
            return Err(0);
        }
        let budget = spec.deadline - elapsed;
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: self.epoch,
            backoff_factor: 1.0,
            jitter: 0.0,
            attempt_timeout: None,
        };
        let label = &self.node_labels[node as usize];
        let report = retry_until_deadline(&policy, barrier, budget, rng, |_, at| {
            if self.crash_looped[node as usize] || injector.is_down(label, at) {
                // The probe burns an epoch discovering the node is
                // still gone.
                AttemptOutcome::Failure(self.epoch)
            } else {
                AttemptOutcome::Success(up + service + down)
            }
        });
        if report.succeeded() {
            let e2e = report.finished_at.duration_since(req.arrival) + req.handoff;
            let energy_j =
                (up.as_secs_f64() + down.as_secs_f64() + req.handoff.as_secs_f64()) * RADIO_W;
            Ok((
                ServedRequest {
                    vehicle: req.vehicle,
                    seq: req.seq,
                    tenant: req.tenant,
                    region: req.region,
                    class: req.class,
                    work: spec.work_units,
                    arrival: req.arrival,
                    admitted: barrier,
                    // The successful probe finished at `finished_at`;
                    // service began one downlink + service time before.
                    serve_start: report.finished_at - (service + down),
                    e2e,
                    energy_j,
                    retries: report.attempts,
                    requeues: req.attempts,
                    handoff: false,
                },
                report.attempts,
            ))
        } else {
            Err(report.attempts)
        }
    }

    /// Rung 2: the nearest region whose home node is healthy and whose
    /// cell is neither storming nor in LTE outage at `barrier`.
    fn failover_region(
        &self,
        injector: Option<&FaultInjector>,
        region: u32,
        barrier: SimTime,
    ) -> Option<u32> {
        // With mobility on, storms price crossings instead of gating
        // the serving path (see `serve_epoch`).
        let storms_gate_serving = self.region_admission.is_none();
        (1..self.regions)
            .map(|d| (region + d) % self.regions)
            .find(|&nr| {
                let node = self.home_node(nr);
                !self.node_unavailable(injector, node, barrier)
                    && !injector.is_some_and(|inj| {
                        (storms_gate_serving
                            && inj.handoff_storm(&self.handoff_labels[nr as usize], barrier))
                            || inj.is_down(&self.region_labels[nr as usize], barrier)
                    })
            })
    }

    /// Assigns `req` to the earliest-free lane of `node`; the request
    /// occupies the lane until `finish` and completes at a later
    /// barrier. `extra_latency` is added to the end-to-end latency
    /// (handoff cost on rung 2). `barrier` stamps the span's admit
    /// time; `retries`/`handoff` record the ladder detours taken before
    /// the lane was found.
    #[allow(clippy::too_many_arguments)]
    fn assign_lane(
        &mut self,
        req: EdgeRequest,
        node: u32,
        up: SimDuration,
        down: SimDuration,
        service: SimDuration,
        extra_latency: SimDuration,
        extra_energy: f64,
        barrier: SimTime,
        retries: u32,
        handoff: bool,
    ) {
        let ready = req.arrival + up + extra_latency;
        let lane = self.best_lane(node);
        let free = self.lanes[lane].free;
        let start = if ready > free { ready } else { free };
        let finish = start + service;
        self.lanes[lane].free = finish;
        let e2e = finish.duration_since(req.arrival) + down;
        let energy_j = (up.as_secs_f64() + down.as_secs_f64()) * RADIO_W + extra_energy;
        let work = self.classes[req.class.index()].work_units;
        self.in_flight.push(InFlight {
            finish,
            node,
            served: ServedRequest {
                vehicle: req.vehicle,
                seq: req.seq,
                tenant: req.tenant,
                region: req.region,
                class: req.class,
                work,
                arrival: req.arrival,
                admitted: barrier,
                serve_start: start,
                e2e,
                energy_j,
                retries,
                requeues: req.attempts,
                handoff,
            },
            req,
        });
    }

    /// Serves one barrier's batch. The engine passes requests from all
    /// shards; this method sorts them canonically, so input order (and
    /// therefore shard count) cannot influence the outcome. `barrier`
    /// is the global epoch-boundary instant — the only time at which
    /// fault state and elastic decisions are sampled — and `rng` is the
    /// engine-owned ladder stream, consumed in canonical order.
    pub fn serve_epoch(
        &mut self,
        mut batch: Vec<EdgeRequest>,
        barrier: SimTime,
        injector: Option<&FaultInjector>,
        rng: &mut RngStream,
    ) -> EpochOutcome {
        batch.sort_unstable_by_key(|r| (r.arrival, r.vehicle, r.seq));

        let mut outcome = EpochOutcome {
            requeued: self.refresh_nodes(injector, barrier),
            ..EpochOutcome::default()
        };
        self.emit_completions(barrier, &mut outcome);
        self.scale_capacity(barrier, &mut outcome);
        self.refresh_quotas(injector, barrier);

        // Per-region LTE sharing from this batch's uplink demand
        // (class-sized: a pBEAM gradient weighs more than a detection
        // frame). Summed in canonical batch order.
        let mut region_secs: BTreeMap<u32, f64> = BTreeMap::new();
        for r in &batch {
            let bytes = self.classes[r.class.index()].upload_bytes;
            let t = self.lte.transfer_time(Direction::Uplink, bytes);
            *region_secs.entry(r.region).or_insert(0.0) += t.as_secs_f64();
        }
        let region_links: BTreeMap<u32, LinkSpec> = region_secs
            .iter()
            .map(|(&r, &secs)| (r, self.region_link(secs)))
            .collect();
        let unshared = self.lte.clone();
        let link_for = move |region: u32| -> LinkSpec {
            region_links
                .get(&region)
                .cloned()
                .unwrap_or_else(|| unshared.clone())
        };

        // Admission (arrival order), then per-(tenant, class) DRR fair
        // queueing with class-sized quanta. Requests re-queued off
        // crashed lanes were admitted in an earlier epoch and re-enter
        // the queue without a second admission charge.
        let mut queue: FairQueue<EdgeRequest, ClassQueueKey> =
            FairQueue::new(self.classes[0].drr_quantum.max(1));
        for &(key, quantum) in &self.class_quanta {
            queue.set_quantum(key, quantum);
        }
        let mut queued_by_class = [0u64; 3];
        let mut admitted: Vec<(u32, TenantId)> = Vec::new();
        for req in std::mem::take(&mut self.requeued) {
            let spec = &self.classes[req.class.index()];
            if barrier.duration_since(req.arrival) >= spec.deadline {
                // Too stale to re-serve: straight to the bottom rung.
                outcome
                    .local_fallbacks
                    .push(self.local_fallback(&req, barrier, 0));
            } else {
                let key = ClassQueueKey::new(TenantId::new(req.tenant), req.class);
                queued_by_class[req.class.index()] += 1;
                queue.enqueue(key, spec.work_units, req);
            }
        }
        for req in batch {
            let tenant = TenantId::new(req.tenant);
            // With mobility on, the request admits through its current
            // region's gate — crossings concentrate vehicles, so the
            // destination gate feels the pressure.
            let admit = match &mut self.region_admission {
                Some(gates) => gates[req.region as usize].try_admit(tenant),
                None => self.admission.try_admit(tenant),
            };
            if admit {
                admitted.push((req.region, tenant));
                let spec = &self.classes[req.class.index()];
                queued_by_class[req.class.index()] += 1;
                queue.enqueue(ClassQueueKey::new(tenant, req.class), spec.work_units, req);
            } else if self.tenant_flapped(req.tenant) {
                // Quota flap: a fault, not load — bounced into the
                // degradation ladder's bottom rung.
                outcome
                    .local_fallbacks
                    .push(self.local_fallback(&req, barrier, 0));
            } else {
                let bytes = self.classes[req.class.index()].upload_bytes;
                let uplink = link_for(req.region).transfer_time(Direction::Uplink, bytes);
                outcome.rejected.push(RejectedRequest {
                    vehicle: req.vehicle,
                    seq: req.seq,
                    tenant: req.tenant,
                    region: req.region,
                    class: req.class,
                    arrival: req.arrival,
                    // The vehicle paid its crossing handoff debt before
                    // discovering the rejection.
                    uplink: uplink + req.handoff,
                });
            }
        }
        outcome.queue_depth = queue.len();
        self.last_depth = outcome.queue_depth;

        // Load-dependent service time: each class's queued share
        // contributes its own fractional concurrency
        // (`depth × service / epoch`), the shares sum into one load
        // figure, and the resulting multiplier stretches every class's
        // base service time.
        let implied: f64 = WorkloadClass::ALL
            .iter()
            .map(|c| {
                queued_by_class[c.index()] as f64
                    * self.classes[c.index()].edge_service.as_secs_f64()
            })
            .sum::<f64>()
            / self.epoch.as_secs_f64();
        let multiplier = self.contention.service_multiplier_f64(implied);
        let service_by_class: [SimDuration; 3] = [
            self.classes[0].edge_service.mul_f64(multiplier),
            self.classes[1].edge_service.mul_f64(multiplier),
            self.classes[2].edge_service.mul_f64(multiplier),
        ];

        // Serve in DRR order on the home node's earliest-free lane,
        // walking the degradation ladder when the home path is faulted.
        while let Some((_, req)) = queue.pop() {
            let ci = req.class.index();
            let link = link_for(req.region);
            let up = link.transfer_time(Direction::Uplink, self.classes[ci].upload_bytes);
            let down = link.transfer_time(Direction::Downlink, self.classes[ci].download_bytes);
            let service = service_by_class[ci];
            let home = self.home_node(req.region);
            let home_down = self.node_unavailable(injector, home, barrier);
            // With mobility on, a handoff storm prices the vehicle's
            // *crossings* (the engine's mobility pass multiplies the
            // handoff cost) instead of rerouting the serving path —
            // one accounting path, no double-counted handoff seconds.
            let storming = self.region_admission.is_none()
                && injector.is_some_and(|inj| {
                    inj.handoff_storm(&self.handoff_labels[req.region as usize], barrier)
                });

            if !home_down && !storming {
                let debt = req.handoff;
                let debt_energy = debt.as_secs_f64() * RADIO_W;
                self.assign_lane(
                    req,
                    home,
                    up,
                    down,
                    service,
                    debt,
                    debt_energy,
                    barrier,
                    0,
                    false,
                );
                continue;
            }

            // Rung 1 — deadline-aware retry (crashed home node only;
            // waiting out a handoff storm has unbounded cost).
            let mut retries_spent = 0u32;
            if home_down {
                if let Some(inj) = injector {
                    match self.retry_rescue(inj, &req, home, barrier, up, down, service, rng) {
                        Ok((served, attempts)) => {
                            outcome.retry_attempts += u64::from(attempts);
                            outcome.retry_rescued += 1;
                            outcome.served.push(served);
                            continue;
                        }
                        Err(attempts) => {
                            outcome.retry_attempts += u64::from(attempts);
                            outcome.retry_exhausted += 1;
                            retries_spent = attempts;
                        }
                    }
                }
            }

            // Rung 2 — hand off to the nearest healthy region's node.
            if let Some(neighbor) = self.failover_region(injector, req.region, barrier) {
                let node = self.home_node(neighbor);
                let handoff = self.handoff_cost + req.handoff;
                let handoff_energy = handoff.as_secs_f64() * RADIO_W;
                self.assign_lane(
                    req,
                    node,
                    up,
                    down,
                    service,
                    handoff,
                    handoff_energy,
                    barrier,
                    retries_spent,
                    true,
                );
                outcome.handoffs += 1;
                continue;
            }

            // Rung 3 — class-specific local fallback.
            outcome
                .local_fallbacks
                .push(self.local_fallback(&req, barrier, retries_spent));
        }

        // Served requests leave the admission gate before the next epoch.
        for (region, tenant) in admitted {
            match &mut self.region_admission {
                Some(gates) => gates[region as usize].release(tenant),
                None => self.admission.release(tenant),
            }
        }
        outcome.lanes = self.lanes.len() as u32;
        outcome
    }

    /// Drains everything still pending at the end of the run: in-flight
    /// work completes past the horizon (its latency is already fixed),
    /// and requests stranded in the requeue buffer take the class-
    /// specific local fallback, decided at `horizon`.
    pub fn flush(&mut self, horizon: SimTime) -> EpochOutcome {
        let mut outcome = EpochOutcome {
            lanes: self.lanes.len() as u32,
            ..EpochOutcome::default()
        };
        for inf in self.in_flight.drain(..) {
            outcome.served.push(inf.served);
        }
        for req in std::mem::take(&mut self.requeued) {
            outcome
                .local_fallbacks
                .push(self.local_fallback(&req, horizon, 0));
        }
        outcome
    }
}

// --- snapshot codec --------------------------------------------------

use crate::ckpt::{dur_field, enc_dur, enc_time, time_field, val_array, val_bool, val_u64_hex};
use vdap_ckpt::json::Value;
use vdap_ckpt::{
    f64_bits, get, get_array, get_bool, get_f64_bits, get_u32, get_u64_hex, obj, u64_hex, CkptError,
};

/// Decodes a workload class stored as its dense `ALL` index.
fn class_field(v: &Value, key: &str) -> Result<WorkloadClass, CkptError> {
    let idx = get_u32(v, key)? as usize;
    WorkloadClass::ALL
        .get(idx)
        .copied()
        .ok_or_else(|| CkptError::new(format!("workload class index {idx} out of range")))
}

fn enc_req(r: &EdgeRequest) -> Value {
    obj(vec![
        ("vehicle", Value::Number(f64::from(r.vehicle))),
        ("seq", Value::Number(f64::from(r.seq))),
        ("tenant", Value::Number(f64::from(r.tenant))),
        ("region", Value::Number(f64::from(r.region))),
        ("class", Value::Number(r.class.index() as f64)),
        ("arrival", enc_time(r.arrival)),
        ("attempts", Value::Number(f64::from(r.attempts))),
        ("handoff", enc_dur(r.handoff)),
    ])
}

fn dec_req(v: &Value) -> Result<EdgeRequest, CkptError> {
    Ok(EdgeRequest {
        vehicle: get_u32(v, "vehicle")?,
        seq: get_u32(v, "seq")?,
        tenant: get_u32(v, "tenant")?,
        region: get_u32(v, "region")?,
        class: class_field(v, "class")?,
        arrival: time_field(v, "arrival")?,
        attempts: get_u32(v, "attempts")?,
        handoff: dur_field(v, "handoff")?,
    })
}

fn enc_served(s: &ServedRequest) -> Value {
    obj(vec![
        ("vehicle", Value::Number(f64::from(s.vehicle))),
        ("seq", Value::Number(f64::from(s.seq))),
        ("tenant", Value::Number(f64::from(s.tenant))),
        ("region", Value::Number(f64::from(s.region))),
        ("class", Value::Number(s.class.index() as f64)),
        ("work", u64_hex(s.work)),
        ("arrival", enc_time(s.arrival)),
        ("admitted", enc_time(s.admitted)),
        ("serve_start", enc_time(s.serve_start)),
        ("e2e", enc_dur(s.e2e)),
        ("energy_j", f64_bits(s.energy_j)),
        ("retries", Value::Number(f64::from(s.retries))),
        ("requeues", Value::Number(f64::from(s.requeues))),
        ("handoff", Value::Bool(s.handoff)),
    ])
}

fn dec_served(v: &Value) -> Result<ServedRequest, CkptError> {
    Ok(ServedRequest {
        vehicle: get_u32(v, "vehicle")?,
        seq: get_u32(v, "seq")?,
        tenant: get_u32(v, "tenant")?,
        region: get_u32(v, "region")?,
        class: class_field(v, "class")?,
        work: get_u64_hex(v, "work")?,
        arrival: time_field(v, "arrival")?,
        admitted: time_field(v, "admitted")?,
        serve_start: time_field(v, "serve_start")?,
        e2e: dur_field(v, "e2e")?,
        energy_j: get_f64_bits(v, "energy_j")?,
        retries: get_u32(v, "retries")?,
        requeues: get_u32(v, "requeues")?,
        handoff: get_bool(v, "handoff")?,
    })
}

fn enc_admission(a: &TenantAdmission) -> Value {
    let s = a.state();
    let pairs = |entries: &[(u32, u64)]| -> Value {
        Value::Array(
            entries
                .iter()
                .map(|&(t, n)| Value::Array(vec![Value::Number(f64::from(t)), u64_hex(n)]))
                .collect(),
        )
    };
    obj(vec![
        ("queue_cap", u64_hex(s.queue_cap as u64)),
        (
            "cap_overrides",
            pairs(
                &s.cap_overrides
                    .iter()
                    .map(|&(t, c)| (t, c as u64))
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "depth",
            pairs(
                &s.depth
                    .iter()
                    .map(|&(t, d)| (t, d as u64))
                    .collect::<Vec<_>>(),
            ),
        ),
        ("admitted", u64_hex(s.admitted)),
        ("rejected", u64_hex(s.rejected)),
        ("rejected_by_tenant", pairs(&s.rejected_by_tenant)),
        (
            "registrations",
            pairs(
                &s.registrations
                    .iter()
                    .map(|&(t, n)| (t, u64::from(n)))
                    .collect::<Vec<_>>(),
            ),
        ),
    ])
}

fn dec_admission(v: &Value) -> Result<TenantAdmission, CkptError> {
    let pairs = |key: &str| -> Result<Vec<(u32, u64)>, CkptError> {
        let mut out = Vec::new();
        for p in get_array(v, key)? {
            let (t, n) = crate::ckpt::val_pair(p)?;
            out.push((crate::ckpt::val_u32(t)?, val_u64_hex(n)?));
        }
        Ok(out)
    };
    Ok(TenantAdmission::from_state(vdap_edgeos::AdmissionState {
        queue_cap: get_u64_hex(v, "queue_cap")? as usize,
        cap_overrides: pairs("cap_overrides")?
            .into_iter()
            .map(|(t, c)| (t, c as usize))
            .collect(),
        depth: pairs("depth")?
            .into_iter()
            .map(|(t, d)| (t, d as usize))
            .collect(),
        admitted: get_u64_hex(v, "admitted")?,
        rejected: get_u64_hex(v, "rejected")?,
        rejected_by_tenant: pairs("rejected_by_tenant")?,
        registrations: pairs("registrations")?
            .into_iter()
            .map(|(t, n)| {
                u32::try_from(n)
                    .map(|n| (t, n))
                    .map_err(|e| CkptError::new(format!("registration count: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?,
    }))
}

impl XEdgeServer {
    /// Serializes everything the serving pass carries across barriers:
    /// the (possibly elastically resized) lane pool, in-flight work,
    /// crash-requeued requests, node health and crash history, the
    /// admission gates, the elastic controller's counters, and the
    /// observe-at-`k`/actuate-at-`k+1` queue-depth latch. The rest of
    /// the server is a pure function of `FleetConfig` and is rebuilt on
    /// restore.
    pub(crate) fn ckpt(&self) -> Value {
        obj(vec![
            (
                "lanes",
                Value::Array(
                    self.lanes
                        .iter()
                        .map(|l| {
                            obj(vec![
                                ("node", Value::Number(f64::from(l.node))),
                                ("free", enc_time(l.free)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "in_flight",
                Value::Array(
                    self.in_flight
                        .iter()
                        .map(|f| {
                            obj(vec![
                                ("finish", enc_time(f.finish)),
                                ("node", Value::Number(f64::from(f.node))),
                                ("served", enc_served(&f.served)),
                                ("req", enc_req(&f.req)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "requeued",
                Value::Array(self.requeued.iter().map(enc_req).collect()),
            ),
            (
                "node_down",
                Value::Array(self.node_down.iter().map(|&b| Value::Bool(b)).collect()),
            ),
            (
                "crash_history",
                Value::Array(
                    self.crash_history
                        .iter()
                        .map(|h| Value::Array(h.iter().map(|&t| enc_time(t)).collect()))
                        .collect(),
                ),
            ),
            (
                "crash_looped",
                Value::Array(self.crash_looped.iter().map(|&b| Value::Bool(b)).collect()),
            ),
            ("admission", enc_admission(&self.admission)),
            (
                "region_admission",
                match &self.region_admission {
                    Some(gates) => Value::Array(gates.iter().map(enc_admission).collect()),
                    None => Value::Null,
                },
            ),
            (
                "scaler",
                match &self.scaler {
                    Some(s) => {
                        let (ups, downs) = s.counters();
                        obj(vec![
                            ("scale_ups", u64_hex(ups)),
                            ("scale_downs", u64_hex(downs)),
                        ])
                    }
                    None => Value::Null,
                },
            ),
            ("last_depth", u64_hex(self.last_depth as u64)),
        ])
    }

    /// Rebuilds the server from config (everything derivable) plus the
    /// serialized cross-barrier state.
    pub(crate) fn restore_ckpt(cfg: &FleetConfig, v: &Value) -> Result<XEdgeServer, CkptError> {
        let mut edge = XEdgeServer::new(cfg);
        let mut lanes = Vec::new();
        for l in get_array(v, "lanes")? {
            lanes.push(Lane {
                node: get_u32(l, "node")?,
                free: time_field(l, "free")?,
            });
        }
        if lanes.is_empty() {
            return Err(CkptError::new("snapshot has an empty lane pool"));
        }
        edge.contention = edge.contention.resized(lanes.len() as u32);
        edge.lanes = lanes;
        edge.in_flight = get_array(v, "in_flight")?
            .iter()
            .map(|f| {
                Ok(InFlight {
                    finish: time_field(f, "finish")?,
                    node: get_u32(f, "node")?,
                    served: dec_served(get(f, "served")?)?,
                    req: dec_req(get(f, "req")?)?,
                })
            })
            .collect::<Result<Vec<_>, CkptError>>()?;
        edge.requeued = get_array(v, "requeued")?
            .iter()
            .map(dec_req)
            .collect::<Result<Vec<_>, _>>()?;
        let node_down = get_array(v, "node_down")?
            .iter()
            .map(val_bool)
            .collect::<Result<Vec<_>, _>>()?;
        if node_down.len() != edge.node_down.len() {
            return Err(CkptError::new(format!(
                "snapshot has {} edge nodes, config has {}",
                node_down.len(),
                edge.node_down.len()
            )));
        }
        edge.node_down = node_down;
        let mut crash_history = Vec::new();
        for h in get_array(v, "crash_history")? {
            crash_history.push(
                val_array(h)?
                    .iter()
                    .map(|t| Ok(vdap_sim::SimTime::from_nanos(val_u64_hex(t)?)))
                    .collect::<Result<Vec<_>, CkptError>>()?,
            );
        }
        if crash_history.len() != edge.crash_history.len() {
            return Err(CkptError::new("crash history length mismatch"));
        }
        edge.crash_history = crash_history;
        let crash_looped = get_array(v, "crash_looped")?
            .iter()
            .map(val_bool)
            .collect::<Result<Vec<_>, _>>()?;
        if crash_looped.len() != edge.crash_looped.len() {
            return Err(CkptError::new("crash-loop table length mismatch"));
        }
        edge.crash_looped = crash_looped;
        edge.admission = dec_admission(get(v, "admission")?)?;
        edge.region_admission = match (get(v, "region_admission")?, cfg.mobility.as_ref()) {
            (Value::Null, None) => None,
            (Value::Array(gates), Some(_)) => Some(
                gates
                    .iter()
                    .map(dec_admission)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            _ => {
                return Err(CkptError::new(
                    "snapshot and config disagree on per-region admission",
                ))
            }
        };
        edge.scaler = match (get(v, "scaler")?, cfg.elastic) {
            (Value::Null, None) => None,
            (s, Some(policy)) => Some(LaneScaler::from_counters(
                policy,
                get_u64_hex(s, "scale_ups")?,
                get_u64_hex(s, "scale_downs")?,
            )),
            _ => {
                return Err(CkptError::new(
                    "snapshot and config disagree on elastic capacity",
                ))
            }
        };
        edge.last_depth = get_u64_hex(v, "last_depth")? as usize;
        Ok(edge)
    }
}
