//! The shared XEdge deployment served at epoch barriers.
//!
//! All cross-vehicle coupling funnels through this single-threaded
//! server: at each barrier the engine hands it the canonical-sorted
//! global batch of requests, and the server applies per-tenant admission
//! control, deficit round-robin fair queueing, a load-dependent service
//! time (the [`ContentionModel`]), and per-region LTE bandwidth sharing.
//! Because serving consumes only globally-determined data in a canonical
//! order, its outputs are independent of how the fleet was sharded.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use vdap_edgeos::{FairQueue, TenantAdmission, TenantId};
use vdap_net::{Direction, LinkSpec};
use vdap_offload::ContentionModel;
use vdap_sim::{SimDuration, SimTime};

use crate::config::FleetConfig;
use crate::vehicle::RADIO_W;

/// One vehicle request bound for the shared edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct EdgeRequest {
    pub vehicle: u32,
    pub seq: u32,
    pub tenant: u32,
    pub region: u32,
    pub arrival: SimTime,
}

/// A request the edge finished serving, with vehicle-side accounting.
#[derive(Debug, Clone)]
pub(crate) struct ServedRequest {
    pub e2e: SimDuration,
    pub energy_j: f64,
}

/// A request bounced at the admission gate (its uplink time was already
/// spent discovering that).
#[derive(Debug, Clone)]
pub(crate) struct RejectedRequest {
    pub uplink: SimDuration,
}

/// What one barrier's serving pass produced.
#[derive(Debug, Default)]
pub(crate) struct EpochOutcome {
    pub served: Vec<ServedRequest>,
    pub rejected: Vec<RejectedRequest>,
    pub queue_depth: usize,
}

/// The shared multi-tenant XEdge deployment.
#[derive(Debug)]
pub(crate) struct XEdgeServer {
    /// Per-lane next-free instants; lanes persist across epochs so
    /// backlog carries over.
    lanes: BinaryHeap<Reverse<SimTime>>,
    contention: ContentionModel,
    admission: TenantAdmission,
    lte: LinkSpec,
    epoch: SimDuration,
    base_service: SimDuration,
    drr_quantum: u64,
    work_units: u64,
    upload_bytes: u64,
    download_bytes: u64,
}

impl XEdgeServer {
    pub fn new(cfg: &FleetConfig) -> Self {
        let mut lanes = BinaryHeap::with_capacity(cfg.edge_capacity as usize);
        for _ in 0..cfg.edge_capacity.max(1) {
            lanes.push(Reverse(SimTime::ZERO));
        }
        XEdgeServer {
            lanes,
            contention: ContentionModel::new(cfg.edge_capacity.max(1)),
            admission: TenantAdmission::new(cfg.tenant_queue_cap),
            lte: LinkSpec::lte(),
            epoch: cfg.epoch,
            base_service: cfg.edge_service,
            drr_quantum: cfg.drr_quantum,
            work_units: cfg.work_units,
            upload_bytes: cfg.upload_bytes,
            download_bytes: cfg.download_bytes,
        }
    }

    /// Requests offered to the admission gate so far.
    pub fn offered(&self) -> u64 {
        self.admission.admitted() + self.admission.rejected()
    }

    /// Requests rejected by the admission gate so far.
    pub fn rejected(&self) -> u64 {
        self.admission.rejected()
    }

    /// The per-vehicle share of a region's LTE cell given the average
    /// transfer concurrency implied by this epoch's batch.
    fn region_link(&self, region_count: u32) -> LinkSpec {
        let t0 = self.lte.transfer_time(Direction::Uplink, self.upload_bytes);
        let concurrency =
            (f64::from(region_count) * t0.as_secs_f64() / self.epoch.as_secs_f64()).ceil();
        self.lte.shared_among(concurrency.max(1.0) as u32)
    }

    /// Serves one barrier's batch. The engine passes requests from all
    /// shards; this method sorts them canonically, so input order (and
    /// therefore shard count) cannot influence the outcome.
    pub fn serve_epoch(&mut self, mut batch: Vec<EdgeRequest>) -> EpochOutcome {
        batch.sort_unstable_by_key(|r| (r.arrival, r.vehicle, r.seq));

        // Per-region LTE sharing from this batch's population.
        let mut region_counts: BTreeMap<u32, u32> = BTreeMap::new();
        for r in &batch {
            *region_counts.entry(r.region).or_insert(0) += 1;
        }
        let region_links: BTreeMap<u32, LinkSpec> = region_counts
            .iter()
            .map(|(&r, &n)| (r, self.region_link(n)))
            .collect();

        // Admission (arrival order), then DRR fair queueing.
        let mut outcome = EpochOutcome::default();
        let mut queue: FairQueue<EdgeRequest> = FairQueue::new(self.drr_quantum);
        let mut admitted: Vec<TenantId> = Vec::new();
        for req in batch {
            let tenant = TenantId::new(req.tenant);
            if self.admission.try_admit(tenant) {
                admitted.push(tenant);
                queue.enqueue(tenant, self.work_units, req);
            } else {
                let link = &region_links[&req.region];
                outcome.rejected.push(RejectedRequest {
                    uplink: link.transfer_time(Direction::Uplink, self.upload_bytes),
                });
            }
        }
        outcome.queue_depth = queue.len();

        // Load-dependent service time from the average in-service
        // concurrency this batch implies.
        let implied = (outcome.queue_depth as f64 * self.base_service.as_secs_f64()
            / self.epoch.as_secs_f64())
        .ceil() as u32;
        let service = self
            .base_service
            .mul_f64(self.contention.service_multiplier(implied));

        // Serve in DRR order on the earliest-free lane.
        while let Some((_, req)) = queue.pop() {
            let link = &region_links[&req.region];
            let up = link.transfer_time(Direction::Uplink, self.upload_bytes);
            let down = link.transfer_time(Direction::Downlink, self.download_bytes);
            let ready = req.arrival + up;
            let Reverse(free) = self.lanes.pop().expect("edge has at least one lane");
            let start = if ready > free { ready } else { free };
            let finish = start + service;
            self.lanes.push(Reverse(finish));
            let e2e = finish.duration_since(req.arrival) + down;
            let energy_j = (up.as_secs_f64() + down.as_secs_f64()) * RADIO_W;
            outcome.served.push(ServedRequest { e2e, energy_j });
        }

        // Served requests leave the admission gate before the next epoch.
        for tenant in admitted {
            self.admission.release(tenant);
        }
        outcome
    }
}
