//! The shared XEdge deployment served at epoch barriers.
//!
//! All cross-vehicle coupling funnels through this single-threaded
//! server: at each barrier the engine hands it the canonical-sorted
//! global batch of requests, and the server applies per-tenant admission
//! control, deficit round-robin fair queueing, a load-dependent service
//! time (the [`ContentionModel`]), and per-region LTE bandwidth sharing.
//! Because serving consumes only globally-determined data in a canonical
//! order, its outputs are independent of how the fleet was sharded.
//!
//! ## Edge-tier chaos and the degradation ladder
//!
//! The lane pool is partitioned across `edge_nodes` physical XEdge
//! nodes; each region is homed on node `region % edge_nodes`. Fault
//! state ([`vdap_fault::FaultKind::EdgeNodeCrash`],
//! [`vdap_fault::FaultKind::TenantQuotaFlap`],
//! [`vdap_fault::FaultKind::RegionHandoffStorm`]) is sampled only at
//! epoch barriers — the injector is a pure function of time — so chaos
//! lives entirely in this deterministic serving pass and the N-shard vs
//! 1-shard invariant survives.
//!
//! A request hitting a fault walks a graceful-degradation ladder:
//!
//! 1. **Deadline-aware retry** ([`vdap_fault::retry_until_deadline`]):
//!    probe the crashed home node once per epoch until the request's
//!    deadline budget runs out. A rescued request is served without
//!    occupying a lane (a modeling shortcut: the rescue completes on
//!    the freshly recovered, momentarily idle node).
//! 2. **Neighbor-region handoff**: re-register through the nearest
//!    region whose home node is healthy, paying the mobility handoff
//!    cost from [`vdap_net::CellularChannel`].
//! 3. **Local degraded execution**: run the pipeline on the VCU at
//!    reduced accuracy — faster and at lower board power than the full
//!    on-board fallback, with the degraded-mode seconds charged to the
//!    tenant.
//!
//! A node that crashes more than [`vdap_edgeos::CrashLoopPolicy`]
//! allows inside its window is declared crash-looping and stays down
//! for the rest of the run.

use std::collections::BTreeMap;

use vdap_edgeos::{CrashLoopPolicy, FairQueue, TenantAdmission, TenantId};
use vdap_fault::{retry_until_deadline, AttemptOutcome, FaultInjector, RetryPolicy};
use vdap_net::{CellularChannel, Direction, LinkSpec, Mph};
use vdap_offload::ContentionModel;
use vdap_sim::{RngStream, SimDuration, SimTime};

use crate::config::{edge_node_label, handoff_label, region_label, tenant_label, FleetConfig};
use crate::vehicle::{DEGRADED_BOARD_W, RADIO_W, SPEED_MPH};

/// One vehicle request bound for the shared edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct EdgeRequest {
    pub vehicle: u32,
    pub seq: u32,
    pub tenant: u32,
    pub region: u32,
    pub arrival: SimTime,
    /// Serving attempts so far (0 = never assigned a lane). Bumped when
    /// a node crash re-queues the request.
    pub attempts: u32,
}

/// A request the edge finished serving, with vehicle-side accounting.
#[derive(Debug, Clone)]
pub(crate) struct ServedRequest {
    pub e2e: SimDuration,
    pub energy_j: f64,
}

/// A request bounced at the admission gate under nominal quotas (its
/// uplink time was already spent discovering that).
#[derive(Debug, Clone)]
pub(crate) struct RejectedRequest {
    pub uplink: SimDuration,
}

/// A request that fell to the bottom ladder rung: local on-VCU
/// execution at degraded accuracy.
#[derive(Debug, Clone)]
pub(crate) struct LocalFallback {
    pub tenant: u32,
    pub e2e: SimDuration,
    pub energy_j: f64,
    /// Degraded-mode serving time charged to the tenant.
    pub degraded: SimDuration,
}

/// What one barrier's serving pass produced.
#[derive(Debug, Default)]
pub(crate) struct EpochOutcome {
    pub served: Vec<ServedRequest>,
    pub rejected: Vec<RejectedRequest>,
    pub local_fallbacks: Vec<LocalFallback>,
    pub queue_depth: usize,
    /// In-flight requests re-queued off crashed lanes this barrier.
    pub requeued: u64,
    /// Retry attempts spent on ladder rung 1.
    pub retry_attempts: u64,
    /// Requests rescued by rung-1 retry (sub-count of `served`).
    pub retry_rescued: u64,
    /// Rung-1 retries that exhausted their deadline budget.
    pub retry_exhausted: u64,
    /// Requests served through a neighbor region's node (rung 2,
    /// sub-count of `served`).
    pub handoffs: u64,
}

/// One lane of one physical XEdge node.
#[derive(Debug, Clone)]
struct Lane {
    node: u32,
    free: SimTime,
}

/// A request occupying a lane until `finish`.
#[derive(Debug, Clone)]
struct InFlight {
    finish: SimTime,
    node: u32,
    served: ServedRequest,
    req: EdgeRequest,
}

/// The shared multi-tenant XEdge deployment.
#[derive(Debug)]
pub(crate) struct XEdgeServer {
    /// Lanes persist across epochs so backlog carries over; lane `i`
    /// belongs to node `i % edge_nodes`.
    lanes: Vec<Lane>,
    /// Requests currently occupying lanes, completion-pending.
    in_flight: Vec<InFlight>,
    /// Requests stripped off crashed lanes, awaiting the next pass.
    requeued: Vec<EdgeRequest>,
    /// Whether each node was down at the previous barrier.
    node_down: Vec<bool>,
    /// Barrier instants at which each node crashed (windowed).
    crash_history: Vec<Vec<SimTime>>,
    /// Nodes declared crash-looping: down for the rest of the run.
    crash_looped: Vec<bool>,
    crash_policy: CrashLoopPolicy,
    contention: ContentionModel,
    admission: TenantAdmission,
    lte: LinkSpec,
    /// Per-handoff connectivity gap at fleet cruising speed.
    handoff_cost: SimDuration,
    epoch: SimDuration,
    base_service: SimDuration,
    drr_quantum: u64,
    work_units: u64,
    upload_bytes: u64,
    download_bytes: u64,
    edge_nodes: u32,
    regions: u32,
    tenants: u32,
    nominal_cap: usize,
    request_deadline: SimDuration,
    failover_penalty: SimDuration,
    vehicle_service: SimDuration,
    degraded_service_factor: f64,
    /// Cached fault-target labels, indexed by id.
    node_labels: Vec<String>,
    region_labels: Vec<String>,
    handoff_labels: Vec<String>,
    tenant_labels: Vec<String>,
}

impl XEdgeServer {
    pub fn new(cfg: &FleetConfig) -> Self {
        let nodes = cfg.edge_nodes.max(1);
        let capacity = cfg.edge_capacity.max(1);
        let lanes = (0..capacity)
            .map(|i| Lane {
                node: i % nodes,
                free: SimTime::ZERO,
            })
            .collect();
        XEdgeServer {
            lanes,
            in_flight: Vec::new(),
            requeued: Vec::new(),
            node_down: vec![false; nodes as usize],
            crash_history: vec![Vec::new(); nodes as usize],
            crash_looped: vec![false; nodes as usize],
            crash_policy: CrashLoopPolicy::new(SimDuration::from_secs(30), 3),
            contention: ContentionModel::new(capacity),
            admission: TenantAdmission::new(cfg.tenant_queue_cap),
            lte: LinkSpec::lte(),
            handoff_cost: CellularChannel::calibrated().handoff_cost(Mph(SPEED_MPH)),
            epoch: cfg.epoch,
            base_service: cfg.edge_service,
            drr_quantum: cfg.drr_quantum,
            work_units: cfg.work_units,
            upload_bytes: cfg.upload_bytes,
            download_bytes: cfg.download_bytes,
            edge_nodes: nodes,
            regions: cfg.regions,
            tenants: cfg.tenants,
            nominal_cap: cfg.tenant_queue_cap,
            request_deadline: cfg.request_deadline,
            failover_penalty: cfg.failover_penalty,
            vehicle_service: cfg.vehicle_service,
            degraded_service_factor: cfg.degraded_service_factor,
            node_labels: (0..nodes).map(edge_node_label).collect(),
            region_labels: (0..cfg.regions).map(region_label).collect(),
            handoff_labels: (0..cfg.regions).map(handoff_label).collect(),
            tenant_labels: (0..cfg.tenants).map(tenant_label).collect(),
        }
    }

    /// Requests offered to the admission gate so far.
    pub fn offered(&self) -> u64 {
        self.admission.admitted() + self.admission.rejected()
    }

    /// Requests rejected by the admission gate so far.
    pub fn rejected(&self) -> u64 {
        self.admission.rejected()
    }

    /// The physical node serving `region`'s traffic.
    fn home_node(&self, region: u32) -> u32 {
        region % self.edge_nodes
    }

    /// Whether `node` is unusable at `barrier` (crashed or looping).
    fn node_unavailable(
        &self,
        injector: Option<&FaultInjector>,
        node: u32,
        barrier: SimTime,
    ) -> bool {
        self.crash_looped[node as usize]
            || injector.is_some_and(|inj| inj.is_down(&self.node_labels[node as usize], barrier))
    }

    /// The per-vehicle share of a region's LTE cell given the average
    /// transfer concurrency implied by this epoch's batch.
    fn region_link(&self, region_count: u32) -> LinkSpec {
        let t0 = self.lte.transfer_time(Direction::Uplink, self.upload_bytes);
        let concurrency =
            (f64::from(region_count) * t0.as_secs_f64() / self.epoch.as_secs_f64()).ceil();
        self.lte.shared_among(concurrency.max(1.0) as u32)
    }

    /// Earliest-free lane of `node` (lowest index breaks ties).
    fn best_lane(&self, node: u32) -> usize {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| l.node == node)
            .min_by_key(|(i, l)| (l.free, *i))
            .map(|(i, _)| i)
            .expect("every node owns at least one lane")
    }

    /// Refreshes node health at `barrier`: detects up→down edges,
    /// strips in-flight work off crashed lanes into the requeue buffer,
    /// and applies the crash-loop policy.
    fn refresh_nodes(&mut self, injector: Option<&FaultInjector>, barrier: SimTime) -> u64 {
        let mut requeued = 0u64;
        for node in 0..self.edge_nodes {
            let idx = node as usize;
            let down = self.node_unavailable(injector, node, barrier);
            if down && !self.node_down[idx] {
                // Fresh crash at this barrier: in-flight work on the
                // node's lanes is lost and must be re-queued; the lane
                // pool restarts cold on recovery.
                let mut kept = Vec::with_capacity(self.in_flight.len());
                for inf in self.in_flight.drain(..) {
                    if inf.node == node && inf.finish > barrier {
                        let mut req = inf.req;
                        req.attempts += 1;
                        requeued += 1;
                        self.requeued.push(req);
                    } else {
                        kept.push(inf);
                    }
                }
                self.in_flight = kept;
                for lane in self.lanes.iter_mut().filter(|l| l.node == node) {
                    lane.free = barrier;
                }
                if !self.crash_looped[idx] {
                    let (_, looping) = self
                        .crash_policy
                        .observe(&mut self.crash_history[idx], barrier);
                    if looping {
                        self.crash_looped[idx] = true;
                    }
                }
            }
            self.node_down[idx] = down;
        }
        requeued
    }

    /// Pops completions (`finish <= barrier`) into `outcome.served`.
    fn emit_completions(&mut self, barrier: SimTime, outcome: &mut EpochOutcome) {
        let mut kept = Vec::with_capacity(self.in_flight.len());
        for inf in self.in_flight.drain(..) {
            if inf.finish <= barrier {
                outcome.served.push(inf.served);
            } else {
                kept.push(inf);
            }
        }
        self.in_flight = kept;
    }

    /// Syncs per-tenant admission caps with the quota-flap state at
    /// `barrier`: an active flap shrinks the cap to
    /// `max(1, floor(nominal × factor))`.
    fn refresh_quotas(&mut self, injector: Option<&FaultInjector>, barrier: SimTime) {
        let Some(inj) = injector else { return };
        for t in 0..self.tenants {
            let factor = inj.quota_factor(&self.tenant_labels[t as usize], barrier);
            let tenant = TenantId::new(t);
            if factor < 1.0 {
                let cap = ((self.nominal_cap as f64 * factor).floor() as usize).max(1);
                self.admission.set_cap_override(tenant, cap);
            } else {
                self.admission.clear_cap_override(tenant);
            }
        }
    }

    /// Whether `tenant`'s quota is currently flapped below nominal.
    fn tenant_flapped(&self, tenant: u32) -> bool {
        self.admission.effective_cap(TenantId::new(tenant)) < self.nominal_cap
    }

    /// Rung 3: local on-VCU execution at degraded accuracy.
    fn local_fallback(&self, req: &EdgeRequest) -> LocalFallback {
        let service = self.vehicle_service.mul_f64(self.degraded_service_factor);
        LocalFallback {
            tenant: req.tenant,
            e2e: self.failover_penalty + service,
            energy_j: service.as_secs_f64() * DEGRADED_BOARD_W,
            degraded: service,
        }
    }

    /// Rung 1: probe the crashed home node once per epoch under the
    /// request's remaining deadline budget. Returns the rescued
    /// [`ServedRequest`] and the attempt count, or the attempts spent
    /// when the budget ran dry.
    #[allow(clippy::too_many_arguments)]
    fn retry_rescue(
        &self,
        injector: &FaultInjector,
        req: &EdgeRequest,
        node: u32,
        barrier: SimTime,
        up: SimDuration,
        down: SimDuration,
        service: SimDuration,
        rng: &mut RngStream,
    ) -> Result<(ServedRequest, u32), u32> {
        let elapsed = barrier.duration_since(req.arrival);
        if elapsed >= self.request_deadline {
            return Err(0);
        }
        let budget = self.request_deadline - elapsed;
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: self.epoch,
            backoff_factor: 1.0,
            jitter: 0.0,
            attempt_timeout: None,
        };
        let label = &self.node_labels[node as usize];
        let report = retry_until_deadline(&policy, barrier, budget, rng, |_, at| {
            if self.crash_looped[node as usize] || injector.is_down(label, at) {
                // The probe burns an epoch discovering the node is
                // still gone.
                AttemptOutcome::Failure(self.epoch)
            } else {
                AttemptOutcome::Success(up + service + down)
            }
        });
        if report.succeeded() {
            let e2e = report.finished_at.duration_since(req.arrival);
            let energy_j = (up.as_secs_f64() + down.as_secs_f64()) * RADIO_W;
            Ok((ServedRequest { e2e, energy_j }, report.attempts))
        } else {
            Err(report.attempts)
        }
    }

    /// Rung 2: the nearest region whose home node is healthy and whose
    /// cell is neither storming nor in LTE outage at `barrier`.
    fn failover_region(
        &self,
        injector: Option<&FaultInjector>,
        region: u32,
        barrier: SimTime,
    ) -> Option<u32> {
        (1..self.regions)
            .map(|d| (region + d) % self.regions)
            .find(|&nr| {
                let node = self.home_node(nr);
                !self.node_unavailable(injector, node, barrier)
                    && !injector.is_some_and(|inj| {
                        inj.handoff_storm(&self.handoff_labels[nr as usize], barrier)
                            || inj.is_down(&self.region_labels[nr as usize], barrier)
                    })
            })
    }

    /// Assigns `req` to the earliest-free lane of `node`; the request
    /// occupies the lane until `finish` and completes at a later
    /// barrier. `extra` is added to the end-to-end latency (handoff
    /// cost on rung 2).
    #[allow(clippy::too_many_arguments)]
    fn assign_lane(
        &mut self,
        req: EdgeRequest,
        node: u32,
        up: SimDuration,
        down: SimDuration,
        service: SimDuration,
        extra_latency: SimDuration,
        extra_energy: f64,
    ) {
        let ready = req.arrival + up + extra_latency;
        let lane = self.best_lane(node);
        let free = self.lanes[lane].free;
        let start = if ready > free { ready } else { free };
        let finish = start + service;
        self.lanes[lane].free = finish;
        let e2e = finish.duration_since(req.arrival) + down;
        let energy_j = (up.as_secs_f64() + down.as_secs_f64()) * RADIO_W + extra_energy;
        self.in_flight.push(InFlight {
            finish,
            node,
            served: ServedRequest { e2e, energy_j },
            req,
        });
    }

    /// Serves one barrier's batch. The engine passes requests from all
    /// shards; this method sorts them canonically, so input order (and
    /// therefore shard count) cannot influence the outcome. `barrier`
    /// is the global epoch-boundary instant — the only time at which
    /// fault state is sampled — and `rng` is the engine-owned ladder
    /// stream, consumed in canonical order.
    pub fn serve_epoch(
        &mut self,
        mut batch: Vec<EdgeRequest>,
        barrier: SimTime,
        injector: Option<&FaultInjector>,
        rng: &mut RngStream,
    ) -> EpochOutcome {
        batch.sort_unstable_by_key(|r| (r.arrival, r.vehicle, r.seq));

        let mut outcome = EpochOutcome {
            requeued: self.refresh_nodes(injector, barrier),
            ..EpochOutcome::default()
        };
        self.emit_completions(barrier, &mut outcome);
        self.refresh_quotas(injector, barrier);

        // Per-region LTE sharing from this batch's population.
        let mut region_counts: BTreeMap<u32, u32> = BTreeMap::new();
        for r in &batch {
            *region_counts.entry(r.region).or_insert(0) += 1;
        }
        let region_links: BTreeMap<u32, LinkSpec> = region_counts
            .iter()
            .map(|(&r, &n)| (r, self.region_link(n)))
            .collect();
        let unshared = self.lte.clone();
        let link_for = move |region: u32| -> LinkSpec {
            region_links
                .get(&region)
                .cloned()
                .unwrap_or_else(|| unshared.clone())
        };

        // Admission (arrival order), then DRR fair queueing. Requests
        // re-queued off crashed lanes were admitted in an earlier epoch
        // and re-enter the queue without a second admission charge.
        let mut queue: FairQueue<EdgeRequest> = FairQueue::new(self.drr_quantum);
        let mut admitted: Vec<TenantId> = Vec::new();
        for req in std::mem::take(&mut self.requeued) {
            if barrier.duration_since(req.arrival) >= self.request_deadline {
                // Too stale to re-serve: straight to the bottom rung.
                outcome.local_fallbacks.push(self.local_fallback(&req));
            } else {
                queue.enqueue(TenantId::new(req.tenant), self.work_units, req);
            }
        }
        for req in batch {
            let tenant = TenantId::new(req.tenant);
            if self.admission.try_admit(tenant) {
                admitted.push(tenant);
                queue.enqueue(tenant, self.work_units, req);
            } else if self.tenant_flapped(req.tenant) {
                // Quota flap: a fault, not load — bounced into the
                // degradation ladder's bottom rung.
                outcome.local_fallbacks.push(self.local_fallback(&req));
            } else {
                outcome.rejected.push(RejectedRequest {
                    uplink: link_for(req.region)
                        .transfer_time(Direction::Uplink, self.upload_bytes),
                });
            }
        }
        outcome.queue_depth = queue.len();

        // Load-dependent service time from the average in-service
        // concurrency this batch implies.
        let implied = (outcome.queue_depth as f64 * self.base_service.as_secs_f64()
            / self.epoch.as_secs_f64())
        .ceil() as u32;
        let service = self
            .base_service
            .mul_f64(self.contention.service_multiplier(implied));

        // Serve in DRR order on the home node's earliest-free lane,
        // walking the degradation ladder when the home path is faulted.
        while let Some((_, req)) = queue.pop() {
            let link = link_for(req.region);
            let up = link.transfer_time(Direction::Uplink, self.upload_bytes);
            let down = link.transfer_time(Direction::Downlink, self.download_bytes);
            let home = self.home_node(req.region);
            let home_down = self.node_unavailable(injector, home, barrier);
            let storming = injector.is_some_and(|inj| {
                inj.handoff_storm(&self.handoff_labels[req.region as usize], barrier)
            });

            if !home_down && !storming {
                self.assign_lane(req, home, up, down, service, SimDuration::ZERO, 0.0);
                continue;
            }

            // Rung 1 — deadline-aware retry (crashed home node only;
            // waiting out a handoff storm has unbounded cost).
            if home_down {
                if let Some(inj) = injector {
                    match self.retry_rescue(inj, &req, home, barrier, up, down, service, rng) {
                        Ok((served, attempts)) => {
                            outcome.retry_attempts += u64::from(attempts);
                            outcome.retry_rescued += 1;
                            outcome.served.push(served);
                            continue;
                        }
                        Err(attempts) => {
                            outcome.retry_attempts += u64::from(attempts);
                            outcome.retry_exhausted += 1;
                        }
                    }
                }
            }

            // Rung 2 — hand off to the nearest healthy region's node.
            if let Some(neighbor) = self.failover_region(injector, req.region, barrier) {
                let node = self.home_node(neighbor);
                let handoff = self.handoff_cost;
                let handoff_energy = handoff.as_secs_f64() * RADIO_W;
                self.assign_lane(req, node, up, down, service, handoff, handoff_energy);
                outcome.handoffs += 1;
                continue;
            }

            // Rung 3 — local degraded execution.
            outcome.local_fallbacks.push(self.local_fallback(&req));
        }

        // Served requests leave the admission gate before the next epoch.
        for tenant in admitted {
            self.admission.release(tenant);
        }
        outcome
    }

    /// Drains everything still pending at the end of the run: in-flight
    /// work completes past the horizon (its latency is already fixed),
    /// and requests stranded in the requeue buffer take the local
    /// fallback.
    pub fn flush(&mut self) -> EpochOutcome {
        let mut outcome = EpochOutcome::default();
        for inf in self.in_flight.drain(..) {
            outcome.served.push(inf.served);
        }
        for req in std::mem::take(&mut self.requeued) {
            outcome.local_fallbacks.push(self.local_fallback(&req));
        }
        outcome
    }
}
