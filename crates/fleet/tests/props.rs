//! Property tests for the fleet engine's two determinism contracts:
//! streaming-histogram merges are associative and commutative
//! bit-for-bit, and fleet metrics are invariant to the shard count.

use proptest::prelude::*;
use vdap_edgeos::{ClassQueueKey, FairQueue, TenantId};
use vdap_fleet::{FleetConfig, FleetEngine, WorkloadClass};
use vdap_sim::{SeedFactory, SimDuration, SimTime, StreamingHistogram};

/// Fills a histogram with `n` samples from a seeded stream.
fn filled(seed: u64, stream: u64, n: u32) -> StreamingHistogram {
    let mut rng = SeedFactory::new(seed).indexed_stream("hist-prop", stream);
    let mut h = StreamingHistogram::new("lat");
    for _ in 0..n {
        h.record(rng.uniform_range(0.0, 500.0));
    }
    h
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(seed in any::<u64>(), n in 1u32..200, m in 1u32..200) {
        let a = filled(seed, 0, n);
        let b = filled(seed, 1, m);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.mean().to_bits(), ba.mean().to_bits());
        prop_assert_eq!(format!("{ab}"), format!("{ba}"));
    }

    #[test]
    fn histogram_merge_is_associative(seed in any::<u64>(), n in 1u32..100) {
        let (a, b, c) = (filled(seed, 0, n), filled(seed, 1, n), filled(seed, 2, n));
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.mean().to_bits(), right.mean().to_bits());
    }

    #[test]
    fn merging_empty_is_identity(seed in any::<u64>(), n in 0u32..100) {
        let a = filled(seed, 0, n);
        let mut merged = a.clone();
        merged.merge(&StreamingHistogram::new("lat"));
        prop_assert_eq!(&merged, &a);
    }
}

/// A fleet small enough to run many times under proptest but big enough
/// to exercise every outcome path (edge, collab, reject, failover).
fn quick_config(seed: u64, shards: u32) -> FleetConfig {
    let mut cfg = FleetConfig::sized(64, shards);
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(8);
    cfg.with_regional_outage(0, SimTime::from_secs(2), SimDuration::from_secs(3))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn same_seed_shard_count_invariance(seed in any::<u64>()) {
        let summaries: Vec<String> = [1u32, 2, 8]
            .iter()
            .map(|&shards| FleetEngine::new(quick_config(seed, shards)).run().summary())
            .collect();
        prop_assert_eq!(&summaries[0], &summaries[1], "1 vs 2 shards diverged");
        prop_assert_eq!(&summaries[0], &summaries[2], "1 vs 8 shards diverged");
    }
}

/// A chaos plan exercising all three edge-tier fault kinds at once on a
/// fleet with two XEdge nodes (so node 0's crash leaves a live failover
/// target for rung 2).
fn edge_chaos_config(seed: u64, shards: u32) -> FleetConfig {
    let mut cfg = FleetConfig::sized(64, shards);
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(8);
    cfg.edge_nodes = 2;
    cfg.with_edge_node_crash(0, SimTime::from_secs(2), SimDuration::from_secs(3))
        .with_tenant_quota_flap(1, 0.25, SimTime::from_secs(3), SimDuration::from_secs(2))
        .with_handoff_storm(1, SimTime::from_secs(4), SimDuration::from_secs(2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn edge_tier_chaos_is_shard_invariant(seed in any::<u64>()) {
        // Full degradation-ladder chaos (node crash + quota flap +
        // handoff storm): metrics, summary, AND the reliability ledger
        // (per-tenant MTTR, degraded seconds) must be identical at
        // 1, 2, 4 and 8 shards.
        let reports: Vec<_> = [1u32, 2, 4, 8]
            .iter()
            .map(|&shards| FleetEngine::new(edge_chaos_config(seed, shards)).run())
            .collect();
        for r in &reports[1..] {
            prop_assert_eq!(&reports[0].reliability, &r.reliability);
            prop_assert_eq!(&reports[0].metrics, &r.metrics);
            prop_assert_eq!(reports[0].summary(), r.summary());
        }
    }
}

/// Per-class DRR quanta for the fairness property: detection light,
/// pBEAM heavy (mirrors the default [`vdap_fleet::ClassSpec`] mix).
const CLASS_QUANTUM: [u64; 3] = [8, 16, 32];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn drr_work_shares_stay_within_one_quantum(
        seed in any::<u64>(),
        tenants in 2u32..5,
        rounds in 10u32..40,
    ) {
        // Heterogeneous per-item costs: each item in class `c` costs
        // anywhere from half to double the class quantum, so servings
        // per visit vary and deficits genuinely carry between rounds.
        let mut rng = SeedFactory::new(seed).stream("drr-fairness-prop");
        let mut queue: FairQueue<u64, ClassQueueKey> = FairQueue::new(CLASS_QUANTUM[0]);
        let mut remaining: Vec<Vec<u32>> = Vec::new();
        let backlog = 3 * rounds + 16;
        for t in 0..tenants {
            let mut per_flow = Vec::new();
            for class in WorkloadClass::ALL {
                let key = ClassQueueKey::new(TenantId::new(t), class);
                let q = CLASS_QUANTUM[class.index()];
                queue.set_quantum(key, q);
                for _ in 0..backlog {
                    let cost = (q / 2).max(1) + rng.below(2 * q);
                    queue.enqueue(key, cost, cost);
                }
                per_flow.push(backlog);
            }
            remaining.push(per_flow);
        }

        // Pop while every flow stays backlogged, so the interval the
        // DRR fairness bound applies to covers every pop.
        let mut served = vec![0u64; tenants as usize];
        while remaining.iter().flatten().all(|r| *r > 1) {
            let (key, cost) = queue.pop().expect("flows are backlogged");
            served[key.tenant.as_u32() as usize] += cost;
            remaining[key.tenant.as_u32() as usize][key.class.index()] -= 1;
        }

        // Equal quanta ⇒ equal entitlement. Over any backlogged
        // interval each tenant's served work stays within one quantum
        // round (the sum of its per-class quanta) plus one maximal
        // item per flow of every other tenant's.
        let quantum_round: u64 = CLASS_QUANTUM.iter().sum();
        let max_item: u64 = CLASS_QUANTUM.iter().map(|q| 2 * q + q / 2).sum();
        let tolerance = quantum_round + max_item;
        let hi = *served.iter().max().expect("nonempty");
        let lo = *served.iter().min().expect("nonempty");
        prop_assert!(
            hi - lo <= tolerance,
            "work shares diverged beyond one quantum round: {served:?} (tolerance {tolerance})"
        );
    }
}

/// The acceptance-criteria configuration: the full three-class mix AND
/// elastic lane scaling, saturating enough that the scaler really
/// grows and shrinks the pool.
fn elastic_mixed_config(seed: u64, shards: u32) -> FleetConfig {
    let mut cfg = FleetConfig::sized(64, shards).with_elastic_capacity();
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(8);
    cfg.request_period = SimDuration::from_millis(400);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn elastic_mixed_workloads_are_shard_invariant(seed in any::<u64>()) {
        // Elastic decisions are sampled only at epoch barriers from the
        // previous barrier's queue depth, so they must not cost any
        // determinism: metrics (including the per-tenant work ledger
        // inside the summary) stay byte-identical at 1, 2, 4 and
        // 8 shards.
        let reports: Vec<_> = [1u32, 2, 4, 8]
            .iter()
            .map(|&shards| FleetEngine::new(elastic_mixed_config(seed, shards)).run())
            .collect();
        for r in &reports[1..] {
            prop_assert_eq!(&reports[0].metrics, &r.metrics);
            prop_assert_eq!(reports[0].summary(), r.summary());
        }
        // The property is vacuous if the scaler never acts: the load
        // level above is chosen so the pool both grows and shrinks.
        let m = &reports[0].metrics;
        prop_assert!(
            m.scale_ups + m.scale_downs > 0,
            "elastic scaler never engaged (lanes mean {})",
            m.elastic_lanes.mean()
        );
    }
}

/// The ingestion pipeline on a healthy fleet: every vehicle batches
/// telemetry through its regional collector into the storage tier.
fn ingest_config(seed: u64, shards: u32) -> FleetConfig {
    let mut cfg = FleetConfig::sized(64, shards).with_ingest();
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(8);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn ingest_enabled_runs_are_shard_invariant(seed in any::<u64>()) {
        // The ingest pass is engine-owned and consumes only canonically
        // sorted barrier data, so the full report — metrics, summary,
        // AND the ingestion ledger — must be identical at 1, 2, 4 and
        // 8 shards.
        let reports: Vec<_> = [1u32, 2, 4, 8]
            .iter()
            .map(|&shards| FleetEngine::new(ingest_config(seed, shards)).run())
            .collect();
        for r in &reports[1..] {
            prop_assert_eq!(&reports[0].metrics, &r.metrics);
            prop_assert_eq!(&reports[0].ingest, &r.ingest);
            prop_assert_eq!(reports[0].summary(), r.summary());
        }
        let ing = reports[0].ingest.as_ref().expect("ingest ledger present");
        prop_assert!(ing.batches_sent > 0, "vehicles must upload");
    }
}

/// DDI/storage chaos on top of ingestion: a collector outage, a deep
/// storage brownout and a hard write-error window, with a storage tier
/// sized tight enough that the brownout genuinely backs queues up.
fn ingest_chaos_config(seed: u64, shards: u32) -> FleetConfig {
    let mut cfg = FleetConfig::sized(64, shards)
        .with_ingest()
        .with_collector_outage(0, SimTime::from_secs(1), SimDuration::from_secs(3))
        .with_storage_brownout(0.05, SimTime::from_secs(2), SimDuration::from_secs(4))
        .with_storage_write_error(SimTime::from_secs(6), SimDuration::from_secs(1));
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(8);
    cfg.ingest.as_mut().unwrap().storage_records_per_sec = 400.0;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn ddi_storage_chaos_is_shard_invariant(seed in any::<u64>()) {
        // The ingestion degradation ladder (seeded-backoff retry →
        // defer-to-cache → shed) draws from an engine-owned stream in
        // canonical batch order, so even under collector outages,
        // brownouts and write errors the ledger replays byte-for-byte
        // at any shard count.
        let reports: Vec<_> = [1u32, 2, 4, 8]
            .iter()
            .map(|&shards| FleetEngine::new(ingest_chaos_config(seed, shards)).run())
            .collect();
        for r in &reports[1..] {
            prop_assert_eq!(&reports[0].metrics, &r.metrics);
            prop_assert_eq!(&reports[0].ingest, &r.ingest);
            prop_assert_eq!(&reports[0].reliability, &r.reliability);
            prop_assert_eq!(reports[0].summary(), r.summary());
        }
        // The property is vacuous if chaos never bites.
        let ing = reports[0].ingest.as_ref().expect("ingest ledger present");
        prop_assert!(ing.outage_bounces > 0, "collector outage never hit");
        prop_assert!(
            ing.storage_rho.max() > 1.0,
            "brownout never saturated storage (rho max {})",
            ing.storage_rho.max()
        );
    }
}

/// Geo-mobility on top of ingestion plus a seeded handoff storm: the
/// full interaction surface — crossings re-addressing in-flight ingest
/// batches, storm-multiplied handoff costs, per-region admission
/// re-registration, and physical vehicle migration between shards.
fn mobility_config(seed: u64, shards: u32) -> FleetConfig {
    let mut cfg = FleetConfig::sized(64, shards)
        .with_ingest()
        .with_mobility()
        .with_handoff_storm(1, SimTime::from_secs(3), SimDuration::from_secs(3));
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(8);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn mobility_with_ingest_and_storm_is_shard_invariant(seed in any::<u64>()) {
        // Mobility state lives on the engine thread and advances only
        // at barriers in canonical vehicle order, so the full mobility
        // ledger — crossings, domain migrations, storm crossings, stale
        // cache hits, re-addressed batches, handoff histograms — must
        // replay byte-for-byte at 1, 2, 4 and 8 shards, even though the
        // *physical* evict/adopt moves differ per shard count.
        let reports: Vec<_> = [1u32, 2, 4, 8]
            .iter()
            .map(|&shards| FleetEngine::new(mobility_config(seed, shards)).run())
            .collect();
        for r in &reports[1..] {
            prop_assert_eq!(&reports[0].metrics, &r.metrics);
            prop_assert_eq!(&reports[0].mobility, &r.mobility);
            prop_assert_eq!(&reports[0].region_admission, &r.region_admission);
            prop_assert_eq!(&reports[0].ingest, &r.ingest);
            prop_assert_eq!(&reports[0].reliability, &r.reliability);
            prop_assert_eq!(reports[0].summary(), r.summary());
        }
        // The property is vacuous if nobody moves: the ledger must show
        // real crossings that partition into domain migrations and
        // same-domain moves.
        let mob = reports[0].mobility.as_ref().expect("mobility ledger present");
        prop_assert!(mob.crossings > 0, "no vehicle ever crossed a region");
        prop_assert!(mob.migrations > 0, "no crossing changed home-node domain");
        prop_assert!(
            mob.partitions(),
            "crossings ({}) != migrations ({}) + same-domain ({})",
            mob.crossings,
            mob.migrations,
            mob.same_shard_crossings
        );
    }
}

/// The full interaction surface — ingest, mobility, and a regional
/// outage — pinned to an explicit executor width and batch size. The
/// executor knobs are pure performance knobs: any (threads, batch)
/// point must replay the reference run byte-for-byte.
fn steal_config(seed: u64, shards: u32, threads: u32, batch: u32) -> FleetConfig {
    let mut cfg = FleetConfig::sized(64, shards)
        .with_ingest()
        .with_mobility()
        .with_regional_outage(0, SimTime::from_secs(2), SimDuration::from_secs(3))
        .with_executor_threads(threads)
        .with_batch_size(batch);
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(8);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn executor_width_cannot_reach_any_report(seed in any::<u64>()) {
        // Reference: single worker, so the tick phase is fully serial
        // and no steal can ever happen. Wider executors (including
        // "whatever the machine has") produce wall-clock-dependent
        // steal schedules — none of which may reach the report.
        let hw = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get) as u32;
        let base = FleetEngine::new(steal_config(seed, 4, 1, 16)).run();
        for threads in [2, 4, hw] {
            let r = FleetEngine::new(steal_config(seed, 4, threads, 16)).run();
            prop_assert_eq!(&base.metrics, &r.metrics, "threads={}", threads);
            prop_assert_eq!(&base.mobility, &r.mobility, "threads={}", threads);
            prop_assert_eq!(&base.ingest, &r.ingest, "threads={}", threads);
            prop_assert_eq!(&base.reliability, &r.reliability, "threads={}", threads);
            prop_assert_eq!(base.summary(), r.summary(), "threads={}", threads);
        }
    }

    #[test]
    fn batch_size_cannot_reach_any_report(seed in any::<u64>()) {
        // Batch size only regroups which vehicles share a deque slot:
        // one vehicle per batch, a prime that straddles shard
        // boundaries, and one batch per whole shard must all match the
        // default grouping — across different shard counts at once.
        let base = FleetEngine::new(steal_config(seed, 1, 4, 32)).run();
        for (shards, batch) in [(2u32, 1u32), (4, 7), (4, 64)] {
            let r = FleetEngine::new(steal_config(seed, shards, 4, batch)).run();
            prop_assert_eq!(&base.metrics, &r.metrics, "shards={} batch={}", shards, batch);
            prop_assert_eq!(&base.mobility, &r.mobility, "shards={} batch={}", shards, batch);
            prop_assert_eq!(&base.ingest, &r.ingest, "shards={} batch={}", shards, batch);
            prop_assert_eq!(base.summary(), r.summary(), "shards={} batch={}", shards, batch);
        }
    }
}

#[test]
fn full_scale_shard_invariance_smoke() {
    // The acceptance-criteria configuration at reduced duration: 1,000
    // vehicles, default tenants/regions, 1 vs 8 shards byte-identical.
    let build = |shards| {
        let mut cfg = FleetConfig::sized(1000, shards);
        cfg.duration = SimDuration::from_secs(5);
        FleetEngine::new(cfg).run()
    };
    let one = build(1);
    let eight = build(8);
    assert_eq!(one.summary(), eight.summary());
    assert_eq!(one.metrics, eight.metrics);
    assert_eq!(one.events_processed, eight.events_processed);
}
