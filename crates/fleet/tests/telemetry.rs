//! Property tests for the telemetry layer's two contracts:
//!
//! 1. **Reconciliation** — the span log partitions the request stream
//!    exactly the way `FleetMetrics`' outcome counters do: one closed
//!    span per request, per-outcome span counts equal to the served /
//!    collab / failover / rejected / fallback counters.
//! 2. **Shard-count invariance** — with telemetry enabled, the
//!    deterministic summary is still byte-identical across shard
//!    counts, and the normalized span log and metrics registry are
//!    identical too (the `shard` span attribute is the only field
//!    re-partitioning may change).

use proptest::prelude::*;
use vdap_fleet::{FleetConfig, FleetEngine, FleetReport, SpanOutcome};
use vdap_sim::{SimDuration, SimTime};

/// A fleet small enough for proptest but chaotic enough to produce all
/// six span outcomes: a regional outage (failovers), a node crash on a
/// two-node deployment (retries, handoffs, fallbacks, skipped pBEAM
/// rounds), and tight quotas under load (rejections).
fn chaos_config(seed: u64, shards: u32) -> FleetConfig {
    let mut cfg = FleetConfig::sized(64, shards).with_telemetry();
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(8);
    cfg.edge_nodes = 2;
    cfg.with_regional_outage(0, SimTime::from_secs(1), SimDuration::from_secs(2))
        .with_edge_node_crash(0, SimTime::from_secs(3), SimDuration::from_secs(3))
        .with_tenant_quota_flap(1, 0.25, SimTime::from_secs(4), SimDuration::from_secs(2))
}

/// Asserts every span/metrics reconciliation invariant on one report.
fn assert_reconciles(report: &FleetReport) {
    let m = &report.metrics;
    let tel = report.telemetry.as_ref().expect("telemetry enabled");
    let spans = &tel.spans;
    assert_eq!(
        spans.len() as u64,
        m.requests,
        "one closed span per request"
    );
    assert_eq!(spans.outcome_count(SpanOutcome::EdgeServed), m.edge_served);
    assert_eq!(spans.outcome_count(SpanOutcome::CollabHit), m.collab_hits);
    assert_eq!(spans.outcome_count(SpanOutcome::Failover), m.failovers);
    assert_eq!(spans.outcome_count(SpanOutcome::Rejected), m.rejected);
    assert_eq!(
        spans.outcome_count(SpanOutcome::LocalFallback) + spans.outcome_count(SpanOutcome::Skipped),
        m.local_fallbacks,
        "rung-3 spans split into degraded runs and skipped rounds"
    );
    assert_eq!(
        spans.outcome_count(SpanOutcome::Skipped),
        m.training_rounds_skipped
    );
    // Registry counters mirror the same partition.
    let r = &tel.registry;
    assert_eq!(r.counter("fleet.requests"), m.requests);
    assert_eq!(r.counter("fleet.served"), m.edge_served);
    assert_eq!(r.counter("fleet.collab_hits"), m.collab_hits);
    assert_eq!(r.counter("fleet.failovers"), m.failovers);
    assert_eq!(r.counter("fleet.rejected"), m.rejected);
    assert_eq!(r.counter("fleet.local_fallbacks"), m.local_fallbacks);
    assert_eq!(r.counter("fleet.handoffs"), m.handoffs);
    // Span timestamps are internally consistent. Note `serve_start`
    // may precede `admitted`: the serving pass runs at the barrier but
    // models lane occupancy starting at arrival + uplink.
    for s in spans.iter() {
        assert!(s.completed >= s.generated, "span ends after it starts");
        if let Some(admitted) = s.admitted {
            assert!(admitted >= s.generated, "admission follows generation");
        }
        if let Some(serve_start) = s.serve_start {
            assert!(serve_start >= s.generated, "lane starts after generation");
            assert!(s.completed >= serve_start, "completion follows lane start");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn spans_reconcile_with_metrics_at_every_shard_count(seed in any::<u64>()) {
        let reports: Vec<FleetReport> = [1u32, 2, 4, 8]
            .iter()
            .map(|&shards| FleetEngine::new(chaos_config(seed, shards)).run())
            .collect();
        for report in &reports {
            assert_reconciles(report);
        }

        // Telemetry must not cost determinism: summaries byte-identical,
        // and the telemetry itself invariant modulo the shard attribute.
        let base = reports[0].telemetry.as_ref().expect("telemetry enabled");
        let base_spans: Vec<_> = base.spans.iter().map(|s| s.normalized()).collect();
        for r in &reports[1..] {
            prop_assert_eq!(reports[0].summary(), r.summary());
            let tel = r.telemetry.as_ref().expect("telemetry enabled");
            let spans: Vec<_> = tel.spans.iter().map(|s| s.normalized()).collect();
            prop_assert_eq!(&base_spans, &spans, "normalized span logs diverged");
            prop_assert_eq!(&base.registry, &tel.registry, "registries diverged");
        }
    }
}

/// The full interaction surface with the bounded-memory sinks on:
/// ingest + mobility + a telemetry budget + explicit deterministic
/// sampling. The sampled span set, histogram series, and deterministic
/// summary must stay byte-identical across shard counts.
fn sampled_config(seed: u64, shards: u32) -> FleetConfig {
    let mut cfg = FleetConfig::sized(64, shards)
        .with_ingest()
        .with_mobility()
        .with_telemetry_budget(16 * 1024)
        .with_span_sampling(4);
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(8);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn sampled_telemetry_with_budget_is_shard_invariant(seed in any::<u64>()) {
        let reports: Vec<FleetReport> = [1u32, 2, 4, 8]
            .iter()
            .map(|&shards| FleetEngine::new(sampled_config(seed, shards)).run())
            .collect();
        let base = reports[0].telemetry.as_ref().expect("telemetry enabled");
        let base_spans: Vec<_> = base.spans.iter().map(|s| s.normalized()).collect();
        for r in &reports[1..] {
            // Sampling and budget enforcement must not cost determinism.
            prop_assert_eq!(reports[0].summary(), r.summary());
            let tel = r.telemetry.as_ref().expect("telemetry enabled");
            let spans: Vec<_> = tel.spans.iter().map(|s| s.normalized()).collect();
            prop_assert_eq!(&base_spans, &spans, "sampled span sets diverged");
            // Registry equality covers series, histograms, counters and
            // the telemetry_bytes gauge — all shard-invariant because
            // the byte estimate is count-based.
            prop_assert_eq!(&base.registry, &tel.registry, "registries diverged");
            prop_assert_eq!(base.sampled_out, tel.sampled_out, "sampler drop counts diverged");
            prop_assert_eq!(base.peak_bytes, tel.peak_bytes, "peak byte estimates diverged");
        }
        // The property is vacuous unless the sampler actually dropped
        // OK spans and kept every non-OK span.
        prop_assert!(base.sampled_out > 0, "keep-1-in-4 never sampled anything out");
        prop_assert!(!base.spans.is_empty(), "sampling must not drop everything");
        prop_assert_eq!(
            base.spans.len() as u64 + base.sampled_out,
            reports[0].metrics.requests,
            "kept + sampled-out partitions the request stream"
        );
        prop_assert!(
            base.registry.gauge("telemetry_bytes").is_some(),
            "self-accounting gauge must be set"
        );
    }
}

#[test]
fn crossed_budget_auto_activates_deterministic_sampling() {
    // No spill, no explicit sampling, and a budget far below what 64
    // vehicles over 8 s produce: the engine's last resort is switching
    // OK-span sampling on retroactively.
    let run = |shards: u32| {
        let mut cfg = FleetConfig::sized(64, shards).with_telemetry_budget(4 * 1024);
        cfg.seed = 7;
        cfg.duration = SimDuration::from_secs(8);
        FleetEngine::new(cfg).run()
    };
    let one = run(1);
    let eight = run(8);
    let tel = one.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(
        tel.sample,
        Some(vdap_fleet::BUDGET_AUTO_SAMPLE),
        "budget crossing must auto-activate sampling"
    );
    assert!(tel.rolled, "budget crossing must mark rollup active");
    assert!(
        tel.sampled_out > 0,
        "retroactive sampling must drop OK spans"
    );
    // Auto-activation happens at a barrier from a shard-invariant byte
    // estimate, so the surviving set is still shard-invariant.
    assert_eq!(one.summary(), eight.summary());
    let tel8 = eight.telemetry.as_ref().expect("telemetry enabled");
    let one_spans: Vec<_> = tel.spans.iter().map(|s| s.normalized()).collect();
    let eight_spans: Vec<_> = tel8.spans.iter().map(|s| s.normalized()).collect();
    assert_eq!(one_spans, eight_spans);
    assert_eq!(tel.sampled_out, tel8.sampled_out);
    // Non-OK spans are never sampled out: every metrics-side failure
    // outcome still has its span.
    assert_eq!(
        tel.spans.outcome_count(SpanOutcome::Rejected),
        one.metrics.rejected
    );
    assert_eq!(
        tel.spans.outcome_count(SpanOutcome::Failover),
        one.metrics.failovers
    );
}

#[test]
fn span_spill_streams_every_span_to_parseable_segments() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("fleet-spill-test");
    let _ = std::fs::remove_dir_all(&dir);
    // No budget: with a spill dir configured, every barrier flushes —
    // pure streaming export, nothing retained in memory.
    let mut cfg = FleetConfig::sized(64, 2).with_span_spill(&dir);
    cfg.seed = 11;
    cfg.duration = SimDuration::from_secs(8);
    let report = FleetEngine::new(cfg).run();
    let tel = report.telemetry.as_ref().expect("telemetry enabled");
    assert!(
        tel.spans.is_empty(),
        "with spill and no budget, every span streams to disk"
    );
    let spill = tel.spill.as_ref().expect("spill sink present");
    assert_eq!(spill.io_errors(), 0);
    assert_eq!(
        spill.spilled(),
        report.metrics.requests,
        "every request's span reaches disk exactly once"
    );
    let segments = spill.segments();
    assert!(!segments.is_empty());
    let mut lines = 0u64;
    for segment in &segments {
        let text = std::fs::read_to_string(segment).expect("segment readable");
        for line in text.lines() {
            let value: serde_json::Value = serde_json::from_str(line).expect("line parses");
            assert!(value.get("vehicle").is_some());
            assert!(value.get("outcome").is_some());
            lines += 1;
        }
    }
    assert_eq!(lines, spill.spilled(), "one JSONL line per spilled span");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_off_means_no_spans_and_an_unchanged_summary() {
    let with = |telemetry: bool| {
        let mut cfg = FleetConfig::sized(64, 2);
        cfg.telemetry = telemetry;
        cfg.duration = SimDuration::from_secs(6);
        FleetEngine::new(cfg).run()
    };
    let off = with(false);
    let on = with(true);
    assert!(off.telemetry.is_none());
    assert!(on.telemetry.is_some());
    assert_eq!(
        off.summary(),
        on.summary(),
        "telemetry is derived data: enabling it cannot perturb the run"
    );
}

#[test]
fn epoch_series_cover_every_barrier() {
    let mut cfg = FleetConfig::sized(64, 2).with_telemetry();
    cfg.duration = SimDuration::from_secs(6);
    let epochs = cfg.duration.as_nanos().div_ceil(cfg.epoch.as_nanos());
    let report = FleetEngine::new(cfg).run();
    let tel = report.telemetry.expect("telemetry enabled");
    let depth = tel.registry.series("xedge.queue_depth");
    assert_eq!(depth.len() as u64, epochs, "one sample per barrier");
    assert_eq!(depth[0].epoch, 0);
    assert_eq!(depth.last().expect("nonempty").epoch, epochs - 1);
    let served: f64 = tel
        .registry
        .series("fleet.served.detection")
        .iter()
        .map(|p| p.value)
        .sum();
    let total_detection_served: f64 = tel
        .registry
        .series("fleet.served.infotainment")
        .iter()
        .chain(tel.registry.series("fleet.served.pbeam-training"))
        .map(|p| p.value)
        .sum::<f64>()
        + served;
    assert!(
        total_detection_served > 0.0,
        "per-class served series should see traffic"
    );
}
