//! Property tests for the telemetry layer's two contracts:
//!
//! 1. **Reconciliation** — the span log partitions the request stream
//!    exactly the way `FleetMetrics`' outcome counters do: one closed
//!    span per request, per-outcome span counts equal to the served /
//!    collab / failover / rejected / fallback counters.
//! 2. **Shard-count invariance** — with telemetry enabled, the
//!    deterministic summary is still byte-identical across shard
//!    counts, and the normalized span log and metrics registry are
//!    identical too (the `shard` span attribute is the only field
//!    re-partitioning may change).

use proptest::prelude::*;
use vdap_fleet::{FleetConfig, FleetEngine, FleetReport, SpanOutcome};
use vdap_sim::{SimDuration, SimTime};

/// A fleet small enough for proptest but chaotic enough to produce all
/// six span outcomes: a regional outage (failovers), a node crash on a
/// two-node deployment (retries, handoffs, fallbacks, skipped pBEAM
/// rounds), and tight quotas under load (rejections).
fn chaos_config(seed: u64, shards: u32) -> FleetConfig {
    let mut cfg = FleetConfig::sized(64, shards).with_telemetry();
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(8);
    cfg.edge_nodes = 2;
    cfg.with_regional_outage(0, SimTime::from_secs(1), SimDuration::from_secs(2))
        .with_edge_node_crash(0, SimTime::from_secs(3), SimDuration::from_secs(3))
        .with_tenant_quota_flap(1, 0.25, SimTime::from_secs(4), SimDuration::from_secs(2))
}

/// Asserts every span/metrics reconciliation invariant on one report.
fn assert_reconciles(report: &FleetReport) {
    let m = &report.metrics;
    let tel = report.telemetry.as_ref().expect("telemetry enabled");
    let spans = &tel.spans;
    assert_eq!(
        spans.len() as u64,
        m.requests,
        "one closed span per request"
    );
    assert_eq!(spans.outcome_count(SpanOutcome::EdgeServed), m.edge_served);
    assert_eq!(spans.outcome_count(SpanOutcome::CollabHit), m.collab_hits);
    assert_eq!(spans.outcome_count(SpanOutcome::Failover), m.failovers);
    assert_eq!(spans.outcome_count(SpanOutcome::Rejected), m.rejected);
    assert_eq!(
        spans.outcome_count(SpanOutcome::LocalFallback) + spans.outcome_count(SpanOutcome::Skipped),
        m.local_fallbacks,
        "rung-3 spans split into degraded runs and skipped rounds"
    );
    assert_eq!(
        spans.outcome_count(SpanOutcome::Skipped),
        m.training_rounds_skipped
    );
    // Registry counters mirror the same partition.
    let r = &tel.registry;
    assert_eq!(r.counter("fleet.requests"), m.requests);
    assert_eq!(r.counter("fleet.served"), m.edge_served);
    assert_eq!(r.counter("fleet.collab_hits"), m.collab_hits);
    assert_eq!(r.counter("fleet.failovers"), m.failovers);
    assert_eq!(r.counter("fleet.rejected"), m.rejected);
    assert_eq!(r.counter("fleet.local_fallbacks"), m.local_fallbacks);
    assert_eq!(r.counter("fleet.handoffs"), m.handoffs);
    // Span timestamps are internally consistent. Note `serve_start`
    // may precede `admitted`: the serving pass runs at the barrier but
    // models lane occupancy starting at arrival + uplink.
    for s in spans.iter() {
        assert!(s.completed >= s.generated, "span ends after it starts");
        if let Some(admitted) = s.admitted {
            assert!(admitted >= s.generated, "admission follows generation");
        }
        if let Some(serve_start) = s.serve_start {
            assert!(serve_start >= s.generated, "lane starts after generation");
            assert!(s.completed >= serve_start, "completion follows lane start");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn spans_reconcile_with_metrics_at_every_shard_count(seed in any::<u64>()) {
        let reports: Vec<FleetReport> = [1u32, 2, 4, 8]
            .iter()
            .map(|&shards| FleetEngine::new(chaos_config(seed, shards)).run())
            .collect();
        for report in &reports {
            assert_reconciles(report);
        }

        // Telemetry must not cost determinism: summaries byte-identical,
        // and the telemetry itself invariant modulo the shard attribute.
        let base = reports[0].telemetry.as_ref().expect("telemetry enabled");
        let base_spans: Vec<_> = base.spans.iter().map(|s| s.normalized()).collect();
        for r in &reports[1..] {
            prop_assert_eq!(reports[0].summary(), r.summary());
            let tel = r.telemetry.as_ref().expect("telemetry enabled");
            let spans: Vec<_> = tel.spans.iter().map(|s| s.normalized()).collect();
            prop_assert_eq!(&base_spans, &spans, "normalized span logs diverged");
            prop_assert_eq!(&base.registry, &tel.registry, "registries diverged");
        }
    }
}

#[test]
fn telemetry_off_means_no_spans_and_an_unchanged_summary() {
    let with = |telemetry: bool| {
        let mut cfg = FleetConfig::sized(64, 2);
        cfg.telemetry = telemetry;
        cfg.duration = SimDuration::from_secs(6);
        FleetEngine::new(cfg).run()
    };
    let off = with(false);
    let on = with(true);
    assert!(off.telemetry.is_none());
    assert!(on.telemetry.is_some());
    assert_eq!(
        off.summary(),
        on.summary(),
        "telemetry is derived data: enabling it cannot perturb the run"
    );
}

#[test]
fn epoch_series_cover_every_barrier() {
    let mut cfg = FleetConfig::sized(64, 2).with_telemetry();
    cfg.duration = SimDuration::from_secs(6);
    let epochs = cfg.duration.as_nanos().div_ceil(cfg.epoch.as_nanos());
    let report = FleetEngine::new(cfg).run();
    let tel = report.telemetry.expect("telemetry enabled");
    let depth = tel.registry.series("xedge.queue_depth");
    assert_eq!(depth.len() as u64, epochs, "one sample per barrier");
    assert_eq!(depth[0].epoch, 0);
    assert_eq!(depth.last().expect("nonempty").epoch, epochs - 1);
    let served: f64 = tel
        .registry
        .series("fleet.served.detection")
        .iter()
        .map(|p| p.value)
        .sum();
    let total_detection_served: f64 = tel
        .registry
        .series("fleet.served.infotainment")
        .iter()
        .chain(tel.registry.series("fleet.served.pbeam-training"))
        .map(|p| p.value)
        .sum::<f64>()
        + served;
    assert!(
        total_detection_served > 0.0,
        "per-class served series should see traffic"
    );
}
