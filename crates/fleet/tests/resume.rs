//! Crash–resume determinism: a supervised run that dies at an epoch
//! barrier and resumes from a durable snapshot must reproduce the
//! straight run's report byte-for-byte — through snapshot-store chaos
//! (torn writes, bit rot) and even when the restoring engine uses a
//! different shard count than the writer.

use std::sync::OnceLock;

use proptest::prelude::*;
use vdap_fleet::{FleetConfig, FleetEngine, FleetReport, Snapshot, SnapshotStore};
use vdap_sim::{SimDuration, SimTime};

/// The full-stack scenario: ingest + mobility + telemetry, snapshots
/// every 4 epochs (the 8 s run has 16), keep-last-3 retention.
fn full_stack_config(seed: u64, shards: u32) -> FleetConfig {
    let mut cfg = FleetConfig::sized(64, shards)
        .with_ingest()
        .with_mobility()
        .with_telemetry();
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(8);
    cfg.with_checkpoint(4, 3)
}

/// Straight run vs. supervised crash-at-`epoch` run, on every report
/// surface that must be deterministic.
fn assert_reports_identical(straight: &FleetReport, resumed: &FleetReport) {
    assert_eq!(straight.summary(), resumed.summary());
    assert_eq!(straight.metrics, resumed.metrics);
    assert_eq!(straight.reliability, resumed.reliability);
    assert_eq!(straight.region_availability, resumed.region_availability);
    assert_eq!(straight.events_processed, resumed.events_processed);
    assert_eq!(straight.ingest, resumed.ingest);
    assert_eq!(straight.mobility, resumed.mobility);
    assert_eq!(straight.region_admission, resumed.region_admission);
    let (s, r) = (
        straight.telemetry.as_ref().expect("telemetry on"),
        resumed.telemetry.as_ref().expect("telemetry on"),
    );
    assert_eq!(s.spans.spans(), r.spans.spans());
    assert_eq!(
        s.registry.counters().collect::<Vec<_>>(),
        r.registry.counters().collect::<Vec<_>>()
    );
    assert_eq!(
        s.registry.gauges().collect::<Vec<_>>(),
        r.registry.gauges().collect::<Vec<_>>()
    );
    assert_eq!(
        s.registry.all_series().collect::<Vec<_>>(),
        r.registry.all_series().collect::<Vec<_>>()
    );
}

#[test]
fn supervised_crash_resume_is_byte_identical_at_every_shard_count() {
    for shards in [1u32, 2, 4, 8] {
        let cfg = full_stack_config(11, shards).with_engine_crash(10, SimDuration::from_secs(1));
        // run() ignores crash faults (they are still preambled into the
        // availability ledger), so it is the deterministic baseline.
        let straight = FleetEngine::new(cfg.clone()).run();
        let mut store = SnapshotStore::in_memory();
        let resumed = FleetEngine::new(cfg).run_supervised(&mut store);
        assert_reports_identical(&straight, &resumed);
        // The crash really happened and really resumed …
        assert_eq!(resumed.snapshots.resumes, 1, "at {shards} shards");
        assert!(
            !resumed.snapshots.writes.is_empty(),
            "no snapshot written at {shards} shards"
        );
        // … and the scripted downtime is on the availability ledger of
        // both runs (the resume window flows into MTTR either way).
        assert!(
            resumed
                .region_availability
                .iter()
                .any(|(component, _)| component == "engine"),
            "engine downtime missing from the ledger"
        );
        // The snapshot diagnostics surface in diagnostics(), not in the
        // deterministic summary.
        assert!(resumed.diagnostics().contains("snapshots:"));
        assert!(!resumed.summary().contains("snapshots:"));
    }
}

#[test]
fn double_crash_resumes_twice() {
    let cfg = full_stack_config(23, 4)
        .with_engine_crash(6, SimDuration::from_millis(500))
        .with_engine_crash(13, SimDuration::from_millis(500));
    let straight = FleetEngine::new(cfg.clone()).run();
    let mut store = SnapshotStore::in_memory();
    let resumed = FleetEngine::new(cfg).run_supervised(&mut store);
    assert_eq!(resumed.snapshots.resumes, 2);
    assert_reports_identical(&straight, &resumed);
}

#[test]
fn torn_write_on_newest_snapshot_falls_back_one_generation() {
    // Writes land at epochs 4, 8, 12 (sim times 2 s, 4 s, 6 s). The
    // torn-write window covers the epoch-8 write, so the crash at
    // epoch 10 must fall back to generation 4.
    let cfg = full_stack_config(5, 4)
        .with_engine_crash(10, SimDuration::from_secs(1))
        .with_snapshot_torn_write(SimTime::from_secs(4), SimDuration::from_millis(100));
    let straight = FleetEngine::new(cfg.clone()).run();
    let mut store = SnapshotStore::in_memory();
    let resumed = FleetEngine::new(cfg).run_supervised(&mut store);
    assert_eq!(resumed.snapshots.resumes, 1);
    assert!(
        resumed.snapshots.rejected_generations.contains(&8),
        "torn generation 8 was not rejected: {:?}",
        resumed.snapshots.rejected_generations
    );
    let diag = resumed.diagnostics();
    assert!(diag.contains("torn-write injected"), "diagnostics: {diag}");
    assert!(diag.contains("rejected gen 8"), "diagnostics: {diag}");
    assert_reports_identical(&straight, &resumed);
}

#[test]
fn corrupted_snapshot_is_rejected_by_checksum() {
    let cfg = full_stack_config(7, 2)
        .with_engine_crash(10, SimDuration::from_secs(1))
        .with_snapshot_corruption(SimTime::from_secs(4), SimDuration::from_millis(100));
    let straight = FleetEngine::new(cfg.clone()).run();
    let mut store = SnapshotStore::in_memory();
    let resumed = FleetEngine::new(cfg).run_supervised(&mut store);
    assert!(resumed.snapshots.rejected_generations.contains(&8));
    assert_reports_identical(&straight, &resumed);
}

#[test]
fn all_snapshots_corrupt_restarts_from_scratch() {
    // Corruption covers the whole run: every write is damaged, so the
    // supervisor finds no valid generation and replays from epoch 0.
    let cfg = full_stack_config(3, 4)
        .with_engine_crash(10, SimDuration::from_secs(1))
        .with_snapshot_corruption(SimTime::ZERO, SimDuration::from_secs(8));
    let straight = FleetEngine::new(cfg.clone()).run();
    let mut store = SnapshotStore::in_memory();
    let resumed = FleetEngine::new(cfg).run_supervised(&mut store);
    assert_eq!(resumed.snapshots.resumes, 1);
    assert!(resumed.snapshots.rejected_generations.contains(&4));
    assert!(resumed.snapshots.rejected_generations.contains(&8));
    assert_reports_identical(&straight, &resumed);
}

#[test]
fn crash_resume_round_trips_budget_sampling_and_histogram_state() {
    // 100 ms epochs over 8 s → 80 epochs, so the series retention
    // window (64) is crossed and rollup folds points into streaming
    // histograms before the crash at epoch 70; the tiny budget with no
    // spill and no explicit sampling also auto-activates OK-span
    // sampling. The snapshot at epoch 68 therefore carries every piece
    // of new sink state: histograms, the auto-activated sample rate,
    // the sampled-out count, and the rolled flag.
    let mut cfg = FleetConfig::sized(64, 2)
        .with_ingest()
        .with_telemetry_budget(4 * 1024);
    cfg.seed = 23;
    cfg.duration = SimDuration::from_secs(8);
    cfg.epoch = SimDuration::from_millis(100);
    let cfg = cfg
        .with_checkpoint(4, 3)
        .with_engine_crash(70, SimDuration::from_secs(1));
    let straight = FleetEngine::new(cfg.clone()).run();
    let mut store = SnapshotStore::in_memory();
    let resumed = FleetEngine::new(cfg).run_supervised(&mut store);
    assert_eq!(resumed.snapshots.resumes, 1);
    assert_eq!(straight.summary(), resumed.summary());
    let (s, r) = (
        straight.telemetry.as_ref().expect("telemetry on"),
        resumed.telemetry.as_ref().expect("telemetry on"),
    );
    // The run must actually have exercised the new machinery …
    assert_eq!(s.sample, Some(vdap_fleet::BUDGET_AUTO_SAMPLE));
    assert!(s.rolled);
    assert!(s.sampled_out > 0);
    assert!(
        s.registry.all_histograms().count() > 0,
        "rollup must have produced histograms before the crash"
    );
    // … and the resumed run must reproduce all of it exactly.
    assert_eq!(s.spans.spans(), r.spans.spans());
    assert_eq!(s.sample, r.sample);
    assert_eq!(s.sampled_out, r.sampled_out);
    assert_eq!(s.rolled, r.rolled);
    assert_eq!(&s.registry, &r.registry);
}

#[test]
fn supervised_without_checkpoint_config_replays_from_scratch() {
    // No checkpoint config: the supervisor has nothing to restore from,
    // so a crash costs a full replay — and nothing else.
    let mut cfg = FleetConfig::sized(64, 2).with_ingest().with_telemetry();
    cfg.duration = SimDuration::from_secs(8);
    let cfg = cfg.with_engine_crash(10, SimDuration::from_secs(1));
    let straight = FleetEngine::new(cfg.clone()).run();
    let mut store = SnapshotStore::in_memory();
    let resumed = FleetEngine::new(cfg).run_supervised(&mut store);
    assert!(resumed.snapshots.writes.is_empty());
    assert_eq!(resumed.snapshots.resumes, 1);
    assert_eq!(straight.summary(), resumed.summary());
}

/// Takes the newest snapshot a supervised run of `from_shards` left
/// behind, restores it into an engine with `to_shards`, and checks the
/// finished report against the straight `to_shards` run.
fn cross_shard_restore(from_shards: u32, to_shards: u32) {
    let mut store = SnapshotStore::in_memory();
    let writer = FleetEngine::new(full_stack_config(41, from_shards)).run_supervised(&mut store);
    assert!(!writer.snapshots.writes.is_empty());
    let (snap, rejected) = store.newest_valid();
    let snap = snap.expect("a clean run leaves valid snapshots");
    assert!(rejected.is_empty());

    let straight = FleetEngine::new(full_stack_config(41, to_shards)).run();
    let resumed = FleetEngine::new(full_stack_config(41, to_shards))
        .restore(&snap)
        .expect("snapshot restores across shard counts");
    assert_eq!(straight.summary(), resumed.summary());
    assert_eq!(straight.metrics, resumed.metrics);
    assert_eq!(straight.reliability, resumed.reliability);
    assert_eq!(straight.events_processed, resumed.events_processed);
    assert_eq!(straight.ingest, resumed.ingest);
    assert_eq!(straight.mobility, resumed.mobility);
    assert_eq!(straight.region_admission, resumed.region_admission);
    // Spans written before the snapshot carry the *writer's* shard
    // attribute — the one field re-partitioning legitimately changes —
    // so the cross-shard-count comparison normalizes it away, exactly
    // like the shard-invariance telemetry tests do.
    let (s, r) = (
        straight.telemetry.as_ref().expect("telemetry on"),
        resumed.telemetry.as_ref().expect("telemetry on"),
    );
    let norm = |t: &vdap_fleet::FleetTelemetry| {
        t.spans.iter().map(|sp| sp.normalized()).collect::<Vec<_>>()
    };
    assert_eq!(norm(s), norm(r));
    assert_eq!(
        s.registry.counters().collect::<Vec<_>>(),
        r.registry.counters().collect::<Vec<_>>()
    );
    assert_eq!(
        s.registry.all_series().collect::<Vec<_>>(),
        r.registry.all_series().collect::<Vec<_>>()
    );
}

#[test]
fn snapshot_written_by_8_shards_restores_into_1() {
    cross_shard_restore(8, 1);
}

#[test]
fn snapshot_written_by_1_shard_restores_into_8() {
    cross_shard_restore(1, 8);
}

#[test]
fn restore_rejects_foreign_fingerprint() {
    let mut store = SnapshotStore::in_memory();
    let _ = FleetEngine::new(full_stack_config(41, 2)).run_supervised(&mut store);
    let (snap, _) = store.newest_valid();
    let snap = snap.expect("valid snapshot");
    // Same shape, different seed: the fingerprint must refuse it.
    let err = FleetEngine::new(full_stack_config(42, 2))
        .restore(&snap)
        .expect_err("foreign seed must be rejected");
    assert!(err.to_string().contains("config mismatch"), "got: {err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn crash_resume_is_byte_identical_for_any_seed(seed in any::<u64>()) {
        // The flagship property at 1, 2, 4 and 8 shards: kill at epoch
        // 10, resume from the epoch-8 snapshot, finish — the summary,
        // the ledgers and the telemetry all replay byte-for-byte.
        for shards in [1u32, 2, 4, 8] {
            let cfg = full_stack_config(seed, shards)
                .with_engine_crash(10, SimDuration::from_secs(1));
            let straight = FleetEngine::new(cfg.clone()).run();
            let mut store = SnapshotStore::in_memory();
            let resumed = FleetEngine::new(cfg).run_supervised(&mut store);
            prop_assert_eq!(resumed.snapshots.resumes, 1);
            prop_assert_eq!(straight.summary(), resumed.summary(), "{} shards diverged", shards);
            prop_assert_eq!(&straight.metrics, &resumed.metrics);
            prop_assert_eq!(&straight.reliability, &resumed.reliability);
            prop_assert_eq!(&straight.ingest, &resumed.ingest);
            prop_assert_eq!(&straight.mobility, &resumed.mobility);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn crash_resume_under_stealing_matches_serial_run(seed in any::<u64>()) {
        // Crash-at-barrier resume with the work-stealing executor in
        // its most schedule-dependent configuration: machine-wide
        // worker count and single-vehicle batches, so almost every
        // task is eligible for stealing on both the pre-crash and the
        // resumed leg. The baseline is the fully serial engine — one
        // worker, whole-fleet batches, no supervisor — and every
        // deterministic surface must still match byte-for-byte.
        let hw = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get) as u32;
        let serial = {
            let cfg = full_stack_config(seed, 1)
                .with_engine_crash(10, SimDuration::from_secs(1))
                .with_executor_threads(1)
                .with_batch_size(64);
            FleetEngine::new(cfg).run()
        };
        let cfg = full_stack_config(seed, 4)
            .with_engine_crash(10, SimDuration::from_secs(1))
            .with_executor_threads(hw)
            .with_batch_size(1);
        let mut store = SnapshotStore::in_memory();
        let resumed = FleetEngine::new(cfg).run_supervised(&mut store);
        prop_assert_eq!(resumed.snapshots.resumes, 1);
        prop_assert_eq!(serial.summary(), resumed.summary());
        prop_assert_eq!(&serial.metrics, &resumed.metrics);
        prop_assert_eq!(&serial.reliability, &resumed.reliability);
        prop_assert_eq!(&serial.ingest, &resumed.ingest);
        prop_assert_eq!(&serial.mobility, &resumed.mobility);
        prop_assert_eq!(&serial.region_admission, &resumed.region_admission);
    }
}

/// One real encoded snapshot plus the summary its clean restore yields,
/// computed once for the tamper property below.
fn reference_snapshot() -> &'static (String, String) {
    static REF: OnceLock<(String, String)> = OnceLock::new();
    REF.get_or_init(|| {
        let mut store = SnapshotStore::in_memory();
        let _ = FleetEngine::new(full_stack_config(41, 2)).run_supervised(&mut store);
        let generation = *store.generations().last().expect("snapshots written");
        let encoded = store.get(generation).expect("newest generation present");
        let snap = Snapshot::decode(&encoded).expect("clean snapshot decodes");
        let summary = FleetEngine::new(full_stack_config(41, 2))
            .restore(&snap)
            .expect("clean snapshot restores")
            .summary();
        (encoded, summary)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn encoded_snapshot_round_trips(extra_decode in 0usize..3) {
        // decode → encode → decode is the identity on a real snapshot.
        let (encoded, _) = reference_snapshot();
        let mut text = encoded.clone();
        for _ in 0..=extra_decode {
            let snap = Snapshot::decode(&text).expect("round trip stays valid");
            text = snap.encode();
        }
        prop_assert_eq!(&text, encoded);
    }

    #[test]
    fn corrupting_any_single_byte_never_silently_resumes_wrong(
        pos in any::<usize>(),
        mask in 1u8..0x80,
    ) {
        // Flip one byte anywhere in a real encoded snapshot (the text
        // is ASCII, so the XOR keeps it valid UTF-8). Whatever happens
        // next — decode failure, restore failure, or (if the damage is
        // somehow survivable) a successful resume — the one forbidden
        // outcome is a *silently different* resumed run.
        let (encoded, expected_summary) = reference_snapshot();
        let mut bytes = encoded.clone().into_bytes();
        let at = pos % bytes.len();
        bytes[at] ^= mask;
        let tampered = String::from_utf8(bytes).expect("ascii stays utf-8");
        if let Ok(snap) = Snapshot::decode(&tampered) {
            if let Ok(report) = FleetEngine::new(full_stack_config(41, 2)).restore(&snap) {
                prop_assert_eq!(&report.summary(), expected_summary);
            }
        }
    }
}
