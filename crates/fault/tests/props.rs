//! Property-based tests for the fault-injection subsystem: the crate's
//! determinism contract (same seed ⇒ same faults) and the retry
//! policy's deadline guarantee must hold for *any* seed.

use proptest::prelude::*;
use vdap_fault::{retry_until_deadline, AttemptOutcome, ChaosProfile, FaultPlan, RetryPolicy};
use vdap_sim::{SeedFactory, SimDuration, SimTime};

fn profile() -> ChaosProfile {
    let mut p = ChaosProfile::new();
    p.slots = vec!["gpu".into(), "cpu".into()];
    p.links = vec!["vehicle-cloud".into()];
    p.stores = vec!["ddi-store".into()];
    p.services = vec!["amber-alert".into()];
    p
}

proptest! {
    #[test]
    fn randomized_fault_schedule_replays_bit_identically(
        seed in any::<u64>(),
        horizon_secs in 1u64..600,
    ) {
        let horizon = SimDuration::from_secs(horizon_secs);
        let profile = profile();
        let build = || {
            let mut rng = SeedFactory::new(seed).stream("chaos-plan");
            FaultPlan::randomized(&mut rng, horizon, &profile).compile()
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.windows(), b.windows(), "windows diverged for seed {}", seed);
        prop_assert_eq!(a.transitions(), b.transitions());
    }

    #[test]
    fn different_streams_give_different_schedules(seed in any::<u64>()) {
        // Stream separation: the schedule depends on the stream label,
        // so independent subsystems never share draws.
        let horizon = SimDuration::from_secs(600);
        let profile = profile();
        let mut r1 = SeedFactory::new(seed).stream("chaos-plan");
        let mut r2 = SeedFactory::new(seed).stream("another-stream");
        let a = FaultPlan::randomized(&mut r1, horizon, &profile);
        let b = FaultPlan::randomized(&mut r2, horizon, &profile);
        // Not strictly guaranteed distinct, but equal start times for
        // every fault would mean the streams are correlated.
        let starts = |p: &FaultPlan| -> Vec<SimTime> {
            p.faults().iter().map(|f| f.start).collect()
        };
        if !a.faults().is_empty() && !b.faults().is_empty() {
            prop_assert!(
                starts(&a) != starts(&b) || a.faults().len() != b.faults().len(),
                "independent streams produced identical schedules"
            );
        }
    }

    #[test]
    fn retry_never_finishes_past_the_budget(
        seed in any::<u64>(),
        budget_ms in 1u64..60_000,
        fail_ms in 1u64..5_000,
        succeed_after in 0u32..10,
    ) {
        let policy = RetryPolicy::transfer_default();
        let start = SimTime::from_secs(5);
        let budget = SimDuration::from_millis(budget_ms);
        let mut rng = SeedFactory::new(seed).stream("retry");
        let mut attempt = 0u32;
        let report = retry_until_deadline(&policy, start, budget, &mut rng, |_n, _at| {
            attempt += 1;
            if attempt > succeed_after {
                AttemptOutcome::Success(SimDuration::from_millis(fail_ms))
            } else {
                AttemptOutcome::Failure(SimDuration::from_millis(fail_ms))
            }
        });
        prop_assert!(
            report.finished_at <= start + budget,
            "retry overran its deadline budget: {} > {}",
            report.finished_at,
            start + budget
        );
        prop_assert!(report.attempts >= 1);
        prop_assert!(report.attempts <= policy.max_attempts);
    }

    #[test]
    fn retry_is_deterministic_per_seed(seed in any::<u64>()) {
        let policy = RetryPolicy::transfer_default();
        let run = || {
            let mut rng = SeedFactory::new(seed).stream("retry");
            let mut attempt = 0u32;
            retry_until_deadline(
                &policy,
                SimTime::ZERO,
                SimDuration::from_secs(30),
                &mut rng,
                |_n, _at| {
                    attempt += 1;
                    if attempt >= 3 {
                        AttemptOutcome::Success(SimDuration::from_millis(80))
                    } else {
                        AttemptOutcome::Failure(SimDuration::from_millis(40))
                    }
                },
            )
        };
        prop_assert_eq!(run(), run());
    }
}
