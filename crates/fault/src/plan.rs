//! Fault taxonomy and seeded fault plans.
//!
//! A [`FaultSpec`] is one fault: what breaks ([`FaultKind`]), which
//! component (a target label each layer interprets), when it starts, how
//! long it lasts, and optionally how often it recurs. A [`FaultPlan`]
//! is an ordered set of specs over a horizon, either hand-built for a
//! scripted scenario or drawn from a dedicated RNG stream via
//! [`FaultPlan::randomized`] for chaos testing.

use serde::{Deserialize, Serialize};
use vdap_sim::{RngStream, SimDuration, SimTime};

use crate::injector::FaultInjector;

/// What kind of failure a fault injects. Target labels bind the fault to
/// a component in the layer that owns it (`hw` slot names, `net` link
/// names, `ddi` stores, `edgeos` services).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A compute slot goes hard-down (hw). Work booked on it is lost and
    /// must fail over.
    SlotFailure,
    /// A compute slot thermally throttles: service times are divided by
    /// `factor` (`0 < factor < 1` slows the slot down).
    SlotThrottle {
        /// Speed multiplier applied to the slot's throughput.
        factor: f64,
    },
    /// A network link is in outage (net): no bytes move until recovery.
    LinkOutage,
    /// A network link's bandwidth collapses to `factor` of nominal (net).
    BandwidthCollapse {
        /// Bandwidth multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Storage writes fail (ddi) for the duration of the window.
    StorageWriteError,
    /// A service crashes (edgeos) at window start; duration models the
    /// time the crashed instance stays unrecoverable.
    ServiceCrash,
    /// An XEdge node goes hard-down (fleet): its lane pool vanishes and
    /// in-flight requests on its lanes must be re-queued or bounced.
    EdgeNodeCrash,
    /// A tenant's admission quota shrinks to `factor` of nominal
    /// (fleet/edgeos): requests past the shrunken cap are bounced into
    /// the degradation ladder until the flap clears.
    TenantQuotaFlap {
        /// Quota multiplier in `(0, 1]`.
        factor: f64,
    },
    /// A region's cellular coverage is in a handoff storm (net/fleet):
    /// vehicles must re-register through a neighbor region's cell,
    /// paying the mobility handoff cost on every request.
    RegionHandoffStorm,
    /// A regional DDI collector goes hard-down (ddi/fleet): uploads
    /// addressed to it bounce back into the vehicles' local caches
    /// until the collector recovers.
    CollectorOutage,
    /// The shared storage tier browns out (ddi): effective write
    /// throughput collapses to `factor` of nominal, so queueing delay
    /// balloons while the tier stays nominally up.
    StorageBrownout {
        /// Write-throughput multiplier in `(0, 1]`.
        factor: f64,
    },
    /// The fleet engine process dies at the first checkpoint barrier at
    /// or after `epoch` (fleet). Scripted-only: the supervisor loop
    /// resumes the run from the newest valid snapshot. Not drawn by
    /// [`FaultPlan::randomized`] — a process kill is a harness event,
    /// not an in-run component fault.
    EngineCrash {
        /// Barrier index (0-based) the crash fires at.
        epoch: u64,
    },
    /// A snapshot write is torn (ckpt): the bytes persisted for any
    /// snapshot generation written inside the window are truncated, so
    /// decode fails its checksum and restore falls back a generation.
    /// Scripted-only.
    SnapshotTornWrite,
    /// A snapshot suffers bit rot (ckpt): one byte of any generation
    /// written inside the window is flipped. Scripted-only.
    SnapshotCorruption,
}

impl FaultKind {
    /// Whether the fault makes its target completely unavailable (as
    /// opposed to degrading it).
    #[must_use]
    pub fn is_hard(&self) -> bool {
        matches!(
            self,
            FaultKind::SlotFailure
                | FaultKind::LinkOutage
                | FaultKind::StorageWriteError
                | FaultKind::ServiceCrash
                | FaultKind::EdgeNodeCrash
                | FaultKind::CollectorOutage
        )
    }

    /// Short label for traces.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::SlotFailure => "slot-failure",
            FaultKind::SlotThrottle { .. } => "slot-throttle",
            FaultKind::LinkOutage => "link-outage",
            FaultKind::BandwidthCollapse { .. } => "bandwidth-collapse",
            FaultKind::StorageWriteError => "storage-write-error",
            FaultKind::ServiceCrash => "service-crash",
            FaultKind::EdgeNodeCrash => "edge-node-crash",
            FaultKind::TenantQuotaFlap { .. } => "tenant-quota-flap",
            FaultKind::RegionHandoffStorm => "region-handoff-storm",
            FaultKind::CollectorOutage => "collector-outage",
            FaultKind::StorageBrownout { .. } => "storage-brownout",
            FaultKind::EngineCrash { .. } => "engine-crash",
            FaultKind::SnapshotTornWrite => "snapshot-torn-write",
            FaultKind::SnapshotCorruption => "snapshot-corruption",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One configured fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Failure mode.
    pub kind: FaultKind,
    /// Component label the owning layer resolves.
    pub target: String,
    /// First activation time.
    pub start: SimTime,
    /// How long each activation lasts.
    pub duration: SimDuration,
    /// Optional period between activation starts; `None` = one-shot.
    pub recurrence: Option<SimDuration>,
}

impl FaultSpec {
    /// A one-shot fault.
    #[must_use]
    pub fn new(
        kind: FaultKind,
        target: impl Into<String>,
        start: SimTime,
        duration: SimDuration,
    ) -> Self {
        FaultSpec {
            kind,
            target: target.into(),
            start,
            duration,
            recurrence: None,
        }
    }

    /// Makes the fault recur every `period` (measured start-to-start).
    ///
    /// # Panics
    ///
    /// Panics when `period` is zero.
    #[must_use]
    pub fn recurring_every(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "recurrence period must be non-zero");
        self.recurrence = Some(period);
        self
    }
}

/// Relative fault intensities for [`FaultPlan::randomized`].
///
/// Mean inter-fault gaps and durations are per category; categories with
/// no targets are skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosProfile {
    /// Compute-slot labels eligible for failure/throttling.
    pub slots: Vec<String>,
    /// Link labels eligible for outage/bandwidth collapse.
    pub links: Vec<String>,
    /// Storage labels eligible for write errors.
    pub stores: Vec<String>,
    /// Service names eligible for crashes.
    pub services: Vec<String>,
    /// XEdge node labels eligible for node crashes.
    pub edge_nodes: Vec<String>,
    /// Tenant labels eligible for quota flaps.
    pub tenants: Vec<String>,
    /// Region labels eligible for handoff storms.
    pub regions: Vec<String>,
    /// Regional DDI collector labels eligible for outages.
    pub collectors: Vec<String>,
    /// Mean gap between fault activations (exponential).
    pub mean_gap: SimDuration,
    /// Mean fault duration (exponential, floored at 100 ms).
    pub mean_duration: SimDuration,
}

impl ChaosProfile {
    /// A profile with moderate default rates and no targets; fill in the
    /// target lists for the components present in the scenario.
    #[must_use]
    pub fn new() -> Self {
        ChaosProfile {
            slots: Vec::new(),
            links: Vec::new(),
            stores: Vec::new(),
            services: Vec::new(),
            edge_nodes: Vec::new(),
            tenants: Vec::new(),
            regions: Vec::new(),
            collectors: Vec::new(),
            mean_gap: SimDuration::from_secs(60),
            mean_duration: SimDuration::from_secs(15),
        }
    }
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile::new()
    }
}

/// An ordered set of faults over a scenario horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    horizon: SimDuration,
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan over `horizon`.
    #[must_use]
    pub fn new(horizon: SimDuration) -> Self {
        FaultPlan {
            horizon,
            faults: Vec::new(),
        }
    }

    /// Adds a fault.
    #[must_use]
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.faults.push(spec);
        self
    }

    /// The scenario horizon recurrences expand against.
    #[must_use]
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// The configured faults.
    #[must_use]
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Draws a randomized plan from a dedicated RNG stream: fault start
    /// times arrive as a Poisson process (exponential gaps at
    /// `profile.mean_gap`), each picking a fault kind uniformly among
    /// *all* kind slots, a target uniformly within that kind's class,
    /// and an exponential duration. An arrival whose drawn class has no
    /// targets is skipped outright — it does not redistribute its
    /// probability to the populated classes, so each class's fault rate
    /// is independent of which other classes are empty. Same stream
    /// state ⇒ identical plan.
    #[must_use]
    pub fn randomized(rng: &mut RngStream, horizon: SimDuration, profile: &ChaosProfile) -> Self {
        const KIND_SLOTS: u64 = 11;
        let mut plan = FaultPlan::new(horizon);
        let any_targets = !(profile.slots.is_empty()
            && profile.links.is_empty()
            && profile.stores.is_empty()
            && profile.services.is_empty()
            && profile.edge_nodes.is_empty()
            && profile.tenants.is_empty()
            && profile.regions.is_empty()
            && profile.collectors.is_empty());
        if !any_targets {
            return plan;
        }
        let mut at = SimTime::ZERO;
        loop {
            let gap = SimDuration::from_secs_f64(rng.exponential(profile.mean_gap.as_secs_f64()));
            at += gap;
            if at.elapsed() >= horizon {
                break;
            }
            let duration = SimDuration::from_secs_f64(
                rng.exponential(profile.mean_duration.as_secs_f64())
                    .max(0.1),
            );
            let spec = match rng.below(KIND_SLOTS) {
                0 => rng
                    .pick(&profile.slots)
                    .cloned()
                    .map(|target| FaultSpec::new(FaultKind::SlotFailure, target, at, duration)),
                1 => {
                    // Draw the factor before picking so the stream
                    // consumption per slot id is fixed even when the
                    // class is empty and the arrival is skipped.
                    let factor = rng.uniform_range(0.2, 0.8);
                    rng.pick(&profile.slots).cloned().map(|target| {
                        FaultSpec::new(FaultKind::SlotThrottle { factor }, target, at, duration)
                    })
                }
                2 => rng
                    .pick(&profile.links)
                    .cloned()
                    .map(|target| FaultSpec::new(FaultKind::LinkOutage, target, at, duration)),
                3 => {
                    let factor = rng.uniform_range(0.02, 0.3);
                    rng.pick(&profile.links).cloned().map(|target| {
                        FaultSpec::new(
                            FaultKind::BandwidthCollapse { factor },
                            target,
                            at,
                            duration,
                        )
                    })
                }
                4 => rng.pick(&profile.stores).cloned().map(|target| {
                    FaultSpec::new(FaultKind::StorageWriteError, target, at, duration)
                }),
                5 => rng
                    .pick(&profile.services)
                    .cloned()
                    .map(|target| FaultSpec::new(FaultKind::ServiceCrash, target, at, duration)),
                6 => rng
                    .pick(&profile.edge_nodes)
                    .cloned()
                    .map(|target| FaultSpec::new(FaultKind::EdgeNodeCrash, target, at, duration)),
                7 => {
                    let factor = rng.uniform_range(0.1, 0.5);
                    rng.pick(&profile.tenants).cloned().map(|target| {
                        FaultSpec::new(FaultKind::TenantQuotaFlap { factor }, target, at, duration)
                    })
                }
                8 => rng.pick(&profile.regions).cloned().map(|target| {
                    FaultSpec::new(FaultKind::RegionHandoffStorm, target, at, duration)
                }),
                9 => rng
                    .pick(&profile.collectors)
                    .cloned()
                    .map(|target| FaultSpec::new(FaultKind::CollectorOutage, target, at, duration)),
                _ => {
                    let factor = rng.uniform_range(0.05, 0.4);
                    rng.pick(&profile.stores).cloned().map(|target| {
                        FaultSpec::new(FaultKind::StorageBrownout { factor }, target, at, duration)
                    })
                }
            };
            if let Some(spec) = spec {
                plan.faults.push(spec);
            }
        }
        plan
    }

    /// Compiles the plan into an injector (expanding recurrences).
    #[must_use]
    pub fn compile(&self) -> FaultInjector {
        FaultInjector::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdap_sim::SeedFactory;

    #[test]
    fn randomized_plans_replay_bit_identically() {
        let profile = ChaosProfile {
            slots: vec!["slot0".into(), "slot1".into()],
            links: vec!["lte".into()],
            stores: vec!["ddi".into()],
            services: vec!["kidnapper".into()],
            ..ChaosProfile::new()
        };
        let draw = |seed: u64| {
            let mut rng = SeedFactory::new(seed).stream("faults");
            FaultPlan::randomized(&mut rng, SimDuration::from_secs(600), &profile)
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn randomized_plan_respects_horizon_and_targets() {
        let profile = ChaosProfile {
            slots: vec!["slot0".into()],
            mean_gap: SimDuration::from_secs(10),
            ..ChaosProfile::new()
        };
        let mut rng = SeedFactory::new(3).stream("faults");
        let plan = FaultPlan::randomized(&mut rng, SimDuration::from_secs(600), &profile);
        assert!(!plan.faults().is_empty(), "600 s at 10 s mean gap");
        for f in plan.faults() {
            assert!(f.start.elapsed() < SimDuration::from_secs(600));
            assert_eq!(f.target, "slot0");
            assert!(matches!(
                f.kind,
                FaultKind::SlotFailure | FaultKind::SlotThrottle { .. }
            ));
        }
    }

    #[test]
    fn empty_profile_yields_empty_plan() {
        let mut rng = SeedFactory::new(3).stream("faults");
        let plan =
            FaultPlan::randomized(&mut rng, SimDuration::from_secs(600), &ChaosProfile::new());
        assert!(plan.faults().is_empty());
    }

    /// Regression: an arrival whose class has no targets must be
    /// dropped, not redistributed. With only the slot class populated,
    /// slot faults claim their own 2 of 11 kind slots — the plan emits
    /// roughly 2/11 of the Poisson arrivals instead of all of them.
    #[test]
    fn empty_classes_skip_arrivals_instead_of_biasing() {
        let profile = ChaosProfile {
            slots: vec!["slot0".into()],
            mean_gap: SimDuration::from_secs(10),
            ..ChaosProfile::new()
        };
        let mut rng = SeedFactory::new(17).stream("faults");
        let plan = FaultPlan::randomized(&mut rng, SimDuration::from_secs(9_000), &profile);
        // ~900 arrivals at a 10 s mean gap; unbiased draw keeps ~164.
        let n = plan.faults().len();
        assert!(
            (90..=260).contains(&n),
            "expected ~2/11 of ~900 arrivals, got {n}"
        );
        for f in plan.faults() {
            assert!(matches!(
                f.kind,
                FaultKind::SlotFailure | FaultKind::SlotThrottle { .. }
            ));
        }
    }

    #[test]
    fn edge_tier_kinds_are_drawn_with_sane_factors() {
        let profile = ChaosProfile {
            edge_nodes: vec!["xedge/node0".into(), "xedge/node1".into()],
            tenants: vec!["tenant0".into()],
            regions: vec!["region0/handoff".into()],
            mean_gap: SimDuration::from_secs(5),
            ..ChaosProfile::new()
        };
        let mut rng = SeedFactory::new(7).stream("faults");
        let plan = FaultPlan::randomized(&mut rng, SimDuration::from_secs(3_000), &profile);
        let mut crashes = 0;
        let mut flaps = 0;
        let mut storms = 0;
        for f in plan.faults() {
            match f.kind {
                FaultKind::EdgeNodeCrash => {
                    assert!(f.target.starts_with("xedge/node"));
                    crashes += 1;
                }
                FaultKind::TenantQuotaFlap { factor } => {
                    assert!((0.1..=0.5).contains(&factor), "factor {factor}");
                    assert_eq!(f.target, "tenant0");
                    flaps += 1;
                }
                FaultKind::RegionHandoffStorm => {
                    assert_eq!(f.target, "region0/handoff");
                    storms += 1;
                }
                other => panic!("unexpected kind {other}"),
            }
        }
        assert!(crashes > 0 && flaps > 0 && storms > 0);
    }

    #[test]
    fn ddi_tier_kinds_are_drawn_with_sane_factors() {
        let profile = ChaosProfile {
            collectors: vec!["region0/collector".into(), "region1/collector".into()],
            stores: vec!["ddi/store".into()],
            mean_gap: SimDuration::from_secs(5),
            ..ChaosProfile::new()
        };
        let mut rng = SeedFactory::new(11).stream("faults");
        let plan = FaultPlan::randomized(&mut rng, SimDuration::from_secs(3_000), &profile);
        let mut outages = 0;
        let mut brownouts = 0;
        let mut write_errors = 0;
        for f in plan.faults() {
            match f.kind {
                FaultKind::CollectorOutage => {
                    assert!(f.target.ends_with("/collector"));
                    outages += 1;
                }
                FaultKind::StorageBrownout { factor } => {
                    assert!((0.05..=0.4).contains(&factor), "factor {factor}");
                    assert_eq!(f.target, "ddi/store");
                    brownouts += 1;
                }
                FaultKind::StorageWriteError => {
                    assert_eq!(f.target, "ddi/store");
                    write_errors += 1;
                }
                other => panic!("unexpected kind {other}"),
            }
        }
        assert!(outages > 0 && brownouts > 0 && write_errors > 0);
    }
}
