//! Shared deadline-aware retry policy.
//!
//! DDI uploads and EdgeOS service migration both move bytes over a lossy
//! link and both run under a task deadline, so they share one policy:
//! exponential backoff with jitter, a per-attempt timeout, and a hard cap
//! at the caller's deadline budget — [`retry_until_deadline`] never lets
//! the retried operation finish past `start + budget`.

use vdap_sim::{RngStream, SimDuration, SimTime};

/// Exponential-backoff retry policy with jitter and per-attempt timeout.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (including the first). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff delay before the second attempt.
    pub base_delay: SimDuration,
    /// Multiplier applied to the delay after each failed attempt.
    pub backoff_factor: f64,
    /// Jitter fraction in `[0, 1)`: each delay is scaled by a uniform
    /// draw from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Cap on how long a single attempt may run before it is abandoned;
    /// `None` = unbounded (the deadline still applies).
    pub attempt_timeout: Option<SimDuration>,
}

impl RetryPolicy {
    /// A sensible transfer policy: 4 attempts, 500 ms base delay doubling
    /// each retry, ±20 % jitter, 10 s per-attempt timeout.
    #[must_use]
    pub fn transfer_default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: SimDuration::from_millis_f64(500.0),
            backoff_factor: 2.0,
            jitter: 0.2,
            attempt_timeout: Some(SimDuration::from_secs(10)),
        }
    }

    /// The jittered backoff delay before attempt `next_attempt`
    /// (2-based: there is no delay before the first attempt).
    #[must_use]
    pub fn backoff_delay(&self, next_attempt: u32, rng: &mut RngStream) -> SimDuration {
        debug_assert!(next_attempt >= 2);
        let exponent = next_attempt.saturating_sub(2);
        let nominal = self.base_delay.as_secs_f64() * self.backoff_factor.powi(exponent as i32);
        let scale = if self.jitter > 0.0 {
            rng.uniform_range(1.0 - self.jitter, 1.0 + self.jitter)
        } else {
            1.0
        };
        SimDuration::from_secs_f64((nominal * scale).max(0.0))
    }

    /// Drops the per-attempt timeout, for operations whose single attempt
    /// is legitimately long (e.g. a cold migration over a slow link); the
    /// deadline budget still bounds the whole retried operation.
    #[must_use]
    pub fn without_attempt_timeout(mut self) -> Self {
        self.attempt_timeout = None;
        self
    }

    /// Caps a single attempt's duration at the per-attempt timeout.
    #[must_use]
    pub fn cap_attempt(&self, took: SimDuration) -> SimDuration {
        match self.attempt_timeout {
            Some(limit) => took.min(limit),
            None => took,
        }
    }
}

/// What one attempt of the operation did, as reported by the caller's
/// attempt function. The duration is how long the attempt ran in
/// simulated time (it will be capped by the policy's attempt timeout).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttemptOutcome {
    /// The attempt completed after the given duration.
    Success(SimDuration),
    /// The attempt failed after the given duration.
    Failure(SimDuration),
}

/// Why a retried operation ultimately failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryError {
    /// Every allowed attempt failed with deadline budget to spare.
    AttemptsExhausted {
        /// How many attempts ran.
        attempts: u32,
    },
    /// The deadline budget ran out before the operation completed.
    DeadlineExceeded {
        /// How many attempts ran (including any cut off by the deadline).
        attempts: u32,
    },
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::AttemptsExhausted { attempts } => {
                write!(f, "all {attempts} attempts failed")
            }
            RetryError::DeadlineExceeded { attempts } => {
                write!(f, "deadline budget exhausted after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for RetryError {}

/// Outcome of a full retry loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryReport {
    /// Attempts that ran (including a final one cut off by the deadline).
    pub attempts: u32,
    /// When the loop stopped — on success, when the winning attempt
    /// completed; on failure, when retrying was abandoned. Never past
    /// `start + budget`.
    pub finished_at: SimTime,
    /// `finished_at - start`.
    pub total: SimDuration,
    /// `None` on success, the terminal failure otherwise.
    pub error: Option<RetryError>,
}

impl RetryReport {
    /// Whether the operation ultimately succeeded.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.error.is_none()
    }
}

/// Drives `attempt` under `policy`, starting at `start` with at most
/// `budget` of simulated time before the deadline. The attempt function
/// receives the 1-based attempt number and the simulated instant the
/// attempt begins. The loop guarantees `finished_at <= start + budget`:
/// an attempt that would run past the deadline is cut off there and
/// counted as a failure, and no backoff sleep is started that could not
/// be followed by any useful work.
pub fn retry_until_deadline(
    policy: &RetryPolicy,
    start: SimTime,
    budget: SimDuration,
    rng: &mut RngStream,
    mut attempt: impl FnMut(u32, SimTime) -> AttemptOutcome,
) -> RetryReport {
    assert!(policy.max_attempts >= 1, "policy must allow one attempt");
    let deadline = start + budget;
    let mut now = start;
    let mut attempts = 0;
    let mut error = None;
    while attempts < policy.max_attempts {
        attempts += 1;
        let outcome = attempt(attempts, now);
        let (raw, ok) = match outcome {
            AttemptOutcome::Success(t) => (t, true),
            AttemptOutcome::Failure(t) => (t, false),
        };
        // An attempt running past the per-attempt timeout is abandoned
        // there — even one that would eventually have succeeded.
        let (took, ok) = match policy.attempt_timeout {
            Some(limit) if raw > limit => (limit, false),
            _ => (raw, ok),
        };
        let remaining = deadline.duration_since(now);
        if took > remaining {
            // The attempt is cut off at the deadline and cannot finish.
            now = deadline;
            error = Some(RetryError::DeadlineExceeded { attempts });
            break;
        }
        now += took;
        if ok {
            break;
        }
        if attempts == policy.max_attempts {
            error = Some(RetryError::AttemptsExhausted { attempts });
            break;
        }
        let delay = policy.backoff_delay(attempts + 1, rng);
        if delay >= deadline.duration_since(now) {
            // Sleeping would leave no time for another attempt.
            error = Some(RetryError::DeadlineExceeded { attempts });
            break;
        }
        now += delay;
    }
    RetryReport {
        attempts,
        finished_at: now,
        total: now.duration_since(start),
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdap_sim::SeedFactory;

    fn rng() -> RngStream {
        SeedFactory::new(77).stream("retry")
    }

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: SimDuration::from_secs(1),
            backoff_factor: 2.0,
            jitter: 0.0,
            attempt_timeout: None,
        }
    }

    #[test]
    fn first_attempt_success_has_no_backoff() {
        let report = retry_until_deadline(
            &policy(),
            SimTime::from_secs(100),
            SimDuration::from_secs(60),
            &mut rng(),
            |_, _| AttemptOutcome::Success(SimDuration::from_secs(2)),
        );
        assert!(report.succeeded());
        assert_eq!(report.attempts, 1);
        assert_eq!(report.finished_at, SimTime::from_secs(102));
        assert_eq!(report.total, SimDuration::from_secs(2));
    }

    #[test]
    fn retries_succeed_within_budget() {
        let report = retry_until_deadline(
            &policy(),
            SimTime::ZERO,
            SimDuration::from_secs(60),
            &mut rng(),
            |attempt, _| {
                if attempt < 3 {
                    AttemptOutcome::Failure(SimDuration::from_secs(2))
                } else {
                    AttemptOutcome::Success(SimDuration::from_secs(2))
                }
            },
        );
        assert!(report.succeeded());
        assert_eq!(report.attempts, 3);
        // 2 (fail) + 1 (backoff) + 2 (fail) + 2 (backoff) + 2 (success).
        assert_eq!(report.total, SimDuration::from_secs(9));
    }

    #[test]
    fn exhausted_attempts_reports_error() {
        let report = retry_until_deadline(
            &policy(),
            SimTime::ZERO,
            SimDuration::from_secs(600),
            &mut rng(),
            |_, _| AttemptOutcome::Failure(SimDuration::from_secs(1)),
        );
        assert!(!report.succeeded());
        assert_eq!(
            report.error,
            Some(RetryError::AttemptsExhausted { attempts: 4 })
        );
    }

    #[test]
    fn never_exceeds_deadline_budget() {
        // Acceptance criterion: a retried transfer never exceeds the
        // task's deadline budget, whatever the attempt durations.
        for seed in 0..50u64 {
            let mut rng = SeedFactory::new(seed).stream("retry");
            let mut attempt_rng = SeedFactory::new(seed).stream("attempts");
            let budget = SimDuration::from_secs_f64(attempt_rng.uniform_range(0.5, 20.0));
            let start = SimTime::from_secs(attempt_rng.below(1000));
            let pol = RetryPolicy {
                max_attempts: 5,
                base_delay: SimDuration::from_millis_f64(400.0),
                backoff_factor: 2.0,
                jitter: 0.3,
                attempt_timeout: Some(SimDuration::from_secs(4)),
            };
            let report = retry_until_deadline(&pol, start, budget, &mut rng, |_, _| {
                let took = SimDuration::from_secs_f64(attempt_rng.uniform_range(0.1, 8.0));
                if attempt_rng.chance(0.3) {
                    AttemptOutcome::Success(took)
                } else {
                    AttemptOutcome::Failure(took)
                }
            });
            assert!(
                report.finished_at <= start + budget,
                "seed {seed}: finished_at exceeded the deadline"
            );
            assert_eq!(report.total, report.finished_at.duration_since(start));
        }
    }

    #[test]
    fn deadline_cuts_off_long_attempt() {
        let report = retry_until_deadline(
            &policy(),
            SimTime::ZERO,
            SimDuration::from_secs(5),
            &mut rng(),
            |_, _| AttemptOutcome::Success(SimDuration::from_secs(30)),
        );
        assert!(!report.succeeded());
        assert_eq!(
            report.error,
            Some(RetryError::DeadlineExceeded { attempts: 1 })
        );
        assert_eq!(report.finished_at, SimTime::from_secs(5));
    }

    #[test]
    fn attempt_timeout_caps_each_try() {
        let pol = RetryPolicy {
            attempt_timeout: Some(SimDuration::from_secs(1)),
            jitter: 0.0,
            ..policy()
        };
        let report = retry_until_deadline(
            &pol,
            SimTime::ZERO,
            SimDuration::from_secs(600),
            &mut rng(),
            |attempt, _| {
                if attempt == 1 {
                    // Hangs for 100 s but is abandoned after 1 s.
                    AttemptOutcome::Failure(SimDuration::from_secs(100))
                } else {
                    AttemptOutcome::Success(SimDuration::from_millis_f64(200.0))
                }
            },
        );
        assert!(report.succeeded());
        assert_eq!(report.attempts, 2);
        // 1 (timeout) + 1 (backoff) + 0.2 (success).
        assert_eq!(report.total, SimDuration::from_millis_f64(2200.0));
    }

    #[test]
    fn slow_success_is_a_timeout() {
        let pol = RetryPolicy {
            attempt_timeout: Some(SimDuration::from_secs(1)),
            max_attempts: 1,
            ..policy()
        };
        // The attempt would succeed after 5 s, but it is abandoned at the
        // 1 s timeout — success never materializes.
        let report = retry_until_deadline(
            &pol,
            SimTime::ZERO,
            SimDuration::from_secs(60),
            &mut rng(),
            |_, _| AttemptOutcome::Success(SimDuration::from_secs(5)),
        );
        assert!(!report.succeeded());
        assert_eq!(report.total, SimDuration::from_secs(1));
    }

    #[test]
    fn backoff_grows_exponentially_without_jitter() {
        let pol = policy();
        let mut r = rng();
        assert_eq!(pol.backoff_delay(2, &mut r), SimDuration::from_secs(1));
        assert_eq!(pol.backoff_delay(3, &mut r), SimDuration::from_secs(2));
        assert_eq!(pol.backoff_delay(4, &mut r), SimDuration::from_secs(4));
    }

    /// Regression: jittered backoff is seeded, not wall-clock random —
    /// two streams built from the same seed replay the exact same delay
    /// schedule, and a different seed produces a different one.
    #[test]
    fn jittered_backoff_schedules_replay_for_identical_seeds() {
        let pol = RetryPolicy {
            jitter: 0.3,
            ..policy()
        };
        let schedule = |seed: u64| -> Vec<SimDuration> {
            let mut r = SeedFactory::new(seed).stream("retry-jitter");
            (2..=8).map(|a| pol.backoff_delay(a, &mut r)).collect()
        };
        assert_eq!(schedule(5), schedule(5), "same seed must replay");
        assert_ne!(schedule(5), schedule(6), "distinct seeds must diverge");
        // The jitter stays inside the documented ±30 % envelope.
        for (i, d) in schedule(5).iter().enumerate() {
            let nominal = pol.base_delay.as_secs_f64() * pol.backoff_factor.powi(i as i32);
            let f = d.as_secs_f64() / nominal;
            assert!((0.7..=1.3).contains(&f), "attempt {}: scale {f}", i + 2);
        }
        // The full retry loop inherits the property: identical seeds ⇒
        // identical report, bit for bit.
        let run = |seed: u64| {
            let mut r = SeedFactory::new(seed).stream("retry-jitter");
            retry_until_deadline(
                &pol,
                SimTime::ZERO,
                SimDuration::from_secs(60),
                &mut r,
                |_, _| AttemptOutcome::Failure(SimDuration::from_secs(1)),
            )
        };
        assert_eq!(run(5), run(5));
    }

    /// Boundary: an attempt that takes *exactly* the remaining budget is
    /// a success landing precisely on the deadline, not a cutoff.
    #[test]
    fn success_landing_exactly_on_deadline_counts() {
        let report = retry_until_deadline(
            &policy(),
            SimTime::from_secs(10),
            SimDuration::from_secs(5),
            &mut rng(),
            |_, _| AttemptOutcome::Success(SimDuration::from_secs(5)),
        );
        assert!(report.succeeded());
        assert_eq!(report.attempts, 1);
        assert_eq!(report.finished_at, SimTime::from_secs(15));
        assert_eq!(report.total, SimDuration::from_secs(5));
    }

    /// Boundary: a retry whose backoff sleep ends exactly at the instant
    /// a zero-length final attempt succeeds still lands on the deadline.
    #[test]
    fn retry_landing_exactly_on_deadline_counts() {
        // Attempt 1 fails after 2 s, backoff is 1 s, attempt 2 succeeds
        // after exactly the 2 s that remain of the 5 s budget.
        let report = retry_until_deadline(
            &policy(),
            SimTime::ZERO,
            SimDuration::from_secs(5),
            &mut rng(),
            |attempt, _| {
                if attempt == 1 {
                    AttemptOutcome::Failure(SimDuration::from_secs(2))
                } else {
                    AttemptOutcome::Success(SimDuration::from_secs(2))
                }
            },
        );
        assert!(report.succeeded());
        assert_eq!(report.attempts, 2);
        assert_eq!(report.finished_at, SimTime::from_secs(5));
    }

    /// Boundary: a zero budget admits only zero-length work — anything
    /// longer is cut off at the start instant with no time passing.
    #[test]
    fn zero_budget_deadline() {
        let start = SimTime::from_secs(42);
        let report =
            retry_until_deadline(&policy(), start, SimDuration::ZERO, &mut rng(), |_, _| {
                AttemptOutcome::Failure(SimDuration::from_secs(1))
            });
        assert!(!report.succeeded());
        assert_eq!(
            report.error,
            Some(RetryError::DeadlineExceeded { attempts: 1 })
        );
        assert_eq!(report.finished_at, start);
        assert_eq!(report.total, SimDuration::ZERO);

        // An instantaneous success fits inside a zero budget.
        let report =
            retry_until_deadline(&policy(), start, SimDuration::ZERO, &mut rng(), |_, _| {
                AttemptOutcome::Success(SimDuration::ZERO)
            });
        assert!(report.succeeded());
        assert_eq!(report.finished_at, start);
    }

    /// Boundary: backoff arithmetic near `SimDuration::MAX` saturates
    /// instead of overflowing, and the deadline cap still holds.
    #[test]
    fn backoff_overflow_near_duration_max_saturates() {
        let pol = RetryPolicy {
            max_attempts: 3,
            base_delay: SimDuration::MAX,
            backoff_factor: 1e18,
            jitter: 0.0,
            attempt_timeout: None,
        };
        // The nominal delay overflows any finite representation; the
        // policy must saturate rather than wrap or panic.
        let mut r = rng();
        assert_eq!(pol.backoff_delay(2, &mut r), SimDuration::MAX);
        assert_eq!(pol.backoff_delay(3, &mut r), SimDuration::MAX);

        // Inside the loop a saturated delay always exceeds the remaining
        // budget, so the retry gives up at the failed attempt.
        let budget = SimDuration::from_secs(30);
        let report = retry_until_deadline(&pol, SimTime::ZERO, budget, &mut rng(), |_, _| {
            AttemptOutcome::Failure(SimDuration::from_secs(1))
        });
        assert!(!report.succeeded());
        assert_eq!(
            report.error,
            Some(RetryError::DeadlineExceeded { attempts: 1 })
        );
        assert!(report.finished_at <= SimTime::ZERO + budget);
    }
}
