//! Compiled fault timelines.
//!
//! [`FaultInjector`] expands a [`FaultPlan`]'s recurrences over the
//! horizon into concrete [`FaultWindow`]s and exposes the two views the
//! platform needs: point queries (`is_down`, `throttle_factor`) for
//! layers consulting fault state, and an ordered transition list for the
//! simulation to schedule start/end edges as first-class events.

use vdap_sim::{SimDuration, SimTime};

use crate::plan::{FaultKind, FaultPlan};

/// One concrete activation of a fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// Failure mode.
    pub kind: FaultKind,
    /// Component label.
    pub target: String,
    /// Activation instant (inclusive).
    pub start: SimTime,
    /// Recovery instant (exclusive).
    pub end: SimTime,
}

impl FaultWindow {
    /// Whether the window covers `now`.
    #[must_use]
    pub fn active_at(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end
    }
}

/// Which edge of a window a transition marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEdge {
    /// The fault activates.
    Start,
    /// The fault clears.
    End,
}

/// One scheduled edge in the fault timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTransition {
    /// When the edge fires.
    pub at: SimTime,
    /// Start or end.
    pub edge: FaultEdge,
    /// Index into [`FaultInjector::windows`].
    pub window: usize,
}

/// A compiled, queryable fault timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    windows: Vec<FaultWindow>,
    horizon: SimDuration,
}

impl FaultInjector {
    /// Compiles `plan`, expanding each recurring spec into every
    /// activation whose start falls inside the horizon. Windows are
    /// sorted by `(start, end, target)` so iteration order — and
    /// everything derived from it — is deterministic.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        let mut windows = Vec::new();
        for spec in plan.faults() {
            let mut start = spec.start;
            loop {
                if start.elapsed() >= plan.horizon() {
                    break;
                }
                windows.push(FaultWindow {
                    kind: spec.kind,
                    target: spec.target.clone(),
                    start,
                    end: start + spec.duration,
                });
                match spec.recurrence {
                    Some(period) => start += period,
                    None => break,
                }
            }
        }
        windows.sort_by(|a, b| {
            (a.start, a.end, a.target.as_str()).cmp(&(b.start, b.end, b.target.as_str()))
        });
        FaultInjector {
            windows,
            horizon: plan.horizon(),
        }
    }

    /// All concrete fault windows, ordered by start time.
    #[must_use]
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The plan horizon.
    #[must_use]
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// Windows covering `now`.
    pub fn active_at(&self, now: SimTime) -> impl Iterator<Item = &FaultWindow> {
        self.windows.iter().filter(move |w| w.active_at(now))
    }

    /// Whether a hard fault (slot failure, link outage, storage write
    /// error, service crash) has `target` unavailable at `now`.
    #[must_use]
    pub fn is_down(&self, target: &str, now: SimTime) -> bool {
        self.active_at(now)
            .any(|w| w.target == target && w.kind.is_hard())
    }

    /// Combined slowdown factor for `target` at `now`: the product of
    /// all active throttle/bandwidth-collapse factors, 1.0 when none.
    #[must_use]
    pub fn throttle_factor(&self, target: &str, now: SimTime) -> f64 {
        self.active_at(now)
            .filter(|w| w.target == target)
            .map(|w| match w.kind {
                FaultKind::SlotThrottle { factor } | FaultKind::BandwidthCollapse { factor } => {
                    factor
                }
                _ => 1.0,
            })
            .product()
    }

    /// Effective admission-quota multiplier for a tenant label at `now`:
    /// the product of all active [`FaultKind::TenantQuotaFlap`] factors
    /// on `target`, 1.0 when no flap is active.
    #[must_use]
    pub fn quota_factor(&self, target: &str, now: SimTime) -> f64 {
        self.active_at(now)
            .filter(|w| w.target == target)
            .map(|w| match w.kind {
                FaultKind::TenantQuotaFlap { factor } => factor,
                _ => 1.0,
            })
            .product()
    }

    /// Effective write-throughput multiplier for a storage label at
    /// `now`: the product of all active [`FaultKind::StorageBrownout`]
    /// factors on `target`, 1.0 when no brownout is active. Brownouts
    /// are soft — the tier keeps accepting writes, it just drains them
    /// slower — so they never show up in `is_down`.
    #[must_use]
    pub fn brownout_factor(&self, target: &str, now: SimTime) -> f64 {
        self.active_at(now)
            .filter(|w| w.target == target)
            .map(|w| match w.kind {
                FaultKind::StorageBrownout { factor } => factor,
                _ => 1.0,
            })
            .product()
    }

    /// Whether a [`FaultKind::RegionHandoffStorm`] covers `target` at
    /// `now`. Storms are soft — coverage exists but every request pays
    /// the mobility handoff cost — so they never show up in `is_down`.
    #[must_use]
    pub fn handoff_storm(&self, target: &str, now: SimTime) -> bool {
        self.active_at(now)
            .any(|w| w.target == target && matches!(w.kind, FaultKind::RegionHandoffStorm))
    }

    /// Scripted [`FaultKind::EngineCrash`] epochs on `target`, ascending
    /// and deduplicated. The supervised fleet engine kills the run at
    /// the first checkpoint barrier whose index reaches each epoch.
    #[must_use]
    pub fn engine_crashes(&self, target: &str) -> Vec<u64> {
        let mut epochs: Vec<u64> = self
            .windows
            .iter()
            .filter(|w| w.target == target)
            .filter_map(|w| match w.kind {
                FaultKind::EngineCrash { epoch } => Some(epoch),
                _ => None,
            })
            .collect();
        epochs.sort_unstable();
        epochs.dedup();
        epochs
    }

    /// Whether a [`FaultKind::SnapshotTornWrite`] covers `target` at
    /// `now` — the snapshot bytes written at that instant get truncated.
    #[must_use]
    pub fn snapshot_torn(&self, target: &str, now: SimTime) -> bool {
        self.active_at(now)
            .any(|w| w.target == target && matches!(w.kind, FaultKind::SnapshotTornWrite))
    }

    /// Whether a [`FaultKind::SnapshotCorruption`] covers `target` at
    /// `now` — one byte of the snapshot written at that instant flips.
    #[must_use]
    pub fn snapshot_corrupt(&self, target: &str, now: SimTime) -> bool {
        self.active_at(now)
            .any(|w| w.target == target && matches!(w.kind, FaultKind::SnapshotCorruption))
    }

    /// When the earliest currently-active hard fault on `target` clears,
    /// or `None` when the target is up at `now`.
    #[must_use]
    pub fn next_recovery(&self, target: &str, now: SimTime) -> Option<SimTime> {
        self.active_at(now)
            .filter(|w| w.target == target && w.kind.is_hard())
            .map(|w| w.end)
            .max()
    }

    /// Every start/end edge in time order (ties: ends before starts,
    /// then window index), ready to be scheduled as simulation events.
    #[must_use]
    pub fn transitions(&self) -> Vec<FaultTransition> {
        let mut edges: Vec<FaultTransition> = Vec::with_capacity(self.windows.len() * 2);
        for (i, w) in self.windows.iter().enumerate() {
            edges.push(FaultTransition {
                at: w.start,
                edge: FaultEdge::Start,
                window: i,
            });
            edges.push(FaultTransition {
                at: w.end,
                edge: FaultEdge::End,
                window: i,
            });
        }
        edges.sort_by_key(|t| (t.at, t.edge == FaultEdge::Start, t.window));
        edges
    }

    /// The first transition strictly after `now`, if any.
    #[must_use]
    pub fn next_transition_after(&self, now: SimTime) -> Option<SimTime> {
        self.transitions()
            .into_iter()
            .map(|t| t.at)
            .filter(|at| *at > now)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;

    fn one_shot() -> FaultPlan {
        FaultPlan::new(SimDuration::from_secs(100)).with_fault(FaultSpec::new(
            FaultKind::SlotFailure,
            "gpu",
            SimTime::from_secs(10),
            SimDuration::from_secs(5),
        ))
    }

    #[test]
    fn window_edges_are_half_open() {
        let inj = one_shot().compile();
        assert!(!inj.is_down("gpu", SimTime::from_secs(9)));
        assert!(inj.is_down("gpu", SimTime::from_secs(10)));
        assert!(inj.is_down("gpu", SimTime::from_nanos(14_999_999_999)));
        assert!(!inj.is_down("gpu", SimTime::from_secs(15)));
        assert!(!inj.is_down("cpu", SimTime::from_secs(12)));
    }

    #[test]
    fn recurrence_expands_within_horizon() {
        let plan = FaultPlan::new(SimDuration::from_secs(100)).with_fault(
            FaultSpec::new(
                FaultKind::LinkOutage,
                "lte",
                SimTime::from_secs(10),
                SimDuration::from_secs(2),
            )
            .recurring_every(SimDuration::from_secs(30)),
        );
        let inj = plan.compile();
        // Starts at 10, 40, 70 (100 is outside the horizon).
        assert_eq!(inj.windows().len(), 3);
        assert!(inj.is_down("lte", SimTime::from_secs(41)));
        assert!(!inj.is_down("lte", SimTime::from_secs(50)));
    }

    #[test]
    fn throttle_factors_compose() {
        let plan = FaultPlan::new(SimDuration::from_secs(100))
            .with_fault(FaultSpec::new(
                FaultKind::SlotThrottle { factor: 0.5 },
                "gpu",
                SimTime::from_secs(0),
                SimDuration::from_secs(50),
            ))
            .with_fault(FaultSpec::new(
                FaultKind::SlotThrottle { factor: 0.5 },
                "gpu",
                SimTime::from_secs(20),
                SimDuration::from_secs(10),
            ));
        let inj = plan.compile();
        assert!((inj.throttle_factor("gpu", SimTime::from_secs(10)) - 0.5).abs() < 1e-12);
        assert!((inj.throttle_factor("gpu", SimTime::from_secs(25)) - 0.25).abs() < 1e-12);
        assert!((inj.throttle_factor("gpu", SimTime::from_secs(60)) - 1.0).abs() < 1e-12);
        // Throttling is soft: the slot is degraded, not down.
        assert!(!inj.is_down("gpu", SimTime::from_secs(10)));
    }

    #[test]
    fn transitions_are_ordered_and_paired() {
        let inj = one_shot().compile();
        let ts = inj.transitions();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].edge, FaultEdge::Start);
        assert_eq!(ts[0].at, SimTime::from_secs(10));
        assert_eq!(ts[1].edge, FaultEdge::End);
        assert_eq!(ts[1].at, SimTime::from_secs(15));
        assert_eq!(
            inj.next_transition_after(SimTime::from_secs(10)),
            Some(SimTime::from_secs(15))
        );
        assert_eq!(inj.next_transition_after(SimTime::from_secs(15)), None);
    }

    #[test]
    fn quota_factors_compose_and_default_to_one() {
        let plan = FaultPlan::new(SimDuration::from_secs(100))
            .with_fault(FaultSpec::new(
                FaultKind::TenantQuotaFlap { factor: 0.5 },
                "tenant0",
                SimTime::from_secs(0),
                SimDuration::from_secs(50),
            ))
            .with_fault(FaultSpec::new(
                FaultKind::TenantQuotaFlap { factor: 0.4 },
                "tenant0",
                SimTime::from_secs(20),
                SimDuration::from_secs(10),
            ));
        let inj = plan.compile();
        assert!((inj.quota_factor("tenant0", SimTime::from_secs(10)) - 0.5).abs() < 1e-12);
        assert!((inj.quota_factor("tenant0", SimTime::from_secs(25)) - 0.2).abs() < 1e-12);
        assert!((inj.quota_factor("tenant0", SimTime::from_secs(60)) - 1.0).abs() < 1e-12);
        assert!((inj.quota_factor("tenant1", SimTime::from_secs(25)) - 1.0).abs() < 1e-12);
        // A quota flap degrades admission; the tenant is not down.
        assert!(!inj.is_down("tenant0", SimTime::from_secs(10)));
    }

    #[test]
    fn handoff_storms_are_soft_faults() {
        let plan = FaultPlan::new(SimDuration::from_secs(100)).with_fault(FaultSpec::new(
            FaultKind::RegionHandoffStorm,
            "region2/handoff",
            SimTime::from_secs(10),
            SimDuration::from_secs(5),
        ));
        let inj = plan.compile();
        assert!(inj.handoff_storm("region2/handoff", SimTime::from_secs(12)));
        assert!(!inj.handoff_storm("region2/handoff", SimTime::from_secs(15)));
        assert!(!inj.handoff_storm("region3/handoff", SimTime::from_secs(12)));
        assert!(!inj.is_down("region2/handoff", SimTime::from_secs(12)));
    }

    #[test]
    fn edge_node_crash_is_hard() {
        let plan = FaultPlan::new(SimDuration::from_secs(100)).with_fault(FaultSpec::new(
            FaultKind::EdgeNodeCrash,
            "xedge/node1",
            SimTime::from_secs(10),
            SimDuration::from_secs(5),
        ));
        let inj = plan.compile();
        assert!(inj.is_down("xedge/node1", SimTime::from_secs(10)));
        assert!(!inj.is_down("xedge/node1", SimTime::from_secs(15)));
        assert_eq!(
            inj.next_recovery("xedge/node1", SimTime::from_secs(12)),
            Some(SimTime::from_secs(15))
        );
    }

    #[test]
    fn brownout_factors_compose_and_stay_soft() {
        let plan = FaultPlan::new(SimDuration::from_secs(100))
            .with_fault(FaultSpec::new(
                FaultKind::StorageBrownout { factor: 0.5 },
                "ddi/store",
                SimTime::from_secs(0),
                SimDuration::from_secs(50),
            ))
            .with_fault(FaultSpec::new(
                FaultKind::StorageBrownout { factor: 0.2 },
                "ddi/store",
                SimTime::from_secs(20),
                SimDuration::from_secs(10),
            ));
        let inj = plan.compile();
        assert!((inj.brownout_factor("ddi/store", SimTime::from_secs(10)) - 0.5).abs() < 1e-12);
        assert!((inj.brownout_factor("ddi/store", SimTime::from_secs(25)) - 0.1).abs() < 1e-12);
        assert!((inj.brownout_factor("ddi/store", SimTime::from_secs(60)) - 1.0).abs() < 1e-12);
        assert!((inj.brownout_factor("other", SimTime::from_secs(25)) - 1.0).abs() < 1e-12);
        // A brownout slows the tier down; it is not an outage.
        assert!(!inj.is_down("ddi/store", SimTime::from_secs(10)));
    }

    #[test]
    fn collector_outage_is_hard() {
        let plan = FaultPlan::new(SimDuration::from_secs(100)).with_fault(FaultSpec::new(
            FaultKind::CollectorOutage,
            "region3/collector",
            SimTime::from_secs(10),
            SimDuration::from_secs(5),
        ));
        let inj = plan.compile();
        assert!(inj.is_down("region3/collector", SimTime::from_secs(10)));
        assert!(!inj.is_down("region3/collector", SimTime::from_secs(15)));
        assert_eq!(
            inj.next_recovery("region3/collector", SimTime::from_secs(12)),
            Some(SimTime::from_secs(15))
        );
    }

    #[test]
    fn checkpoint_chaos_kinds_stay_soft_and_queryable() {
        let plan = FaultPlan::new(SimDuration::from_secs(100))
            .with_fault(FaultSpec::new(
                FaultKind::EngineCrash { epoch: 20 },
                "engine",
                SimTime::from_secs(10),
                SimDuration::from_millis(500),
            ))
            .with_fault(FaultSpec::new(
                FaultKind::SnapshotTornWrite,
                "ckpt/store",
                SimTime::from_secs(7),
                SimDuration::from_secs(2),
            ))
            .with_fault(FaultSpec::new(
                FaultKind::SnapshotCorruption,
                "ckpt/store",
                SimTime::from_secs(30),
                SimDuration::from_secs(1),
            ));
        let inj = plan.compile();
        assert_eq!(inj.engine_crashes("engine"), vec![20]);
        assert!(inj.engine_crashes("other").is_empty());
        assert!(inj.snapshot_torn("ckpt/store", SimTime::from_secs(8)));
        assert!(!inj.snapshot_torn("ckpt/store", SimTime::from_secs(9)));
        assert!(inj.snapshot_corrupt("ckpt/store", SimTime::from_nanos(30_500_000_000)));
        assert!(!inj.snapshot_corrupt("ckpt/store", SimTime::from_secs(8)));
        // None of the checkpoint chaos kinds take a component down.
        assert!(!inj.is_down("engine", SimTime::from_secs(10)));
        assert!(!inj.is_down("ckpt/store", SimTime::from_secs(8)));
    }

    #[test]
    fn next_recovery_reports_open_window_end() {
        let inj = one_shot().compile();
        assert_eq!(
            inj.next_recovery("gpu", SimTime::from_secs(12)),
            Some(SimTime::from_secs(15))
        );
        assert_eq!(inj.next_recovery("gpu", SimTime::from_secs(20)), None);
    }
}
