//! # vdap-fault — deterministic fault injection and recovery policies
//!
//! OpenVDAP's premise is that safety-critical vehicle workloads keep
//! running when the environment misbehaves: the paper's LTE drive test
//! (Figure 2) measures real handoff outages, and the DSF (§IV-B) exists
//! precisely to re-plan when resources change. This crate supplies the
//! adverse conditions: a seeded [`FaultPlan`] describes *what* breaks
//! (compute slots, links, storage, services), *when* (start, duration,
//! recurrence), and a [`FaultInjector`] compiles that plan into an
//! ordered timeline whose transitions the simulation schedules as
//! first-class events. Everything derives from a [`vdap_sim::RngStream`],
//! so a chaos run replays bit-identically from its scenario seed.
//!
//! Recovery lives next to injection: [`RetryPolicy`] is the shared
//! exponential-backoff-with-jitter policy used by DDI uploads and
//! EdgeOS service migration, and it is deadline-aware — a retried
//! transfer never exceeds the task's deadline budget.
//!
//! ```
//! use vdap_fault::{FaultKind, FaultPlan, FaultSpec};
//! use vdap_sim::{SimDuration, SimTime};
//!
//! let plan = FaultPlan::new(SimDuration::from_secs(120))
//!     .with_fault(FaultSpec::new(
//!         FaultKind::SlotFailure,
//!         "slot1",
//!         SimTime::from_secs(40),
//!         SimDuration::from_secs(30),
//!     ));
//! let injector = plan.compile();
//! assert!(injector.is_down("slot1", SimTime::from_secs(50)));
//! assert!(!injector.is_down("slot1", SimTime::from_secs(80)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod injector;
mod plan;
mod retry;

pub use injector::{FaultEdge, FaultInjector, FaultTransition, FaultWindow};
pub use plan::{ChaosProfile, FaultKind, FaultPlan, FaultSpec};
pub use retry::{retry_until_deadline, AttemptOutcome, RetryError, RetryPolicy, RetryReport};
