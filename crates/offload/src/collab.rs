//! V2V collaboration: shared result caching (§III-C).
//!
//! "Though the collaboration of vehicles can save computing power by
//! avoiding executing unnecessary repeating operations, a collaboration
//! mechanism does not exist in the literature." This module provides
//! one: vehicles publish processed results (e.g. "road segment 17 scanned
//! for the target plate, nothing found") keyed by task and road tile;
//! followers within DSRC range reuse fresh results instead of
//! recomputing. Staleness bounds how long a result stays trustworthy.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use vdap_sim::{SimDuration, SimTime};

/// A road tile (quantized position along the route).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tile(pub i64);

impl Tile {
    /// Tile size in miles.
    pub const SIZE_MILES: f64 = 0.1;

    /// The tile containing a route position.
    #[must_use]
    pub fn containing(miles: f64) -> Tile {
        Tile((miles / Tile::SIZE_MILES).floor() as i64)
    }
}

/// Cache key: which computation over which tile.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResultKey {
    /// Task identity, e.g. `"amber-plate-scan"`.
    pub task: String,
    /// The covered tile.
    pub tile: Tile,
}

/// A shared computation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedResult {
    /// Producing vehicle (pseudonymous id).
    pub producer: u64,
    /// When the computation ran.
    pub produced_at: SimTime,
    /// Opaque result payload.
    pub payload: Vec<u8>,
}

/// Statistics for the collaboration experiment (E10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollabStats {
    /// Lookups served from a fresh shared result.
    pub hits: u64,
    /// Lookups that found nothing (or only stale entries).
    pub misses: u64,
    /// Results published.
    pub published: u64,
    /// Entries dropped for staleness during lookups.
    pub expired: u64,
}

impl CollabStats {
    /// Fraction of lookups avoided recomputation.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The shared result cache one vehicle maintains from DSRC gossip.
#[derive(Debug, Clone)]
pub struct ResultCache {
    entries: HashMap<ResultKey, SharedResult>,
    freshness: SimDuration,
    stats: CollabStats,
}

impl ResultCache {
    /// Creates a cache whose entries stay valid for `freshness`.
    ///
    /// # Panics
    ///
    /// Panics when `freshness` is zero.
    #[must_use]
    pub fn new(freshness: SimDuration) -> Self {
        assert!(!freshness.is_zero(), "freshness bound must be positive");
        ResultCache {
            entries: HashMap::new(),
            freshness,
            stats: CollabStats::default(),
        }
    }

    /// The freshness bound.
    #[must_use]
    pub fn freshness(&self) -> SimDuration {
        self.freshness
    }

    /// Cache statistics.
    #[must_use]
    pub fn stats(&self) -> CollabStats {
        self.stats
    }

    /// Number of cached entries (fresh or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Publishes a locally computed (or gossip-received) result. Newer
    /// results replace older ones for the same key.
    pub fn publish(&mut self, key: ResultKey, result: SharedResult) {
        self.stats.published += 1;
        match self.entries.get(&key) {
            Some(existing) if existing.produced_at >= result.produced_at => {}
            _ => {
                self.entries.insert(key, result);
            }
        }
    }

    /// Looks up a fresh result; stale entries are evicted and count as
    /// misses.
    pub fn lookup(&mut self, key: &ResultKey, now: SimTime) -> Option<SharedResult> {
        match self.entries.get(key) {
            Some(r) if now.duration_since(r.produced_at) <= self.freshness => {
                self.stats.hits += 1;
                Some(r.clone())
            }
            Some(_) => {
                self.entries.remove(key);
                self.stats.expired += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Merges gossip from a neighbour's cache (e.g. on DSRC contact):
    /// keeps the newer result per key.
    pub fn merge_from(&mut self, other: &ResultCache) {
        for (k, v) in &other.entries {
            self.publish(k.clone(), v.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tile: i64) -> ResultKey {
        ResultKey {
            task: "amber-plate-scan".into(),
            tile: Tile(tile),
        }
    }

    fn result(producer: u64, at_secs: u64) -> SharedResult {
        SharedResult {
            producer,
            produced_at: SimTime::from_secs(at_secs),
            payload: vec![0],
        }
    }

    fn cache() -> ResultCache {
        ResultCache::new(SimDuration::from_secs(60))
    }

    #[test]
    fn fresh_results_hit() {
        let mut c = cache();
        c.publish(key(1), result(7, 100));
        let hit = c.lookup(&key(1), SimTime::from_secs(130));
        assert_eq!(hit.unwrap().producer, 7);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn stale_results_expire() {
        let mut c = cache();
        c.publish(key(1), result(7, 100));
        assert!(c.lookup(&key(1), SimTime::from_secs(161)).is_none());
        assert_eq!(c.stats().expired, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn newer_results_replace_older() {
        let mut c = cache();
        c.publish(key(1), result(1, 100));
        c.publish(key(1), result(2, 200));
        c.publish(key(1), result(3, 150)); // older than current: ignored
        let r = c.lookup(&key(1), SimTime::from_secs(210)).unwrap();
        assert_eq!(r.producer, 2);
    }

    #[test]
    fn tiles_quantize_positions() {
        assert_eq!(Tile::containing(0.0), Tile(0));
        assert_eq!(Tile::containing(0.09), Tile(0));
        assert_eq!(Tile::containing(0.11), Tile(1));
        assert_eq!(Tile::containing(-0.05), Tile(-1));
    }

    #[test]
    fn gossip_merge_prefers_newer() {
        let mut a = cache();
        let mut b = cache();
        a.publish(key(1), result(1, 100));
        b.publish(key(1), result(2, 150));
        b.publish(key(2), result(2, 100));
        a.merge_from(&b);
        assert_eq!(
            a.lookup(&key(1), SimTime::from_secs(160)).unwrap().producer,
            2
        );
        assert!(a.lookup(&key(2), SimTime::from_secs(160)).is_some());
    }

    #[test]
    fn hit_rate_math() {
        let mut c = cache();
        c.publish(key(1), result(1, 0));
        c.lookup(&key(1), SimTime::from_secs(10));
        c.lookup(&key(2), SimTime::from_secs(10));
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache().stats().hit_rate(), 0.0);
    }

    #[test]
    fn convoy_saves_recomputation() {
        // Three vehicles traverse the same 20 tiles one minute apart;
        // followers should reuse almost every leader result.
        let mut shared = cache();
        let mut computations = 0u64;
        for (vehicle, start) in [(1u64, 0u64), (2, 30), (3, 50)] {
            for tile in 0..20i64 {
                let now = SimTime::from_secs(start + tile as u64);
                let k = key(tile);
                if shared.lookup(&k, now).is_none() {
                    computations += 1;
                    shared.publish(
                        k,
                        SharedResult {
                            producer: vehicle,
                            produced_at: now,
                            payload: vec![],
                        },
                    );
                }
            }
        }
        assert_eq!(computations, 20, "followers must reuse leader results");
        assert!(shared.stats().hit_rate() > 0.6);
    }
}
