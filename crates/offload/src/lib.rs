//! # vdap-offload — workload offloading and scheduling strategies
//!
//! The decision layer between the vehicle and its surroundings: the
//! three §III computing architectures as comparable strategies
//! (cloud-only, in-vehicle-only, edge-based), an exhaustive pipeline
//! placement planner for the §IV-C "where should each sub-workload run"
//! problem, V2V collaboration via a freshness-bounded shared result
//! cache, and the cost accounting every comparison uses.
//!
//! ```
//! use vdap_edgeos::{Environment, Objective};
//! use vdap_hw::{catalog, VcuBoard};
//! use vdap_net::NetTopology;
//! use vdap_offload::{run_strategy, CloudOnly, EdgeBased, InVehicleOnly, OffloadStrategy};
//! use vdap_models::zoo;
//! use vdap_sim::SimTime;
//!
//! let net = NetTopology::reference();
//! let board = VcuBoard::reference_design();
//! let edge = catalog::xedge_server();
//! let cloud = catalog::cloud_server();
//! let env = Environment {
//!     net: &net, board: &board, edge: &edge, cloud: &cloud,
//!     edge_load: 1.0, cloud_load: 1.0, now: SimTime::ZERO,
//! };
//! let stages = [zoo::lane_detection()];
//! let edge_cost = run_strategy(&EdgeBased::default(), &stages, &env, 1).unwrap();
//! let cloud_cost = run_strategy(&CloudOnly, &stages, &env, 1).unwrap();
//! assert!(edge_cost.latency <= cloud_cost.latency);
//! # let _ = InVehicleOnly.name();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod collab;
mod contention;
mod cost;
mod planner;
mod strategy;

pub use collab::{CollabStats, ResultCache, ResultKey, SharedResult, Tile};
pub use contention::ContentionModel;
pub use cost::CostReport;
pub use planner::{optimal_placement, Plan, PlanError, MAX_EXHAUSTIVE_STAGES};
pub use strategy::{
    place_degradable, price, run_strategy, CloudOnly, DegradedPlacement, EdgeBased, FallbackReason,
    InVehicleOnly, OffloadStrategy,
};
