//! The pipeline placement planner.
//!
//! §IV-C's open problem — "how to dynamically schedule the sub-workloads
//! to achieve the best end-to-end latency in terms of network quality and
//! vehicle residual compute power" — solved exactly for the pipeline
//! sizes OpenVDAP services have (a handful of stages): enumerate every
//! `{vehicle, edge, cloud}` placement, price each with the elastic
//! manager's estimator, and return the optimum.

use vdap_edgeos::{
    ElasticManager, Environment, Objective, Pipeline, PipelineEstimate, PipelineStage,
};
use vdap_hw::ComputeWorkload;
use vdap_net::Site;
use vdap_sim::SimDuration;

/// Upper bound on exhaustively searchable stages (3^12 ≈ 531k plans).
pub const MAX_EXHAUSTIVE_STAGES: usize = 12;

/// The planner's result: the chosen placement and its estimate, plus how
/// many placements were evaluated.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The winning pipeline (stages pinned to sites).
    pub pipeline: Pipeline,
    /// Its cost estimate.
    pub estimate: PipelineEstimate,
    /// Number of candidate placements evaluated.
    pub candidates: usize,
}

/// Error from planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// No stages were provided.
    EmptyPipeline,
    /// Too many stages for exhaustive search.
    TooManyStages {
        /// Stages requested.
        got: usize,
    },
    /// No placement met the deadline.
    NoFeasiblePlacement,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::EmptyPipeline => write!(f, "no stages to place"),
            PlanError::TooManyStages { got } => write!(
                f,
                "{got} stages exceed the exhaustive-search bound of {MAX_EXHAUSTIVE_STAGES}"
            ),
            PlanError::NoFeasiblePlacement => write!(f, "no placement meets the deadline"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Exhaustively finds the optimal placement of `stages` under
/// `objective`, subject to an optional deadline.
///
/// # Errors
///
/// Returns [`PlanError`] for empty/oversized pipelines or when no
/// placement is feasible.
pub fn optimal_placement(
    name: &str,
    stages: &[ComputeWorkload],
    env: &Environment<'_>,
    objective: Objective,
    deadline: Option<SimDuration>,
) -> Result<Plan, PlanError> {
    if stages.is_empty() {
        return Err(PlanError::EmptyPipeline);
    }
    if stages.len() > MAX_EXHAUSTIVE_STAGES {
        return Err(PlanError::TooManyStages { got: stages.len() });
    }
    let estimator = ElasticManager::new();
    let sites = Site::ALL;
    let total = 3usize.pow(stages.len() as u32);
    let mut best: Option<(Pipeline, PipelineEstimate)> = None;
    for code in 0..total {
        let mut c = code;
        let placed: Vec<PipelineStage> = stages
            .iter()
            .map(|w| {
                let site = sites[c % 3];
                c /= 3;
                PipelineStage {
                    workload: w.clone(),
                    site,
                }
            })
            .collect();
        let pipeline = Pipeline::new(format!("{name}#{code}"), placed);
        let estimate = estimator.estimate(&pipeline, env);
        if let Some(d) = deadline {
            if estimate.latency > d {
                continue;
            }
        }
        let better = match &best {
            None => true,
            Some((_, b)) => match objective {
                Objective::MinLatency => estimate.latency < b.latency,
                Objective::MinVehicleEnergy => estimate.vehicle_energy_j < b.vehicle_energy_j,
            },
        };
        if better {
            best = Some((pipeline, estimate));
        }
    }
    let (pipeline, estimate) = best.ok_or(PlanError::NoFeasiblePlacement)?;
    Ok(Plan {
        pipeline,
        estimate,
        candidates: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdap_hw::{catalog, TaskClass, VcuBoard};
    use vdap_net::{LinkSpec, NetTopology};
    use vdap_sim::SimTime;

    struct Fixture {
        net: NetTopology,
        board: VcuBoard,
        edge: vdap_hw::ProcessorSpec,
        cloud: vdap_hw::ProcessorSpec,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                net: NetTopology::reference(),
                board: VcuBoard::reference_design(),
                edge: catalog::xedge_server(),
                cloud: catalog::cloud_server(),
            }
        }
        fn env(&self) -> Environment<'_> {
            Environment {
                net: &self.net,
                board: &self.board,
                edge: &self.edge,
                cloud: &self.cloud,
                edge_load: 1.0,
                cloud_load: 1.0,
                now: SimTime::ZERO,
            }
        }
    }

    fn detection_stages() -> Vec<ComputeWorkload> {
        let frame = 1280 * 720 * 3 / 2;
        vec![
            ComputeWorkload::new("motion", TaskClass::VisionKernel)
                .with_gflops(0.05)
                .with_input_bytes(frame)
                .with_output_bytes(frame / 8)
                .with_parallel_fraction(0.95),
            ComputeWorkload::new("detect", TaskClass::VisionKernel)
                .with_gflops(0.8)
                .with_input_bytes(frame / 8)
                .with_output_bytes(32 * 1024)
                .with_parallel_fraction(0.95),
            ComputeWorkload::new("recognize", TaskClass::DenseLinearAlgebra)
                .with_gflops(4.0)
                .with_input_bytes(32 * 1024)
                .with_output_bytes(256)
                .with_parallel_fraction(0.97),
        ]
    }

    #[test]
    fn planner_explores_all_placements() {
        let fx = Fixture::new();
        let plan = optimal_placement(
            "lpr",
            &detection_stages(),
            &fx.env(),
            Objective::MinLatency,
            None,
        )
        .unwrap();
        assert_eq!(plan.candidates, 27);
        assert!(!plan.pipeline.stages.is_empty());
    }

    #[test]
    fn planner_beats_or_matches_fixed_pipelines() {
        // The exhaustive optimum can never lose to any fixed placement.
        let fx = Fixture::new();
        let env = fx.env();
        let stages = detection_stages();
        let plan = optimal_placement("lpr", &stages, &env, Objective::MinLatency, None).unwrap();
        let estimator = ElasticManager::new();
        for fixed_site in Site::ALL {
            let fixed = Pipeline::new(
                "fixed",
                stages
                    .iter()
                    .map(|w| PipelineStage {
                        workload: w.clone(),
                        site: fixed_site,
                    })
                    .collect(),
            );
            let e = estimator.estimate(&fixed, &env);
            assert!(
                plan.estimate.latency <= e.latency,
                "optimum {} lost to all-{fixed_site} {}",
                plan.estimate.latency,
                e.latency
            );
        }
    }

    #[test]
    fn dead_network_keeps_everything_onboard() {
        let mut fx = Fixture::new();
        fx.net.set_vehicle_edge(LinkSpec::dsrc().scaled(0.0001));
        fx.net.set_vehicle_cloud(LinkSpec::lte().scaled(0.0001));
        let plan = optimal_placement(
            "lpr",
            &detection_stages(),
            &fx.env(),
            Objective::MinLatency,
            None,
        )
        .unwrap();
        assert!(plan.pipeline.is_fully_onboard());
    }

    #[test]
    fn deadline_filters_placements() {
        let mut fx = Fixture::new();
        fx.net.set_vehicle_edge(LinkSpec::dsrc().scaled(0.0001));
        fx.net.set_vehicle_cloud(LinkSpec::lte().scaled(0.0001));
        // Saturate the board too: nothing can meet 1 µs.
        let err = optimal_placement(
            "lpr",
            &detection_stages(),
            &fx.env(),
            Objective::MinLatency,
            Some(SimDuration::from_micros(1)),
        )
        .unwrap_err();
        assert_eq!(err, PlanError::NoFeasiblePlacement);
    }

    #[test]
    fn empty_and_oversized_inputs_rejected() {
        let fx = Fixture::new();
        assert_eq!(
            optimal_placement("x", &[], &fx.env(), Objective::MinLatency, None).unwrap_err(),
            PlanError::EmptyPipeline
        );
        let many: Vec<ComputeWorkload> = (0..13)
            .map(|i| {
                ComputeWorkload::new(format!("s{i}"), TaskClass::ControlLogic).with_gflops(0.01)
            })
            .collect();
        assert!(matches!(
            optimal_placement("x", &many, &fx.env(), Objective::MinLatency, None),
            Err(PlanError::TooManyStages { got: 13 })
        ));
    }

    #[test]
    fn energy_objective_changes_the_answer() {
        let fx = Fixture::new();
        let env = fx.env();
        let stages = detection_stages();
        let lat = optimal_placement("x", &stages, &env, Objective::MinLatency, None).unwrap();
        let eng = optimal_placement("x", &stages, &env, Objective::MinVehicleEnergy, None).unwrap();
        assert!(eng.estimate.vehicle_energy_j <= lat.estimate.vehicle_energy_j);
    }
}
