//! Shared-edge contention: load-dependent service time.
//!
//! A single XEdge server fronting a fleet does not serve every vehicle
//! at nominal speed. Rather than simulate the server's scheduler, the
//! fleet engine prices contention with a [`ContentionModel`]: a convex,
//! deterministic map from instantaneous in-flight requests to a service
//! time multiplier. Light load costs almost nothing, saturation doubles
//! service time, and overload degrades linearly (every extra concurrent
//! request past capacity stretches everyone's service proportionally),
//! capped so pathological backlogs cannot produce absurd latencies.

use serde::{Deserialize, Serialize};

/// Deterministic load → service-time-multiplier curve for a shared
/// server.
///
/// With utilization `rho = in_flight / capacity`:
///
/// * `rho <= 1`: multiplier is `1 + rho²` (convex ramp, 1.0 at idle,
///   2.0 at saturation);
/// * `rho > 1`: multiplier is `2 * rho` (linear overload — continuous
///   with the ramp at `rho = 1`);
/// * the result never exceeds `max_multiplier`.
///
/// # Examples
///
/// ```
/// use vdap_offload::ContentionModel;
///
/// let edge = ContentionModel::new(8);
/// assert_eq!(edge.service_multiplier(0), 1.0);
/// assert_eq!(edge.service_multiplier(8), 2.0);   // saturated
/// assert_eq!(edge.service_multiplier(16), 4.0);  // 2x overloaded
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    capacity: u32,
    max_multiplier: f64,
}

impl ContentionModel {
    /// Default ceiling on the service-time multiplier.
    pub const DEFAULT_MAX_MULTIPLIER: f64 = 16.0;

    /// Creates a model for a server that runs `capacity` concurrent
    /// requests at nominal speed.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ContentionModel {
            capacity,
            max_multiplier: Self::DEFAULT_MAX_MULTIPLIER,
        }
    }

    /// Replaces the multiplier ceiling.
    ///
    /// # Panics
    ///
    /// Panics when `cap` is below 1.
    #[must_use]
    pub fn with_max_multiplier(mut self, cap: f64) -> Self {
        assert!(cap >= 1.0, "multiplier cap must be at least 1");
        self.max_multiplier = cap;
        self
    }

    /// Nominal concurrent-request capacity.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The same curve over a resized server (elastic lane pools): the
    /// multiplier ceiling carries over, only the capacity changes.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn resized(&self, capacity: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ContentionModel {
            capacity,
            max_multiplier: self.max_multiplier,
        }
    }

    /// Utilization `in_flight / capacity` (may exceed 1 in overload).
    #[must_use]
    pub fn utilization(&self, in_flight: u32) -> f64 {
        f64::from(in_flight) / f64::from(self.capacity)
    }

    /// Service-time multiplier at the given in-flight request count.
    /// Monotone non-decreasing, continuous, `>= 1`, capped.
    #[must_use]
    pub fn service_multiplier(&self, in_flight: u32) -> f64 {
        self.service_multiplier_f64(f64::from(in_flight))
    }

    /// Service-time multiplier at a *fractional* in-flight load.
    ///
    /// Heterogeneous workload classes do not occupy the server in whole
    /// request units: a fleet batch of mixed detection frames,
    /// streaming chunks and training rounds implies a fractional
    /// average concurrency per class (`depth × service_time / epoch`),
    /// and each class's contribution is priced separately before the
    /// shares are summed into one load figure. Negative inputs clamp to
    /// idle.
    #[must_use]
    pub fn service_multiplier_f64(&self, in_flight: f64) -> f64 {
        let rho = (in_flight.max(0.0)) / f64::from(self.capacity);
        let m = if rho <= 1.0 {
            1.0 + rho * rho
        } else {
            2.0 * rho
        };
        m.min(self.max_multiplier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_costs_nothing() {
        assert_eq!(ContentionModel::new(4).service_multiplier(0), 1.0);
    }

    #[test]
    fn curve_is_continuous_at_saturation() {
        let m = ContentionModel::new(10);
        let below = m.service_multiplier(10);
        assert!((below - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multiplier_is_monotone() {
        let m = ContentionModel::new(6);
        let mut last = 0.0;
        for n in 0..100 {
            let v = m.service_multiplier(n);
            assert!(v >= last, "multiplier dipped at {n}");
            last = v;
        }
    }

    #[test]
    fn ceiling_caps_overload() {
        let m = ContentionModel::new(1).with_max_multiplier(3.0);
        assert_eq!(m.service_multiplier(100), 3.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = ContentionModel::new(0);
    }

    #[test]
    fn fractional_load_matches_integer_curve_and_interpolates() {
        let m = ContentionModel::new(8);
        for n in 0..40u32 {
            assert_eq!(
                m.service_multiplier(n),
                m.service_multiplier_f64(f64::from(n))
            );
        }
        let half = m.service_multiplier_f64(4.5);
        assert!(half > m.service_multiplier(4) && half < m.service_multiplier(5));
        assert_eq!(
            m.service_multiplier_f64(-3.0),
            1.0,
            "negative clamps to idle"
        );
    }

    #[test]
    fn resized_keeps_ceiling_and_reprices() {
        let m = ContentionModel::new(4).with_max_multiplier(3.0);
        let grown = m.resized(8);
        assert_eq!(grown.capacity(), 8);
        assert!(grown.service_multiplier(4) < m.service_multiplier(4));
        assert_eq!(grown.service_multiplier(1000), 3.0, "ceiling carries over");
    }
}
