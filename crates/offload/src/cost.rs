//! Cost accounting for offloading decisions.
//!
//! Every strategy comparison in the paper's §III boils down to three
//! currencies: end-to-end latency, vehicle-side energy, and wireless
//! bytes. [`CostReport`] carries all three so experiments never have to
//! re-derive one from another.

use serde::{Deserialize, Serialize};
use vdap_sim::SimDuration;

/// The cost of serving one request (or an accumulated batch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Vehicle-side energy, joules (on-board compute + radio).
    pub vehicle_energy_j: f64,
    /// Bytes transmitted from the vehicle.
    pub bytes_up: u64,
    /// Bytes received by the vehicle.
    pub bytes_down: u64,
    /// Requests this report covers.
    pub requests: u64,
}

impl CostReport {
    /// A single-request report.
    #[must_use]
    pub fn single(
        latency: SimDuration,
        vehicle_energy_j: f64,
        bytes_up: u64,
        bytes_down: u64,
    ) -> Self {
        CostReport {
            latency,
            vehicle_energy_j,
            bytes_up,
            bytes_down,
            requests: 1,
        }
    }

    /// Accumulates another report (latencies add; use
    /// [`CostReport::mean_latency`] for per-request numbers).
    pub fn absorb(&mut self, other: &CostReport) {
        self.latency += other.latency;
        self.vehicle_energy_j += other.vehicle_energy_j;
        self.bytes_up += other.bytes_up;
        self.bytes_down += other.bytes_down;
        self.requests += other.requests;
    }

    /// Mean per-request latency.
    #[must_use]
    pub fn mean_latency(&self) -> SimDuration {
        if self.requests == 0 {
            SimDuration::ZERO
        } else {
            self.latency / self.requests
        }
    }

    /// Mean per-request vehicle energy, joules.
    #[must_use]
    pub fn mean_energy_j(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.vehicle_energy_j / self.requests as f64
        }
    }

    /// Total wireless traffic (both directions).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut total = CostReport::default();
        total.absorb(&CostReport::single(
            SimDuration::from_millis(100),
            2.0,
            1000,
            100,
        ));
        total.absorb(&CostReport::single(
            SimDuration::from_millis(300),
            4.0,
            500,
            50,
        ));
        assert_eq!(total.requests, 2);
        assert_eq!(total.mean_latency(), SimDuration::from_millis(200));
        assert!((total.mean_energy_j() - 3.0).abs() < 1e-12);
        assert_eq!(total.total_bytes(), 1650);
    }

    #[test]
    fn empty_report_means_are_zero() {
        let r = CostReport::default();
        assert_eq!(r.mean_latency(), SimDuration::ZERO);
        assert_eq!(r.mean_energy_j(), 0.0);
    }
}
