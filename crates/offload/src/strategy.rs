//! The three computing architectures of §III, as offloading strategies.
//!
//! The paper contrasts a **cloud-based** solution (everything uploaded),
//! an **in-vehicle** solution (everything on board), and the
//! **edge-based** solution OpenVDAP adopts (dynamic placement across
//! vehicle, XEdge and cloud). Each is an [`OffloadStrategy`] producing
//! a placed pipeline; the comparison harness prices them on identical
//! request streams (experiment E6 in DESIGN.md).

use vdap_edgeos::{ElasticManager, Environment, Objective, Pipeline, PipelineStage};
use vdap_hw::ComputeWorkload;
use vdap_net::Site;
use vdap_sim::SimDuration;

use crate::cost::CostReport;
use crate::planner::{optimal_placement, PlanError};

/// A placement policy over a staged workload.
pub trait OffloadStrategy: std::fmt::Debug {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Places the stages for one request.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the strategy cannot produce a
    /// placement (e.g. no feasible plan under a deadline).
    fn place(
        &self,
        stages: &[ComputeWorkload],
        env: &Environment<'_>,
    ) -> Result<Pipeline, PlanError>;
}

/// §III-A: ship raw data to the cloud, compute there.
#[derive(Debug, Clone, Copy, Default)]
pub struct CloudOnly;

/// §III-B: everything on the vehicle.
#[derive(Debug, Clone, Copy, Default)]
pub struct InVehicleOnly;

/// §III-C / §IV: OpenVDAP's dynamic edge-based placement.
#[derive(Debug, Clone, Copy)]
pub struct EdgeBased {
    /// Optimization objective.
    pub objective: Objective,
    /// Optional end-to-end deadline.
    pub deadline: Option<SimDuration>,
}

impl Default for EdgeBased {
    fn default() -> Self {
        EdgeBased {
            objective: Objective::MinLatency,
            deadline: None,
        }
    }
}

fn pinned(stages: &[ComputeWorkload], site: Site, label: &str) -> Result<Pipeline, PlanError> {
    if stages.is_empty() {
        return Err(PlanError::EmptyPipeline);
    }
    Ok(Pipeline::new(
        label,
        stages
            .iter()
            .map(|w| PipelineStage {
                workload: w.clone(),
                site,
            })
            .collect(),
    ))
}

impl OffloadStrategy for CloudOnly {
    fn name(&self) -> &'static str {
        "cloud-only"
    }
    fn place(
        &self,
        stages: &[ComputeWorkload],
        _env: &Environment<'_>,
    ) -> Result<Pipeline, PlanError> {
        pinned(stages, Site::Cloud, "cloud-only")
    }
}

impl OffloadStrategy for InVehicleOnly {
    fn name(&self) -> &'static str {
        "in-vehicle"
    }
    fn place(
        &self,
        stages: &[ComputeWorkload],
        _env: &Environment<'_>,
    ) -> Result<Pipeline, PlanError> {
        pinned(stages, Site::Vehicle, "in-vehicle")
    }
}

impl OffloadStrategy for EdgeBased {
    fn name(&self) -> &'static str {
        "edge-based"
    }
    fn place(
        &self,
        stages: &[ComputeWorkload],
        env: &Environment<'_>,
    ) -> Result<Pipeline, PlanError> {
        optimal_placement("edge-based", stages, env, self.objective, self.deadline)
            .map(|p| p.pipeline)
    }
}

/// Why a degradable placement fell back to onboard execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// A wireless link was in outage, forcing everything on the vehicle.
    LinkOutage,
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::LinkOutage => write!(f, "wireless link in outage"),
        }
    }
}

/// A placement that may have gracefully degraded to onboard execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedPlacement {
    /// The chosen pipeline.
    pub pipeline: Pipeline,
    /// Estimated end-to-end latency of the chosen pipeline.
    pub latency: SimDuration,
    /// Whether the placement fell back from the preferred distributed
    /// plan.
    pub degraded: bool,
    /// Why, when `degraded`.
    pub reason: Option<FallbackReason>,
}

/// §IV's recovery path for connectivity faults: plan like [`EdgeBased`],
/// but when a wireless link is in outage and the optimum collapses onto
/// the vehicle, report the graceful degradation explicitly. Deadline
/// awareness is preserved: when not even onboard execution meets the
/// deadline, the request is refused with
/// [`PlanError::NoFeasiblePlacement`] so the caller can drop it with a
/// recorded reason instead of silently blowing the budget.
///
/// # Errors
///
/// Propagates [`PlanError`] from the underlying planner.
pub fn place_degradable(
    stages: &[ComputeWorkload],
    env: &Environment<'_>,
    objective: Objective,
    deadline: Option<SimDuration>,
) -> Result<DegradedPlacement, PlanError> {
    let outage = !env.net.is_link_up(Site::Vehicle, Site::Edge)
        || !env.net.is_link_up(Site::Vehicle, Site::Cloud);
    let plan = optimal_placement("degradable", stages, env, objective, deadline)?;
    let degraded = outage && plan.pipeline.is_fully_onboard();
    Ok(DegradedPlacement {
        latency: plan.estimate.latency,
        pipeline: plan.pipeline,
        degraded,
        reason: degraded.then_some(FallbackReason::LinkOutage),
    })
}

/// Prices one placed pipeline: latency and vehicle energy from the
/// elastic estimator, wireless bytes from the stage graph.
#[must_use]
pub fn price(pipeline: &Pipeline, env: &Environment<'_>) -> CostReport {
    let estimate = ElasticManager::new().estimate(pipeline, env);
    // Wireless accounting: bytes cross the air whenever data moves
    // between the vehicle and a remote site.
    let mut bytes_up = 0u64;
    let mut bytes_down = 0u64;
    let mut data_site = Site::Vehicle;
    for stage in &pipeline.stages {
        if data_site == Site::Vehicle && stage.site != Site::Vehicle {
            bytes_up += stage.workload.input_bytes();
        }
        if data_site != Site::Vehicle && stage.site == Site::Vehicle {
            bytes_down += stage.workload.input_bytes();
        }
        data_site = stage.site;
    }
    if let Some(last) = pipeline.stages.last() {
        if data_site != Site::Vehicle {
            bytes_down += last.workload.output_bytes();
        }
    }
    CostReport::single(
        estimate.latency,
        estimate.vehicle_energy_j,
        bytes_up,
        bytes_down,
    )
}

/// Runs a strategy over a request stream and accumulates costs.
///
/// # Errors
///
/// Propagates the strategy's [`PlanError`].
pub fn run_strategy(
    strategy: &dyn OffloadStrategy,
    stages: &[ComputeWorkload],
    env: &Environment<'_>,
    requests: u64,
) -> Result<CostReport, PlanError> {
    let pipeline = strategy.place(stages, env)?;
    let per_request = price(&pipeline, env);
    let mut total = CostReport::default();
    for _ in 0..requests {
        total.absorb(&per_request);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdap_hw::{catalog, TaskClass, VcuBoard};
    use vdap_net::NetTopology;
    use vdap_sim::SimTime;

    struct Fixture {
        net: NetTopology,
        board: VcuBoard,
        edge: vdap_hw::ProcessorSpec,
        cloud: vdap_hw::ProcessorSpec,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                net: NetTopology::reference(),
                board: VcuBoard::reference_design(),
                edge: catalog::xedge_server(),
                cloud: catalog::cloud_server(),
            }
        }
        fn env(&self) -> Environment<'_> {
            Environment {
                net: &self.net,
                board: &self.board,
                edge: &self.edge,
                cloud: &self.cloud,
                edge_load: 1.0,
                cloud_load: 1.0,
                now: SimTime::ZERO,
            }
        }
    }

    fn heavy_stages() -> Vec<ComputeWorkload> {
        let frame = 1280 * 720 * 3 / 2;
        vec![
            ComputeWorkload::new("motion", TaskClass::VisionKernel)
                .with_gflops(0.05)
                .with_input_bytes(frame)
                .with_output_bytes(frame / 8)
                .with_parallel_fraction(0.95),
            ComputeWorkload::new("cnn", TaskClass::DenseLinearAlgebra)
                .with_gflops(25.0)
                .with_input_bytes(frame / 8)
                .with_output_bytes(2048)
                .with_parallel_fraction(0.97),
        ]
    }

    #[test]
    fn edge_based_never_loses_on_latency() {
        let fx = Fixture::new();
        let env = fx.env();
        let stages = heavy_stages();
        let edge = run_strategy(&EdgeBased::default(), &stages, &env, 1).unwrap();
        let cloud = run_strategy(&CloudOnly, &stages, &env, 1).unwrap();
        let vehicle = run_strategy(&InVehicleOnly, &stages, &env, 1).unwrap();
        assert!(edge.latency <= cloud.latency);
        assert!(edge.latency <= vehicle.latency);
    }

    #[test]
    fn cloud_only_pays_the_uplink() {
        let fx = Fixture::new();
        let env = fx.env();
        let stages = heavy_stages();
        let cloud = run_strategy(&CloudOnly, &stages, &env, 1).unwrap();
        let vehicle = run_strategy(&InVehicleOnly, &stages, &env, 1).unwrap();
        // A full 720P frame crosses the LTE uplink.
        assert_eq!(cloud.bytes_up, 1280 * 720 * 3 / 2);
        assert_eq!(vehicle.total_bytes(), 0);
        // The paper's §III-A story: transmission dominates, the cloud is
        // slower end-to-end despite infinite compute.
        assert!(cloud.latency > vehicle.latency);
    }

    #[test]
    fn in_vehicle_pays_energy() {
        let fx = Fixture::new();
        let env = fx.env();
        let stages = heavy_stages();
        let vehicle = run_strategy(&InVehicleOnly, &stages, &env, 1).unwrap();
        let cloud = run_strategy(&CloudOnly, &stages, &env, 1).unwrap();
        assert!(vehicle.vehicle_energy_j > cloud.vehicle_energy_j);
    }

    #[test]
    fn request_stream_accumulates() {
        let fx = Fixture::new();
        let env = fx.env();
        let stages = heavy_stages();
        let one = run_strategy(&InVehicleOnly, &stages, &env, 1).unwrap();
        let many = run_strategy(&InVehicleOnly, &stages, &env, 30).unwrap();
        assert_eq!(many.requests, 30);
        assert_eq!(many.mean_latency(), one.latency);
        assert!((many.vehicle_energy_j - one.vehicle_energy_j * 30.0).abs() < 1e-9);
    }

    #[test]
    fn degradable_prefers_distributed_when_healthy() {
        let fx = Fixture::new();
        let placed =
            place_degradable(&heavy_stages(), &fx.env(), Objective::MinLatency, None).unwrap();
        assert!(!placed.degraded);
        assert!(placed.reason.is_none());
        assert!(
            !placed.pipeline.is_fully_onboard(),
            "heavy CNN work should leave the vehicle when links are up"
        );
    }

    #[test]
    fn outage_falls_back_onboard_with_reason() {
        let mut fx = Fixture::new();
        fx.net.set_link_up(Site::Vehicle, Site::Edge, false);
        fx.net.set_link_up(Site::Vehicle, Site::Cloud, false);
        let placed =
            place_degradable(&heavy_stages(), &fx.env(), Objective::MinLatency, None).unwrap();
        assert!(placed.degraded);
        assert_eq!(placed.reason, Some(FallbackReason::LinkOutage));
        assert!(placed.pipeline.is_fully_onboard());
        assert!(placed.latency < NetTopology::OUTAGE);
    }

    #[test]
    fn outage_with_impossible_deadline_is_refused() {
        let mut fx = Fixture::new();
        fx.net.set_link_up(Site::Vehicle, Site::Edge, false);
        fx.net.set_link_up(Site::Vehicle, Site::Cloud, false);
        // Not even onboard execution can finish in 1 µs — the request is
        // refused rather than allowed to blow its deadline.
        let err = place_degradable(
            &heavy_stages(),
            &fx.env(),
            Objective::MinLatency,
            Some(SimDuration::from_micros(1)),
        )
        .unwrap_err();
        assert_eq!(err, PlanError::NoFeasiblePlacement);
    }

    #[test]
    fn outage_with_generous_deadline_degrades_in_time() {
        let mut fx = Fixture::new();
        fx.net.set_link_up(Site::Vehicle, Site::Cloud, false);
        fx.net.set_link_up(Site::Vehicle, Site::Edge, false);
        let deadline = SimDuration::from_secs(10);
        let placed = place_degradable(
            &heavy_stages(),
            &fx.env(),
            Objective::MinLatency,
            Some(deadline),
        )
        .unwrap();
        assert!(placed.degraded);
        assert!(placed.latency <= deadline);
    }

    #[test]
    fn strategies_have_distinct_names() {
        let names = [
            CloudOnly.name(),
            InVehicleOnly.name(),
            EdgeBased::default().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn empty_stages_rejected_by_all() {
        let fx = Fixture::new();
        let env = fx.env();
        assert!(CloudOnly.place(&[], &env).is_err());
        assert!(InVehicleOnly.place(&[], &env).is_err());
        assert!(EdgeBased::default().place(&[], &env).is_err());
    }
}
