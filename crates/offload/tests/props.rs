//! Property-based tests for offloading: the planner's optimality and the
//! collaboration cache's consistency.

use proptest::prelude::*;
use vdap_edgeos::{ElasticManager, Environment, Objective, Pipeline, PipelineStage};
use vdap_hw::{catalog, ComputeWorkload, TaskClass, VcuBoard};
use vdap_net::{NetTopology, Site};
use vdap_offload::{optimal_placement, ResultCache, ResultKey, SharedResult, Tile};
use vdap_sim::{SimDuration, SimTime};

fn class_of(i: usize) -> TaskClass {
    TaskClass::ALL[i % TaskClass::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn planner_optimum_dominates_random_placements(
        gflops in prop::collection::vec(0.01f64..10.0, 1..4),
        bytes in prop::collection::vec(0u64..2_000_000, 4),
        placement_code in 0usize..81,
    ) {
        let net = NetTopology::reference();
        let board = VcuBoard::reference_design();
        let edge = catalog::xedge_server();
        let cloud = catalog::cloud_server();
        let env = Environment {
            net: &net,
            board: &board,
            edge: &edge,
            cloud: &cloud,
            edge_load: 1.0,
            cloud_load: 1.0,
            now: SimTime::ZERO,
        };
        let stages: Vec<ComputeWorkload> = gflops
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                ComputeWorkload::new(format!("s{i}"), class_of(i))
                    .with_gflops(g)
                    .with_input_bytes(bytes.get(i).copied().unwrap_or(0))
                    .with_output_bytes(bytes.get(i + 1).copied().unwrap_or(0) / 8)
            })
            .collect();
        let plan = optimal_placement("p", &stages, &env, Objective::MinLatency, None).unwrap();
        // An arbitrary placement can never beat the exhaustive optimum.
        let sites = Site::ALL;
        let mut code = placement_code;
        let random = Pipeline::new(
            "random",
            stages
                .iter()
                .map(|w| {
                    let site = sites[code % 3];
                    code /= 3;
                    PipelineStage { workload: w.clone(), site }
                })
                .collect(),
        );
        let estimate = ElasticManager::new().estimate(&random, &env);
        prop_assert!(
            plan.estimate.latency <= estimate.latency,
            "optimum {} beaten by random {}",
            plan.estimate.latency,
            estimate.latency
        );
    }

    #[test]
    fn cache_publish_then_fresh_lookup_hits(
        tile in -1000i64..1000,
        produced in 0u64..10_000,
        probe_offset in 0u64..200,
        freshness in 1u64..200,
    ) {
        let mut cache = ResultCache::new(SimDuration::from_secs(freshness));
        let key = ResultKey { task: "scan".into(), tile: Tile(tile) };
        cache.publish(key.clone(), SharedResult {
            producer: 1,
            produced_at: SimTime::from_secs(produced),
            payload: vec![],
        });
        let probe = SimTime::from_secs(produced + probe_offset);
        let hit = cache.lookup(&key, probe);
        if probe_offset <= freshness {
            prop_assert!(hit.is_some());
        } else {
            prop_assert!(hit.is_none());
        }
    }

    #[test]
    fn cache_stats_balance(
        ops in prop::collection::vec((any::<bool>(), -20i64..20, 0u64..100), 1..80),
    ) {
        let mut cache = ResultCache::new(SimDuration::from_secs(30));
        let mut lookups = 0u64;
        let mut publishes = 0u64;
        for (is_publish, tile, t) in ops {
            let key = ResultKey { task: "scan".into(), tile: Tile(tile) };
            if is_publish {
                publishes += 1;
                cache.publish(key, SharedResult {
                    producer: 0,
                    produced_at: SimTime::from_secs(t),
                    payload: vec![],
                });
            } else {
                lookups += 1;
                cache.lookup(&key, SimTime::from_secs(t));
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, lookups);
        prop_assert_eq!(s.published, publishes);
    }

    #[test]
    fn tiles_partition_the_line(miles in -10_000.0f64..10_000.0) {
        let tile = Tile::containing(miles);
        let lo = tile.0 as f64 * Tile::SIZE_MILES;
        prop_assert!(miles >= lo - 1e-9);
        prop_assert!(miles < lo + Tile::SIZE_MILES + 1e-9);
    }
}
