//! Measurement primitives shared by every experiment harness.
//!
//! [`Histogram`] is a log-bucketed latency histogram (HDR-style, base-10
//! decades split into 90 linear sub-buckets) good enough for the quantile
//! shapes the paper reports. [`Summary`] is an exact small-sample summary
//! used when the full sample set fits in memory. [`Counter`] and
//! [`TimeSeries`] support rate and trend reporting.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use vdap_sim::Counter;
///
/// let mut packets = Counter::new("packets_sent");
/// packets.add(3);
/// packets.incr();
/// assert_eq!(packets.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a diagnostic name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Adds `n` to the counter, saturating.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current count.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This counter as a fraction of `total` (0 when `total` is 0).
    #[must_use]
    pub fn rate_of(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.value as f64 / total as f64
        }
    }
}

/// Exact summary statistics over an in-memory sample set.
///
/// Quantiles sort lazily into a cached side buffer, so read-only
/// consumers can take quantiles through `&self`; recording invalidates
/// the cache.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: std::sync::OnceLock<Vec<f64>>,
}

impl PartialEq for Summary {
    fn eq(&self, other: &Self) -> bool {
        self.samples == other.samples
    }
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample. Non-finite samples are ignored.
    pub fn record(&mut self, sample: f64) {
        if sample.is_finite() {
            self.samples.push(sample);
            self.sorted.take();
        }
    }

    /// Records a duration sample in milliseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Sample standard deviation, or 0 with fewer than two samples.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }

    /// Minimum sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        let m = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Maximum sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        let m = self
            .samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Exact quantile by nearest-rank (q clamped to `[0, 1]`); 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sorted = self.sorted.get_or_init(|| {
            let mut v = self.samples.clone();
            v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            v
        });
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    }

    /// Median (p50).
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Borrow the raw samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for s in iter {
            self.record(s);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Log-bucketed histogram for unbounded latency-like values.
///
/// Values are bucketed into base-10 decades, each split into 90 linear
/// sub-buckets, giving a worst-case quantile error of ~1.1% — comparable
/// to HDR histograms at far less code. Values are expected non-negative;
/// negatives clamp to bucket 0.
///
/// # Examples
///
/// ```
/// use vdap_sim::Histogram;
///
/// let mut h = Histogram::new("latency_ms");
/// for v in [1.0, 2.0, 3.0, 100.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.quantile(0.5);
/// assert!(p50 >= 2.0 && p50 <= 3.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    name: String,
    /// buckets[decade][sub] — decade d covers [10^(d-4), 10^(d-3)).
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

const SUBS: usize = 90;
const DECADES: usize = 16; // 1e-4 .. 1e12
const FLOOR: f64 = 1e-4;

fn bucket_index(value: f64) -> usize {
    if value <= FLOOR || value.is_nan() {
        return 0;
    }
    let decade = value.log10().floor();
    let d = ((decade - FLOOR.log10()) as isize).clamp(0, DECADES as isize - 1) as usize;
    let lo = 10f64.powf(FLOOR.log10() + d as f64);
    let frac = (value / lo - 1.0) / 9.0; // [1,10) -> [0,1)
    let sub = ((frac * SUBS as f64) as usize).min(SUBS - 1);
    d * SUBS + sub
}

fn bucket_value(index: usize) -> f64 {
    let d = index / SUBS;
    let sub = index % SUBS;
    let lo = 10f64.powf(FLOOR.log10() + d as f64);
    // Midpoint of the linear sub-bucket.
    lo * (1.0 + 9.0 * (sub as f64 + 0.5) / SUBS as f64)
}

impl Histogram {
    /// Creates an empty histogram with a diagnostic name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Histogram {
            name: name.into(),
            buckets: vec![0; SUBS * DECADES],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one non-negative sample (non-finite samples are ignored).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let value = value.max(0.0);
        let idx = bucket_index(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a duration in milliseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate quantile (worst-case ~1.1% relative error).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64 - 1.0) * q).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c > target {
                return bucket_value(idx).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.name,
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max()
        )
    }
}

/// Fixed-point quantum for [`StreamingHistogram`] sums: one microunit.
const MICRO: f64 = 1e6;

/// An order-independent, mergeable streaming histogram.
///
/// Same log-bucket layout as [`Histogram`], but the running sum is kept
/// in fixed-point integer microunits instead of an `f64`. Integer
/// addition is associative and commutative, so merging per-shard
/// histograms in *any* order or grouping produces a bit-identical
/// result — the property that lets a sharded fleet run report the same
/// aggregate metrics as a single-threaded run of the same seed. (An
/// `f64` sum would pick up grouping-dependent rounding.)
///
/// The price is quantization: each sample is rounded to the nearest
/// 1e-6 before being added to the sum, so `mean()` is exact to ±0.5e-6
/// per sample. Quantiles come from the buckets and are unaffected.
///
/// # Examples
///
/// ```
/// use vdap_sim::StreamingHistogram;
///
/// let mut a = StreamingHistogram::new("latency_ms");
/// let mut b = StreamingHistogram::new("latency_ms");
/// a.record(2.0);
/// b.record(4.0);
/// let mut ab = a.clone();
/// ab.merge(&b);
/// let mut ba = b.clone();
/// ba.merge(&a);
/// assert_eq!(ab, ba); // merge is commutative, bit-for-bit
/// assert_eq!(ab.count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingHistogram {
    name: String,
    buckets: Vec<u64>,
    count: u64,
    /// Sum of `round(value * 1e6)` — exact integer accumulation.
    sum_micro: u128,
    min: f64,
    max: f64,
}

impl StreamingHistogram {
    /// Creates an empty histogram with a diagnostic name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        StreamingHistogram {
            name: name.into(),
            buckets: vec![0; SUBS * DECADES],
            count: 0,
            sum_micro: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one non-negative sample (non-finite samples are ignored).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let value = value.max(0.0);
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum_micro += (value * MICRO).round() as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a duration in milliseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 when empty; quantized to 1e-6).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micro as f64 / MICRO / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate quantile (worst-case ~1.1% relative error).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64 - 1.0) * q).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c > target {
                return bucket_value(idx).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Merges another histogram's samples into this one. Associative and
    /// commutative bit-for-bit (the merge-order-independence every
    /// sharded aggregation relies on).
    pub fn merge(&mut self, other: &StreamingHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micro += other.sum_micro;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The complete internal state of a [`StreamingHistogram`], exposed for
/// checkpoint/restore. Buckets are sparse `(index, count)` pairs; the
/// min/max fields carry the raw values, which are non-finite sentinels
/// (±∞) while the histogram is empty.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingHistogramState {
    /// Diagnostic name.
    pub name: String,
    /// Non-zero buckets as `(index, count)` pairs, ascending by index.
    pub sparse_buckets: Vec<(u32, u64)>,
    /// Total recorded samples.
    pub count: u64,
    /// Fixed-point sample sum in microunits.
    pub sum_micro: u128,
    /// Raw running minimum (`+∞` when empty).
    pub min: f64,
    /// Raw running maximum (`-∞` when empty).
    pub max: f64,
}

impl StreamingHistogram {
    /// Captures the full internal state for checkpointing.
    #[must_use]
    pub fn state(&self) -> StreamingHistogramState {
        StreamingHistogramState {
            name: self.name.clone(),
            sparse_buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c != 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
            count: self.count,
            sum_micro: self.sum_micro,
            min: self.min,
            max: self.max,
        }
    }

    /// Rebuilds a histogram from captured state.
    ///
    /// # Panics
    ///
    /// Panics when a sparse bucket index is out of range.
    #[must_use]
    pub fn from_state(state: StreamingHistogramState) -> Self {
        let mut buckets = vec![0u64; SUBS * DECADES];
        for (idx, c) in state.sparse_buckets {
            buckets[idx as usize] = c;
        }
        StreamingHistogram {
            name: state.name,
            buckets,
            count: state.count,
            sum_micro: state.sum_micro,
            min: state.min,
            max: state.max,
        }
    }
}

impl fmt::Display for StreamingHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.name,
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max()
        )
    }
}

/// A `(time, value)` series for trend plots (e.g. utilization over time).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a point. Out-of-order appends are accepted and sorted on read.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points sorted by time.
    #[must_use]
    pub fn sorted_points(&self) -> Vec<(SimTime, f64)> {
        let mut pts = self.points.clone();
        pts.sort_unstable_by_key(|&(t, _)| t);
        pts
    }

    /// Time-weighted average over the recorded span (simple trapezoid-free
    /// step integration: each value holds until the next point).
    #[must_use]
    pub fn time_weighted_mean(&self) -> f64 {
        let pts = self.sorted_points();
        if pts.len() < 2 {
            return pts.first().map_or(0.0, |&(_, v)| v);
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for w in pts.windows(2) {
            let dt = (w[1].0 - w[0].0).as_secs_f64();
            weighted += w[0].1 * dt;
            total += dt;
        }
        if total == 0.0 {
            pts[0].1
        } else {
            weighted / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_histogram_tracks_quantiles_like_histogram() {
        let mut s = StreamingHistogram::new("lat");
        let mut h = Histogram::new("lat");
        for i in 1..=1000 {
            let v = i as f64 * 0.1;
            s.record(v);
            h.record(v);
        }
        assert_eq!(s.count(), 1000);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let a = s.quantile(q);
            let b = h.quantile(q);
            assert!(
                (a - b).abs() <= 1e-9,
                "q={q}: streaming {a} vs exact-bucket {b}"
            );
        }
        assert!((s.mean() - h.mean()).abs() < 1e-5);
    }

    #[test]
    fn streaming_histogram_merge_is_grouping_independent() {
        // Three shards, merged in two different groupings and orders, must
        // be bit-identical — including the fixed-point sum.
        let mk = |lo: u32, hi: u32| {
            let mut s = StreamingHistogram::new("lat");
            for i in lo..hi {
                s.record(0.1 + (i as f64) * 0.317);
            }
            s
        };
        let (a, b, c) = (mk(0, 100), mk(100, 250), mk(250, 400));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = c.clone();
        bc.merge(&b);
        let mut right = a.clone();
        right.merge(&bc);

        assert_eq!(left, right);
        assert_eq!(format!("{left}"), format!("{right}"));
        assert_eq!(left.mean().to_bits(), right.mean().to_bits());
    }

    #[test]
    fn streaming_histogram_state_round_trips() {
        let mut s = StreamingHistogram::new("lat");
        for i in 0..500 {
            s.record(0.05 + (i as f64) * 1.37);
        }
        let back = StreamingHistogram::from_state(s.state());
        assert_eq!(back, s);
        // Empty histograms round-trip their ±∞ sentinels too.
        let empty = StreamingHistogram::new("none");
        let st = empty.state();
        assert!(st.min.is_infinite() && st.max.is_infinite());
        assert_eq!(StreamingHistogram::from_state(st), empty);
    }

    #[test]
    fn streaming_histogram_ignores_junk_samples() {
        let mut s = StreamingHistogram::new("lat");
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        s.record(-4.0); // clamped to 0
        assert_eq!(s.count(), 1);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn streaming_histogram_records_durations_in_ms() {
        let mut s = StreamingHistogram::new("lat");
        s.record_duration(SimDuration::from_millis(250));
        assert!((s.mean() - 250.0).abs() < 1e-6);
        assert_eq!(s.name(), "lat");
    }

    #[test]
    fn counter_accumulates_and_rates() {
        let mut c = Counter::new("x");
        c.add(10);
        c.incr();
        assert_eq!(c.value(), 11);
        assert!((c.rate_of(22) - 0.5).abs() < 1e-12);
        assert_eq!(c.rate_of(0), 0.0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new("x");
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn summary_statistics_exact() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138).abs() < 0.01);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        // Nearest-rank on 8 samples: index round(3.5) = 4 -> value 5.0.
        assert_eq!(s.median(), 5.0);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(1.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn summary_empty_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn histogram_quantiles_within_error() {
        let mut h = Histogram::new("lat");
        for i in 1..=10_000 {
            h.record(i as f64 / 10.0); // 0.1 .. 1000.0
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 - 500.0).abs() / 500.0 < 0.02, "p50={p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.02, "p99={p99}");
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new("x");
        h.record(0.0);
        h.record(-5.0); // clamps to 0
        h.record(1e15); // clamps to top decade
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 1e15);
    }

    #[test]
    fn histogram_merge_combines() {
        let mut a = Histogram::new("a");
        let mut b = Histogram::new("b");
        a.record(1.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 100.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn time_series_weighted_mean() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 1.0);
        ts.push(SimTime::from_secs(10), 3.0);
        ts.push(SimTime::from_secs(20), 3.0);
        // value 1.0 for 10s, then 3.0 for 10s => mean 2.0
        assert!((ts.time_weighted_mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn time_series_single_point() {
        let mut ts = TimeSeries::new();
        assert_eq!(ts.time_weighted_mean(), 0.0);
        ts.push(SimTime::ZERO, 7.0);
        assert_eq!(ts.time_weighted_mean(), 7.0);
    }

    #[test]
    fn histogram_display_nonempty() {
        let mut h = Histogram::new("d");
        h.record(5.0);
        let s = h.to_string();
        assert!(s.contains("n=1"));
    }
}
