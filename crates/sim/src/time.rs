//! Virtual time for the simulation kernel.
//!
//! All latency arithmetic in the OpenVDAP reproduction happens in
//! *simulated* nanoseconds. Two newtypes keep instants and durations from
//! being confused at compile time ([`SimTime`] is a point on the virtual
//! timeline, [`SimDuration`] is a span), mirroring `std::time::Instant` /
//! `std::time::Duration` but with a saturating, fully deterministic
//! integer representation.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of virtual time, stored as whole nanoseconds.
///
/// Arithmetic saturates instead of overflowing so that pathological
/// parameter sweeps (e.g. "upload 4 TB over a dead link") degrade to
/// [`SimDuration::MAX`] rather than panicking.
///
/// # Examples
///
/// ```
/// use vdap_sim::SimDuration;
///
/// let transfer = SimDuration::from_millis(250) + SimDuration::from_micros(40);
/// assert_eq!(transfer.as_nanos(), 250_040_000);
/// assert!(transfer < SimDuration::from_secs(1));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration (~584 years of virtual time).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds, saturating on overflow.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(1_000))
    }

    /// Creates a duration from whole milliseconds, saturating on overflow.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000_000))
    }

    /// Creates a duration from whole seconds, saturating on overflow.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000_000))
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative and NaN inputs map to [`SimDuration::ZERO`]; values beyond
    /// the representable range map to [`SimDuration::MAX`].
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            if secs == f64::INFINITY {
                return SimDuration::MAX;
            }
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Creates a duration from fractional milliseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    #[must_use]
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Returns the duration as whole nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as whole microseconds (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration as whole seconds (truncating).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Returns the duration as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns true when this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[must_use]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a non-negative factor, saturating.
    ///
    /// NaN and negative factors map to [`SimDuration::ZERO`].
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the larger of the two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of the two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics when `rhs` is zero, exactly like integer division.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if n >= 1_000_000 {
            write!(f, "{:.3}ms", n as f64 / 1e6)
        } else if n >= 1_000 {
            write!(f, "{:.3}us", n as f64 / 1e3)
        } else {
            write!(f, "{n}ns")
        }
    }
}

/// A point on the virtual timeline, measured in nanoseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use vdap_sim::{SimDuration, SimTime};
///
/// let start = SimTime::ZERO;
/// let later = start + SimDuration::from_secs(3);
/// assert_eq!(later.duration_since(start), SimDuration::from_secs(3));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The end of representable time; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds since simulation start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(1_000_000_000))
    }

    /// Nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, clamped at zero when `earlier`
    /// is actually later.
    #[must_use]
    pub const fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Elapsed time from simulation start.
    #[must_use]
    pub const fn elapsed(self) -> SimDuration {
        SimDuration(self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_round_trip() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_nanos(1_500_000_000).as_secs(), 1);
    }

    #[test]
    fn duration_from_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(2),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::MAX * 3, SimDuration::MAX);
    }

    #[test]
    fn duration_mul_f64_scales() {
        let d = SimDuration::from_millis(100).mul_f64(2.5);
        assert_eq!(d.as_millis(), 250);
        assert_eq!(SimDuration::from_secs(1).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn time_ordering_and_difference() {
        let a = SimTime::from_secs(1);
        let b = a + SimDuration::from_millis(250);
        assert!(b > a);
        assert_eq!(b - a, SimDuration::from_millis(250));
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_uses_adaptive_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_secs(2).to_string(), "t+2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn min_max_behave() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
