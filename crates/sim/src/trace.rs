//! Structured event tracing.
//!
//! Components record [`TraceEvent`]s into a [`TraceLog`] so experiments
//! can reconstruct *why* an end-to-end latency came out the way it did
//! (which pipeline was selected, when a handoff dropped packets, when a
//! service was hung up, ...). Traces are bounded ring buffers so long
//! simulations cannot exhaust memory.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Severity of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TraceLevel {
    /// Fine-grained progress (per-packet, per-task).
    Debug,
    /// Normal lifecycle milestones (service started, pipeline selected).
    Info,
    /// Degraded-but-operating conditions (handoff loss burst, hung service).
    Warn,
    /// Failures (service compromised, task rejected).
    Error,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLevel::Debug => "DEBUG",
            TraceLevel::Info => "INFO",
            TraceLevel::Warn => "WARN",
            TraceLevel::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time the event occurred.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Emitting component, e.g. `"edgeos.elastic"`. Interned: component
    /// names are a small fixed vocabulary, so recording an event costs
    /// no per-component allocation.
    pub component: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.at, self.level, self.component, self.message
        )
    }
}

/// A bounded, in-order log of trace events.
///
/// # Examples
///
/// ```
/// use vdap_sim::{SimTime, TraceLevel, TraceLog};
///
/// let mut log = TraceLog::with_capacity(128);
/// log.record(SimTime::ZERO, TraceLevel::Info, "vcu.dsf", "scheduler online");
/// assert_eq!(log.len(), 1);
/// assert!(log.iter().any(|e| e.message.contains("online")));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceLog {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    min_level: TraceLevel,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl TraceLog {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 16_384;

    /// Creates an empty log with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Creates an empty log bounded to `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceLog {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            min_level: TraceLevel::Debug,
        }
    }

    /// Suppresses events below `level`.
    pub fn set_min_level(&mut self, level: TraceLevel) {
        self.min_level = level;
    }

    /// Records an event, evicting the oldest when at capacity.
    pub fn record(
        &mut self,
        at: SimTime,
        level: TraceLevel,
        component: &'static str,
        message: impl Into<String>,
    ) {
        if level < self.min_level {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            level,
            component,
            message: message.into(),
        });
    }

    /// Merges another log's events into this one in timestamp order
    /// (stable: on equal timestamps this log's events come first), then
    /// re-applies this log's capacity bound, evicting oldest-first.
    /// Dropped counts accumulate, so per-shard logs can be combined at
    /// a barrier without losing the eviction history.
    pub fn merge(&mut self, other: &TraceLog) {
        self.dropped += other.dropped;
        let mut merged: Vec<TraceEvent> =
            Vec::with_capacity(self.events.len() + other.events.len());
        let mut mine = std::mem::take(&mut self.events).into_iter().peekable();
        let mut theirs = other.events.iter().cloned().peekable();
        loop {
            match (mine.peek(), theirs.peek()) {
                (Some(a), Some(b)) => {
                    if b.at < a.at {
                        merged.push(theirs.next().expect("peeked"));
                    } else {
                        merged.push(mine.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.push(mine.next().expect("peeked")),
                (None, Some(_)) => merged.push(theirs.next().expect("peeked")),
                (None, None) => break,
            }
        }
        if merged.len() > self.capacity {
            let excess = merged.len() - self.capacity;
            self.dropped += excess as u64;
            merged.drain(..excess);
        }
        self.events = merged.into();
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted due to the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained events from one component, oldest-first.
    #[must_use]
    pub fn for_component(&self, component: &str) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.component == component)
            .collect()
    }

    /// Retained events at or above a severity, oldest-first.
    #[must_use]
    pub fn at_least(&self, level: TraceLevel) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.level >= level).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_n(log: &mut TraceLog, n: usize) {
        for i in 0..n {
            log.record(
                SimTime::from_nanos(i as u64),
                TraceLevel::Info,
                "test",
                format!("event {i}"),
            );
        }
    }

    #[test]
    fn records_in_order() {
        let mut log = TraceLog::new();
        log_n(&mut log, 5);
        let msgs: Vec<&str> = log.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(
            msgs,
            vec!["event 0", "event 1", "event 2", "event 3", "event 4"]
        );
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = TraceLog::with_capacity(3);
        log_n(&mut log, 5);
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.iter().next().unwrap().message, "event 2");
    }

    #[test]
    fn min_level_filters() {
        let mut log = TraceLog::new();
        log.set_min_level(TraceLevel::Warn);
        log.record(SimTime::ZERO, TraceLevel::Debug, "c", "hidden");
        log.record(SimTime::ZERO, TraceLevel::Error, "c", "shown");
        assert_eq!(log.len(), 1);
        assert_eq!(log.iter().next().unwrap().level, TraceLevel::Error);
    }

    #[test]
    fn component_and_level_queries() {
        let mut log = TraceLog::new();
        log.record(SimTime::ZERO, TraceLevel::Info, "a", "1");
        log.record(SimTime::ZERO, TraceLevel::Warn, "b", "2");
        log.record(SimTime::ZERO, TraceLevel::Error, "a", "3");
        assert_eq!(log.for_component("a").len(), 2);
        assert_eq!(log.at_least(TraceLevel::Warn).len(), 2);
    }

    #[test]
    fn merge_interleaves_by_timestamp() {
        let mut a = TraceLog::new();
        a.record(SimTime::from_nanos(10), TraceLevel::Info, "shard0", "x");
        a.record(SimTime::from_nanos(30), TraceLevel::Info, "shard0", "z");
        let mut b = TraceLog::new();
        b.record(SimTime::from_nanos(20), TraceLevel::Info, "shard1", "y");
        b.record(SimTime::from_nanos(30), TraceLevel::Info, "shard1", "tie");
        a.merge(&b);
        let order: Vec<(&str, &str)> = a
            .iter()
            .map(|e| (e.component, e.message.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("shard0", "x"),
                ("shard1", "y"),
                ("shard0", "z"), // ties keep self's events first
                ("shard1", "tie"),
            ]
        );
    }

    #[test]
    fn merge_enforces_capacity_and_accumulates_drops() {
        let mut a = TraceLog::with_capacity(3);
        log_n(&mut a, 4); // retains 1..=3, dropped 1
        let mut b = TraceLog::with_capacity(3);
        b.record(SimTime::from_nanos(0), TraceLevel::Info, "b", "early");
        b.record(SimTime::from_nanos(9), TraceLevel::Info, "b", "late");
        a.merge(&b);
        assert_eq!(a.len(), 3, "capacity bound re-applied after merge");
        // 1 pre-merge drop + 2 evicted oldest during the merge.
        assert_eq!(a.dropped(), 3);
        assert_eq!(a.iter().last().unwrap().message, "late");
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            at: SimTime::from_secs(1),
            level: TraceLevel::Warn,
            component: "net",
            message: "handoff".into(),
        };
        let s = e.to_string();
        assert!(s.contains("WARN"));
        assert!(s.contains("net"));
        assert!(s.contains("handoff"));
    }
}
