//! # vdap-sim — deterministic simulation kernel
//!
//! The foundation of the OpenVDAP reproduction: virtual time, a
//! discrete-event engine, deterministic random streams, measurement
//! primitives, and structured tracing. Every other crate in the workspace
//! expresses latency, loss, energy and scheduling behaviour on top of
//! these types, which is what makes the paper's experiments reproducible
//! bit-for-bit from a single scenario seed.
//!
//! ## Quick tour
//!
//! ```
//! use vdap_sim::{SeedFactory, SimDuration, Simulation};
//!
//! // A tiny arrival process measured with the kernel.
//! struct World {
//!     served: u32,
//! }
//!
//! let seeds = SeedFactory::new(0xC0FFEE);
//! let mut arrivals = seeds.stream("arrivals");
//! let mut sim = Simulation::new(World { served: 0 });
//! let mut t = SimDuration::ZERO;
//! for _ in 0..10 {
//!     t += SimDuration::from_millis_f64(arrivals.exponential(5.0));
//!     sim.schedule_in(t, "arrival", |ctx| ctx.state_mut().served += 1);
//! }
//! sim.run();
//! assert_eq!(sim.state().served, 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod metrics;
mod reliability;
mod rng;
mod time;
mod trace;

pub use event::{Ctx, EventFn, RunReport, Simulation, StopReason};
pub use metrics::{
    Counter, Histogram, StreamingHistogram, StreamingHistogramState, Summary, TimeSeries,
};
pub use reliability::{ReliabilityState, ReliabilityStats};
pub use rng::{RngStream, SeedFactory};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceLevel, TraceLog};
