//! Discrete-event engine.
//!
//! [`Simulation`] owns a user-supplied world state `S` and a time-ordered
//! queue of events. Each event is a closure that receives a [`Ctx`], which
//! exposes the current virtual time, mutable access to the state, and the
//! ability to schedule further events. Events with equal timestamps fire
//! in insertion order, which makes runs fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// An event body: invoked exactly once at its scheduled time.
///
/// Events are `Send` so a `Simulation` over `Send` state can itself move
/// between threads — the sharded fleet engine advances one simulation
/// per worker thread.
pub type EventFn<S> = Box<dyn FnOnce(&mut Ctx<'_, S>) + Send>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    run: EventFn<S>,
    label: &'static str,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The execution context handed to each event.
///
/// Borrow the world state through [`Ctx::state`] / [`Ctx::state_mut`] and
/// enqueue follow-up work with [`Ctx::schedule_in`] / [`Ctx::schedule_at`].
pub struct Ctx<'a, S> {
    now: SimTime,
    state: &'a mut S,
    pending: Vec<(SimTime, &'static str, EventFn<S>)>,
    stop_requested: bool,
}

impl<'a, S> Ctx<'a, S> {
    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world state.
    #[must_use]
    pub fn state(&self) -> &S {
        self.state
    }

    /// Exclusive access to the world state.
    #[must_use]
    pub fn state_mut(&mut self) -> &mut S {
        self.state
    }

    /// Schedules `event` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        label: &'static str,
        event: impl FnOnce(&mut Ctx<'_, S>) + Send + 'static,
    ) {
        self.pending
            .push((self.now + delay, label, Box::new(event)));
    }

    /// Schedules `event` at an absolute time.
    ///
    /// Times in the past are clamped to "now": the event still runs, after
    /// every event already scheduled for the current instant.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        label: &'static str,
        event: impl FnOnce(&mut Ctx<'_, S>) + Send + 'static,
    ) {
        let at = if at < self.now { self.now } else { at };
        self.pending.push((at, label, Box::new(event)));
    }

    /// Asks the simulation loop to stop after the current event returns.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }
}

impl<S> fmt::Debug for Ctx<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("now", &self.now)
            .field("pending", &self.pending.len())
            .finish()
    }
}

/// A deterministic discrete-event simulation over world state `S`.
///
/// # Examples
///
/// ```
/// use vdap_sim::{SimDuration, Simulation};
///
/// let mut sim = Simulation::new(0u32);
/// sim.schedule_in(SimDuration::from_secs(1), "tick", |ctx| {
///     *ctx.state_mut() += 1;
///     ctx.schedule_in(SimDuration::from_secs(1), "tock", |ctx| {
///         *ctx.state_mut() += 10;
///     });
/// });
/// let report = sim.run();
/// assert_eq!(*sim.state(), 11);
/// assert_eq!(report.events_processed, 2);
/// assert_eq!(sim.now().as_secs_f64(), 2.0);
/// ```
pub struct Simulation<S> {
    state: S,
    queue: BinaryHeap<Scheduled<S>>,
    now: SimTime,
    seq: u64,
    processed: u64,
    event_cap: u64,
}

impl<S: fmt::Debug> fmt::Debug for Simulation<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("queued", &self.queue.len())
            .field("processed", &self.processed)
            .field("state", &self.state)
            .finish()
    }
}

/// Summary of a completed [`Simulation::run`] (or bounded run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Number of events executed during this run call.
    pub events_processed: u64,
    /// Virtual time when the run stopped.
    pub finished_at: SimTime,
    /// Why the run stopped.
    pub stop_reason: StopReason,
}

/// Why a simulation run returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained.
    QueueEmpty,
    /// The time horizon passed to [`Simulation::run_until`] was reached.
    HorizonReached,
    /// An event called [`Ctx::request_stop`].
    Requested,
    /// The safety cap on total processed events was hit.
    EventCapReached,
}

impl<S> Simulation<S> {
    /// Default safety cap on processed events per simulation.
    pub const DEFAULT_EVENT_CAP: u64 = 50_000_000;

    /// Creates a simulation at `t = 0` over the given world state.
    #[must_use]
    pub fn new(state: S) -> Self {
        Simulation {
            state,
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            event_cap: Self::DEFAULT_EVENT_CAP,
        }
    }

    /// Replaces the runaway-event safety cap.
    ///
    /// # Panics
    ///
    /// Panics when `cap` is zero.
    pub fn set_event_cap(&mut self, cap: u64) {
        assert!(cap > 0, "event cap must be positive");
        self.event_cap = cap;
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world state.
    #[must_use]
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the world state.
    #[must_use]
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the simulation and returns the world state.
    #[must_use]
    pub fn into_state(self) -> S {
        self.state
    }

    /// Number of events waiting in the queue.
    #[must_use]
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }

    /// Total events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Schedules an event at an absolute virtual time (clamped to now).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        label: &'static str,
        event: impl FnOnce(&mut Ctx<'_, S>) + Send + 'static,
    ) {
        let at = if at < self.now { self.now } else { at };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(event),
            label,
        });
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        label: &'static str,
        event: impl FnOnce(&mut Ctx<'_, S>) + Send + 'static,
    ) {
        self.schedule_at(self.now + delay, label, event);
    }

    /// Runs until the queue drains (or a stop is requested / the cap hits).
    pub fn run(&mut self) -> RunReport {
        self.run_until(SimTime::MAX)
    }

    /// Runs events with timestamps `<= horizon`, advancing virtual time.
    ///
    /// When the queue still holds later events, time is left at `horizon`
    /// so repeated bounded runs tile the timeline without gaps.
    pub fn run_until(&mut self, horizon: SimTime) -> RunReport {
        let mut processed_now = 0u64;
        let stop_reason = loop {
            let Some(head) = self.queue.peek() else {
                break StopReason::QueueEmpty;
            };
            if head.at > horizon {
                self.now = horizon;
                break StopReason::HorizonReached;
            }
            if self.processed >= self.event_cap {
                break StopReason::EventCapReached;
            }
            let ev = self.queue.pop().expect("peeked event must pop");
            self.now = ev.at;
            self.processed += 1;
            processed_now += 1;

            let mut ctx = Ctx {
                now: self.now,
                state: &mut self.state,
                pending: Vec::new(),
                stop_requested: false,
            };
            (ev.run)(&mut ctx);
            let stop = ctx.stop_requested;
            let pending = std::mem::take(&mut ctx.pending);
            for (at, label, run) in pending {
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(Scheduled {
                    at,
                    seq,
                    run,
                    label,
                });
            }
            if stop {
                break StopReason::Requested;
            }
        };
        RunReport {
            events_processed: processed_now,
            finished_at: self.now,
            stop_reason,
        }
    }

    /// Runs the simulation in fixed-size epochs up to `horizon`, calling
    /// `between` on the world state after each epoch boundary.
    ///
    /// Each epoch executes every event with a timestamp inside
    /// `(k*epoch, (k+1)*epoch]` (the first epoch includes `t = 0`), then
    /// invokes `between(state, k)`. This is the conservative-synchronization
    /// hook sharded engines build on: a shard advances its local event loop
    /// one epoch at a time and exchanges cross-shard state only at the
    /// barrier, so no event ever observes same-epoch state of another
    /// shard. The final epoch is truncated at `horizon` and still gets a
    /// `between` call, leaving `now() == horizon`.
    ///
    /// Returns the aggregate report; stops early (skipping further
    /// `between` calls) on [`StopReason::Requested`] or
    /// [`StopReason::EventCapReached`]. Note that [`StopReason::QueueEmpty`]
    /// does *not* stop epoch iteration: `between` may schedule new work.
    ///
    /// # Panics
    ///
    /// Panics when `epoch` is zero.
    pub fn run_epochs(
        &mut self,
        epoch: SimDuration,
        horizon: SimTime,
        mut between: impl FnMut(&mut S, u64),
    ) -> RunReport {
        assert!(epoch > SimDuration::ZERO, "epoch must be positive");
        let mut total = 0u64;
        let mut index = 0u64;
        loop {
            let end = SimTime::ZERO + epoch * (index + 1);
            let end = if end > horizon { horizon } else { end };
            let report = self.run_until(end);
            total += report.events_processed;
            match report.stop_reason {
                StopReason::Requested | StopReason::EventCapReached => {
                    return RunReport {
                        events_processed: total,
                        finished_at: self.now,
                        stop_reason: report.stop_reason,
                    };
                }
                StopReason::QueueEmpty | StopReason::HorizonReached => {}
            }
            // QueueEmpty leaves `now` at the last event; pin it to the
            // barrier so epochs tile the timeline exactly.
            self.now = end;
            between(&mut self.state, index);
            index += 1;
            if end >= horizon {
                return RunReport {
                    events_processed: total,
                    finished_at: self.now,
                    stop_reason: StopReason::HorizonReached,
                };
            }
        }
    }

    /// Labels of all queued events, earliest first (diagnostics aid).
    #[must_use]
    pub fn queued_labels(&self) -> Vec<&'static str> {
        let mut entries: Vec<(SimTime, u64, &'static str)> =
            self.queue.iter().map(|s| (s.at, s.seq, s.label)).collect();
        entries.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        entries.into_iter().map(|(_, _, l)| l).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        sim.schedule_in(SimDuration::from_secs(3), "c", |ctx| {
            ctx.state_mut().push(3)
        });
        sim.schedule_in(SimDuration::from_secs(1), "a", |ctx| {
            ctx.state_mut().push(1)
        });
        sim.schedule_in(SimDuration::from_secs(2), "b", |ctx| {
            ctx.state_mut().push(2)
        });
        sim.run();
        assert_eq!(sim.state(), &vec![1, 2, 3]);
    }

    #[test]
    fn equal_timestamps_fire_in_insertion_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        for i in 0..10u32 {
            sim.schedule_at(SimTime::from_secs(5), "same", move |ctx| {
                ctx.state_mut().push(i)
            });
        }
        sim.run();
        assert_eq!(sim.state(), &(0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn nested_scheduling_advances_time() {
        let mut sim = Simulation::new(0u64);
        sim.schedule_in(SimDuration::from_secs(1), "outer", |ctx| {
            ctx.schedule_in(SimDuration::from_secs(2), "inner", |ctx| {
                *ctx.state_mut() = ctx.now().as_nanos();
            });
        });
        sim.run();
        assert_eq!(*sim.state(), SimTime::from_secs(3).as_nanos());
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_in(SimDuration::from_secs(1), "in", |ctx| *ctx.state_mut() += 1);
        sim.schedule_in(SimDuration::from_secs(10), "out", |ctx| {
            *ctx.state_mut() += 100
        });
        let report = sim.run_until(SimTime::from_secs(5));
        assert_eq!(report.events_processed, 1);
        assert_eq!(report.stop_reason, StopReason::HorizonReached);
        assert_eq!(*sim.state(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        // The later event still runs on a subsequent unbounded run.
        sim.run();
        assert_eq!(*sim.state(), 101);
    }

    #[test]
    fn request_stop_halts_immediately() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_in(SimDuration::from_secs(1), "stop", |ctx| {
            *ctx.state_mut() += 1;
            ctx.request_stop();
        });
        sim.schedule_in(SimDuration::from_secs(2), "never", |ctx| {
            *ctx.state_mut() += 100
        });
        let report = sim.run();
        assert_eq!(report.stop_reason, StopReason::Requested);
        assert_eq!(*sim.state(), 1);
        assert_eq!(sim.queued_events(), 1);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim = Simulation::new(Vec::<&'static str>::new());
        sim.schedule_in(SimDuration::from_secs(2), "late", |ctx| {
            ctx.state_mut().push("late");
            ctx.schedule_at(SimTime::ZERO, "clamped", |ctx| {
                ctx.state_mut().push("clamped");
            });
        });
        sim.run();
        assert_eq!(sim.state(), &vec!["late", "clamped"]);
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn event_cap_stops_runaway_loops() {
        let mut sim = Simulation::new(0u64);
        sim.set_event_cap(100);
        fn respawn(ctx: &mut Ctx<'_, u64>) {
            *ctx.state_mut() += 1;
            ctx.schedule_in(SimDuration::from_nanos(1), "respawn", respawn);
        }
        sim.schedule_in(SimDuration::ZERO, "respawn", respawn);
        let report = sim.run();
        assert_eq!(report.stop_reason, StopReason::EventCapReached);
        assert_eq!(*sim.state(), 100);
    }

    #[test]
    fn run_epochs_fires_barrier_after_each_epoch() {
        // Events at 0.5s intervals over a 3s horizon with 1s epochs:
        // each barrier sees exactly the events of its own epoch applied.
        let mut sim = Simulation::new(Vec::<(u64, u32)>::new());
        for i in 1..=6u32 {
            sim.schedule_at(
                SimTime::ZERO + SimDuration::from_millis(u64::from(i) * 500),
                "tick",
                move |ctx| {
                    let epoch_seen = ctx.state().len() as u64;
                    ctx.state_mut().push((epoch_seen, i));
                },
            );
        }
        let mut barriers = Vec::new();
        let report = sim.run_epochs(
            SimDuration::from_secs(1),
            SimTime::from_secs(3),
            |state, k| barriers.push((k, state.len())),
        );
        assert_eq!(report.stop_reason, StopReason::HorizonReached);
        assert_eq!(report.events_processed, 6);
        // Barrier k runs after events <= (k+1)s: 2, 4, then all 6.
        assert_eq!(barriers, vec![(0, 2), (1, 4), (2, 6)]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn run_epochs_barrier_can_schedule_new_work() {
        let mut sim = Simulation::new(0u32);
        let report = sim.run_epochs(
            SimDuration::from_secs(1),
            SimTime::from_secs(4),
            |state, k| {
                *state += u32::try_from(k).unwrap() + 1;
            },
        );
        // Queue is empty the whole time, yet all 4 barriers still fire.
        assert_eq!(report.stop_reason, StopReason::HorizonReached);
        assert_eq!(*sim.state(), 1 + 2 + 3 + 4);
        assert_eq!(sim.now(), SimTime::from_secs(4));
    }

    #[test]
    fn run_epochs_truncates_final_epoch_at_horizon() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_at(
            SimTime::ZERO + SimDuration::from_millis(2400),
            "late",
            |ctx| *ctx.state_mut() += 1,
        );
        let mut count = 0;
        let report = sim.run_epochs(
            SimDuration::from_secs(1),
            SimTime::ZERO + SimDuration::from_millis(2500),
            |_, _| count += 1,
        );
        assert_eq!(report.events_processed, 1);
        assert_eq!(count, 3, "two full epochs plus a truncated half-epoch");
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(2500));
    }

    #[test]
    fn queued_labels_sorted() {
        let mut sim = Simulation::new(());
        sim.schedule_in(SimDuration::from_secs(2), "b", |_| {});
        sim.schedule_in(SimDuration::from_secs(1), "a", |_| {});
        assert_eq!(sim.queued_labels(), vec!["a", "b"]);
    }
}
