//! Deterministic random-number streams.
//!
//! Every stochastic component in the reproduction (channel loss, workload
//! jitter, synthetic telemetry, ...) draws from a [`RngStream`] derived
//! from a single scenario seed plus a component label. Streams derived
//! from the same `(seed, label)` pair always produce the same sequence, so
//! entire experiments are reproducible bit-for-bit while remaining
//! statistically independent across components.

// The generator is a self-contained xoshiro256++ (public-domain
// algorithm by Blackman & Vigna) seeded through SplitMix64, so the
// kernel has no external RNG dependency and sequences are stable across
// toolchains.

/// A factory that derives independent, reproducible RNG streams from one
/// master seed.
///
/// # Examples
///
/// ```
/// use vdap_sim::SeedFactory;
///
/// let factory = SeedFactory::new(42);
/// let mut a1 = factory.stream("channel");
/// let mut a2 = factory.stream("channel");
/// let mut b = factory.stream("telemetry");
///
/// // Same label => identical stream; different label => different stream.
/// assert_eq!(a1.next_u64(), a2.next_u64());
/// assert_ne!(factory.stream("channel").next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedFactory {
    master: u64,
}

impl SeedFactory {
    /// Creates a factory from a master scenario seed.
    #[must_use]
    pub fn new(master: u64) -> Self {
        SeedFactory { master }
    }

    /// The master seed this factory derives from.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derives a stream for a named component.
    #[must_use]
    pub fn stream(&self, label: &str) -> RngStream {
        RngStream::from_seed_label(self.master, label)
    }

    /// Derives a stream for a named component plus an index, for per-entity
    /// streams such as one per vehicle.
    #[must_use]
    pub fn indexed_stream(&self, label: &str, index: u64) -> RngStream {
        let mixed = splitmix64(self.master ^ fnv1a(label.as_bytes()) ^ splitmix64(index));
        RngStream::from_raw_seed(mixed)
    }
}

/// A deterministic random stream (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct RngStream {
    state: [u64; 4],
}

impl RngStream {
    /// Creates a stream directly from a raw 64-bit seed.
    #[must_use]
    pub fn from_raw_seed(seed: u64) -> Self {
        // Expand the seed through SplitMix64 as the xoshiro authors
        // recommend; a zero state is impossible this way.
        let mut x = splitmix64(seed);
        let mut state = [0u64; 4];
        for s in &mut state {
            x = splitmix64(x);
            *s = x;
        }
        RngStream { state }
    }

    /// Creates a stream from a master seed and component label.
    #[must_use]
    pub fn from_seed_label(master: u64, label: &str) -> Self {
        Self::from_raw_seed(master ^ fnv1a(label.as_bytes()))
    }

    /// The raw xoshiro256++ state words, for checkpointing a stream
    /// mid-sequence.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuilds a stream from previously captured state words.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which xoshiro cannot leave.
    #[must_use]
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(state != [0; 4], "xoshiro state cannot be all-zero");
        RngStream { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform value in `[0, 1)` (53-bit resolution).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi` or either bound is non-finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method: unbiased and fast.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(n);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard-normal sample via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        // Box–Muller needs u1 in (0, 1]; guard against a zero draw.
        let mut u1 = self.uniform();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Exponentially distributed sample with the given mean (`1/λ`).
    ///
    /// # Panics
    ///
    /// Panics when `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let mut u = self.uniform();
        if u <= f64::MIN_POSITIVE {
            u = f64::MIN_POSITIVE;
        }
        -mean * u.ln()
    }

    /// Picks a uniformly random element of `items`, or `None` when empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.below(items.len() as u64) as usize;
            Some(&items[idx])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// SplitMix64 finalizer: cheap, high-quality seed mixing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash for label-to-seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let f = SeedFactory::new(7);
        let xs: Vec<u64> = {
            let mut s = f.stream("x");
            (0..32).map(|_| s.next_u64()).collect()
        };
        let ys: Vec<u64> = {
            let mut s = f.stream("x");
            (0..32).map(|_| s.next_u64()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_diverge() {
        let f = SeedFactory::new(7);
        assert_ne!(f.stream("a").next_u64(), f.stream("b").next_u64());
    }

    #[test]
    fn indexed_streams_diverge() {
        let f = SeedFactory::new(7);
        let mut a = f.indexed_stream("vehicle", 0);
        let mut b = f.indexed_stream("vehicle", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut s = RngStream::from_raw_seed(3);
        for _ in 0..10_000 {
            let u = s.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes_are_deterministic() {
        let mut s = RngStream::from_raw_seed(3);
        assert!(!s.chance(0.0));
        assert!(s.chance(1.0));
        assert!(!s.chance(-0.5));
        assert!(s.chance(1.5));
    }

    #[test]
    fn normal_sample_statistics() {
        let mut s = RngStream::from_raw_seed(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| s.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.25, "variance was {var}");
    }

    #[test]
    fn exponential_sample_statistics() {
        let mut s = RngStream::from_raw_seed(13);
        let n = 20_000;
        let mean = (0..n).map(|_| s.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn below_respects_bound() {
        let mut s = RngStream::from_raw_seed(17);
        for _ in 0..1_000 {
            assert!(s.below(5) < 5);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut s = RngStream::from_raw_seed(19);
        let mut v: Vec<u32> = (0..64).collect();
        s.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
    }

    #[test]
    fn state_round_trip_resumes_mid_sequence() {
        let mut s = RngStream::from_raw_seed(29);
        for _ in 0..100 {
            s.next_u64();
        }
        let mut resumed = RngStream::from_state(s.state());
        for _ in 0..100 {
            assert_eq!(resumed.next_u64(), s.next_u64());
        }
    }

    #[test]
    fn pick_handles_empty() {
        let mut s = RngStream::from_raw_seed(23);
        let empty: [u8; 0] = [];
        assert!(s.pick(&empty).is_none());
        assert!(s.pick(&[1, 2, 3]).is_some());
    }
}
