//! Reliability metrics: MTTR, failover latency, retries, availability.
//!
//! Fault injection and the recovery paths threaded through the platform
//! report into a [`ReliabilityStats`] so a run can answer the questions
//! the paper's drive test raises: how long were components down, how
//! fast did the scheduler fail over, how often were transfers retried,
//! and what availability did each component actually deliver.
//!
//! Components are identified by string label (`"slot1"`, `"lte-uplink"`,
//! `"ddi-store"`, ...). All internal maps are ordered so aggregate
//! figures are bit-identical across same-seed runs.

use std::collections::BTreeMap;

use crate::metrics::Summary;
use crate::time::{SimDuration, SimTime};

/// Aggregated reliability accounting for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReliabilityStats {
    mttr: Summary,
    failover_latency: Summary,
    retries: u64,
    retry_successes: u64,
    retry_exhausted: u64,
    faults_injected: u64,
    down_since: BTreeMap<String, SimTime>,
    downtime: BTreeMap<String, SimDuration>,
    degraded: BTreeMap<String, SimDuration>,
    cache_ttl_evictions: u64,
    disk_spills: u64,
}

impl ReliabilityStats {
    /// Creates empty stats.
    #[must_use]
    pub fn new() -> Self {
        ReliabilityStats::default()
    }

    /// A component went down at `at`. Re-entrant: marking an
    /// already-down component again is a no-op (the first outage start
    /// wins), so overlapping fault windows don't double-count downtime.
    pub fn record_fault(&mut self, component: &str, at: SimTime) {
        self.faults_injected += 1;
        self.down_since.entry(component.to_string()).or_insert(at);
    }

    /// A component recovered at `at`; records one repair interval (MTTR
    /// sample) and accrues the component's downtime. Recovery of a
    /// component that was never marked down is ignored.
    pub fn record_recovery(&mut self, component: &str, at: SimTime) {
        if let Some(since) = self.down_since.remove(component) {
            let repair = at.duration_since(since);
            self.mttr.record_duration(repair);
            *self
                .downtime
                .entry(component.to_string())
                .or_insert(SimDuration::ZERO) += repair;
        }
    }

    /// Whether `component` is currently marked down.
    #[must_use]
    pub fn is_down(&self, component: &str) -> bool {
        self.down_since.contains_key(component)
    }

    /// Records one failover (re-planning) latency.
    pub fn record_failover(&mut self, latency: SimDuration) {
        self.failover_latency.record_duration(latency);
    }

    /// Records one retry attempt.
    pub fn record_retry(&mut self) {
        self.retries += 1;
    }

    /// Records a transfer that eventually succeeded after retrying.
    pub fn record_retry_success(&mut self) {
        self.retry_successes += 1;
    }

    /// Records a transfer that exhausted its retry budget.
    pub fn record_retry_exhausted(&mut self) {
        self.retry_exhausted += 1;
    }

    /// Records `n` cache entries evicted by TTL expiry (a storage
    /// tier's sweep aging data out of its fast tier).
    pub fn record_cache_ttl_evictions(&mut self, n: u64) {
        self.cache_ttl_evictions += n;
    }

    /// Records `n` records spilled (persisted) to the disk tier.
    pub fn record_disk_spills(&mut self, n: u64) {
        self.disk_spills += n;
    }

    /// Total cache entries evicted by TTL expiry.
    #[must_use]
    pub fn cache_ttl_eviction_count(&self) -> u64 {
        self.cache_ttl_evictions
    }

    /// Total records spilled to the disk tier.
    #[must_use]
    pub fn disk_spill_count(&self) -> u64 {
        self.disk_spills
    }

    /// Accrues time a component spent serving in degraded mode (e.g. a
    /// vehicle running its pipeline locally at reduced accuracy because
    /// the edge bounced it). Degraded time is additive — unlike
    /// downtime, overlapping reports are the caller's responsibility.
    pub fn record_degraded(&mut self, component: &str, duration: SimDuration) {
        *self
            .degraded
            .entry(component.to_string())
            .or_insert(SimDuration::ZERO) += duration;
    }

    /// Accrued degraded-mode time for one component.
    #[must_use]
    pub fn degraded_time(&self, component: &str) -> SimDuration {
        self.degraded
            .get(component)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Total degraded-mode time across all components.
    #[must_use]
    pub fn total_degraded_time(&self) -> SimDuration {
        self.degraded
            .values()
            .fold(SimDuration::ZERO, |acc, d| acc + *d)
    }

    /// Components that ever reported degraded-mode time (sorted).
    #[must_use]
    pub fn degraded_components(&self) -> Vec<&str> {
        self.degraded.keys().map(String::as_str).collect()
    }

    /// Mean time to repair, as a [`Summary`] over repair intervals (ms).
    #[must_use]
    pub fn mttr(&self) -> &Summary {
        &self.mttr
    }

    /// Failover (re-plan) latency summary (ms).
    #[must_use]
    pub fn failover_latency(&self) -> &Summary {
        &self.failover_latency
    }

    /// Total retry attempts recorded.
    #[must_use]
    pub fn retry_count(&self) -> u64 {
        self.retries
    }

    /// Transfers that succeeded after at least one retry.
    #[must_use]
    pub fn retry_success_count(&self) -> u64 {
        self.retry_successes
    }

    /// Transfers that gave up after exhausting their retry budget.
    #[must_use]
    pub fn retry_exhausted_count(&self) -> u64 {
        self.retry_exhausted
    }

    /// Number of fault activations recorded.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Accrued downtime for one component up to `until` (an outage still
    /// open at `until` counts up to that instant).
    #[must_use]
    pub fn downtime(&self, component: &str, until: SimTime) -> SimDuration {
        let closed = self
            .downtime
            .get(component)
            .copied()
            .unwrap_or(SimDuration::ZERO);
        let open = self
            .down_since
            .get(component)
            .map_or(SimDuration::ZERO, |since| until.duration_since(*since));
        closed + open
    }

    /// Availability of one component over `[SimTime::ZERO, until]` in
    /// `[0, 1]`; 1 when the horizon is empty.
    #[must_use]
    pub fn availability(&self, component: &str, until: SimTime) -> f64 {
        let horizon = until.elapsed().as_secs_f64();
        if horizon <= 0.0 {
            return 1.0;
        }
        let down = self.downtime(component, until).as_secs_f64();
        (1.0 - down / horizon).clamp(0.0, 1.0)
    }

    /// Components that ever saw downtime (sorted by label).
    #[must_use]
    pub fn faulted_components(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .downtime
            .keys()
            .chain(self.down_since.keys())
            .map(String::as_str)
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Worst per-component availability over the horizon; 1 when no
    /// component ever faulted.
    #[must_use]
    pub fn worst_availability(&self, until: SimTime) -> f64 {
        self.faulted_components()
            .iter()
            .map(|c| self.availability(c, until))
            .fold(1.0, f64::min)
    }

    /// Captures the full internal state for checkpointing. Map entries
    /// come out sorted by component label (the maps are ordered).
    #[must_use]
    pub fn state(&self) -> ReliabilityState {
        ReliabilityState {
            mttr_samples: self.mttr.samples().to_vec(),
            failover_samples: self.failover_latency.samples().to_vec(),
            retries: self.retries,
            retry_successes: self.retry_successes,
            retry_exhausted: self.retry_exhausted,
            faults_injected: self.faults_injected,
            down_since: self
                .down_since
                .iter()
                .map(|(c, t)| (c.clone(), *t))
                .collect(),
            downtime: self.downtime.iter().map(|(c, d)| (c.clone(), *d)).collect(),
            degraded: self.degraded.iter().map(|(c, d)| (c.clone(), *d)).collect(),
            cache_ttl_evictions: self.cache_ttl_evictions,
            disk_spills: self.disk_spills,
        }
    }

    /// Rebuilds stats from captured state.
    #[must_use]
    pub fn from_state(state: ReliabilityState) -> Self {
        ReliabilityStats {
            mttr: state.mttr_samples.into_iter().collect(),
            failover_latency: state.failover_samples.into_iter().collect(),
            retries: state.retries,
            retry_successes: state.retry_successes,
            retry_exhausted: state.retry_exhausted,
            faults_injected: state.faults_injected,
            down_since: state.down_since.into_iter().collect(),
            downtime: state.downtime.into_iter().collect(),
            degraded: state.degraded.into_iter().collect(),
            cache_ttl_evictions: state.cache_ttl_evictions,
            disk_spills: state.disk_spills,
        }
    }

    /// Merges another stats object into this one (used when sub-systems
    /// keep local stats that roll up into a run-level report). Open
    /// outages in `other` are carried over only when this object does
    /// not already track the component.
    pub fn absorb(&mut self, other: &ReliabilityStats) {
        for s in other.mttr.samples() {
            self.mttr.record(*s);
        }
        for s in other.failover_latency.samples() {
            self.failover_latency.record(*s);
        }
        self.retries += other.retries;
        self.retry_successes += other.retry_successes;
        self.retry_exhausted += other.retry_exhausted;
        self.faults_injected += other.faults_injected;
        self.cache_ttl_evictions += other.cache_ttl_evictions;
        self.disk_spills += other.disk_spills;
        for (c, d) in &other.downtime {
            *self.downtime.entry(c.clone()).or_insert(SimDuration::ZERO) += *d;
        }
        for (c, since) in &other.down_since {
            self.down_since.entry(c.clone()).or_insert(*since);
        }
        for (c, d) in &other.degraded {
            *self.degraded.entry(c.clone()).or_insert(SimDuration::ZERO) += *d;
        }
    }
}

/// The complete internal state of a [`ReliabilityStats`], exposed for
/// checkpoint/restore. Sample vectors preserve recording order; map
/// entries are sorted by component label.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReliabilityState {
    /// MTTR samples in recording order (ms).
    pub mttr_samples: Vec<f64>,
    /// Failover-latency samples in recording order (ms).
    pub failover_samples: Vec<f64>,
    /// Total retry attempts.
    pub retries: u64,
    /// Transfers that succeeded after retrying.
    pub retry_successes: u64,
    /// Transfers that exhausted their retry budget.
    pub retry_exhausted: u64,
    /// Fault activations recorded.
    pub faults_injected: u64,
    /// Components currently down and when each outage began.
    pub down_since: Vec<(String, SimTime)>,
    /// Closed-outage downtime per component.
    pub downtime: Vec<(String, SimDuration)>,
    /// Degraded-mode time per component.
    pub degraded: Vec<(String, SimDuration)>,
    /// Cache entries evicted by TTL expiry.
    pub cache_ttl_evictions: u64,
    /// Records spilled to the disk tier.
    pub disk_spills: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trips_open_and_closed_outages() {
        let mut r = ReliabilityStats::new();
        r.record_fault("gpu", SimTime::from_secs(10));
        r.record_recovery("gpu", SimTime::from_secs(40));
        r.record_fault("lte", SimTime::from_secs(50));
        r.record_retry();
        r.record_retry_success();
        r.record_failover(SimDuration::from_millis(7));
        r.record_degraded("tenant1", SimDuration::from_secs(2));
        r.record_cache_ttl_evictions(5);
        r.record_disk_spills(2);
        let back = ReliabilityStats::from_state(r.state());
        assert_eq!(back, r);
        assert!(back.is_down("lte"));
        assert_eq!(
            back.downtime("gpu", SimTime::from_secs(100)),
            SimDuration::from_secs(30)
        );
    }

    #[test]
    fn fault_recovery_cycle_feeds_mttr_and_downtime() {
        let mut r = ReliabilityStats::new();
        r.record_fault("gpu", SimTime::from_secs(10));
        assert!(r.is_down("gpu"));
        r.record_recovery("gpu", SimTime::from_secs(40));
        assert!(!r.is_down("gpu"));
        assert_eq!(r.mttr().count(), 1);
        assert!((r.mttr().mean() - 30_000.0).abs() < 1e-6, "MTTR in ms");
        assert_eq!(
            r.downtime("gpu", SimTime::from_secs(100)),
            SimDuration::from_secs(30)
        );
    }

    #[test]
    fn availability_counts_open_outages() {
        let mut r = ReliabilityStats::new();
        r.record_fault("lte", SimTime::from_secs(50));
        let a = r.availability("lte", SimTime::from_secs(100));
        assert!((a - 0.5).abs() < 1e-9, "open outage half the horizon: {a}");
    }

    #[test]
    fn overlapping_faults_do_not_double_count() {
        let mut r = ReliabilityStats::new();
        r.record_fault("gpu", SimTime::from_secs(10));
        r.record_fault("gpu", SimTime::from_secs(15));
        r.record_recovery("gpu", SimTime::from_secs(20));
        assert_eq!(
            r.downtime("gpu", SimTime::from_secs(20)),
            SimDuration::from_secs(10)
        );
        assert_eq!(r.faults_injected(), 2);
    }

    #[test]
    fn unmatched_recovery_ignored() {
        let mut r = ReliabilityStats::new();
        r.record_recovery("ghost", SimTime::from_secs(5));
        assert_eq!(r.mttr().count(), 0);
        assert_eq!(r.availability("ghost", SimTime::from_secs(10)), 1.0);
    }

    #[test]
    fn worst_availability_picks_most_degraded() {
        let mut r = ReliabilityStats::new();
        r.record_fault("a", SimTime::from_secs(0));
        r.record_recovery("a", SimTime::from_secs(10));
        r.record_fault("b", SimTime::from_secs(0));
        r.record_recovery("b", SimTime::from_secs(50));
        let worst = r.worst_availability(SimTime::from_secs(100));
        assert!((worst - 0.5).abs() < 1e-9, "worst is b at 0.5: {worst}");
    }

    #[test]
    fn absorb_merges_everything() {
        let mut a = ReliabilityStats::new();
        a.record_retry();
        a.record_degraded("tenant0", SimDuration::from_secs(1));
        let mut b = ReliabilityStats::new();
        b.record_fault("x", SimTime::from_secs(1));
        b.record_recovery("x", SimTime::from_secs(2));
        b.record_retry();
        b.record_retry_success();
        b.record_failover(SimDuration::from_millis(5));
        b.record_degraded("tenant0", SimDuration::from_secs(2));
        b.record_degraded("tenant1", SimDuration::from_secs(3));
        b.record_cache_ttl_evictions(4);
        b.record_disk_spills(3);
        a.absorb(&b);
        assert_eq!(a.cache_ttl_eviction_count(), 4);
        assert_eq!(a.disk_spill_count(), 3);
        assert_eq!(a.retry_count(), 2);
        assert_eq!(a.retry_success_count(), 1);
        assert_eq!(a.mttr().count(), 1);
        assert_eq!(a.failover_latency().count(), 1);
        assert_eq!(a.faults_injected(), 1);
        assert_eq!(a.degraded_time("tenant0"), SimDuration::from_secs(3));
        assert_eq!(a.degraded_time("tenant1"), SimDuration::from_secs(3));
        assert_eq!(a.total_degraded_time(), SimDuration::from_secs(6));
    }

    #[test]
    fn degraded_time_accrues_additively() {
        let mut r = ReliabilityStats::new();
        assert_eq!(r.degraded_time("tenant0"), SimDuration::ZERO);
        r.record_degraded("tenant0", SimDuration::from_millis(250));
        r.record_degraded("tenant0", SimDuration::from_millis(750));
        assert_eq!(r.degraded_time("tenant0"), SimDuration::from_secs(1));
        assert_eq!(r.degraded_components(), vec!["tenant0"]);
        // Degraded time is not downtime: availability is untouched.
        assert_eq!(r.availability("tenant0", SimTime::from_secs(10)), 1.0);
    }
}
