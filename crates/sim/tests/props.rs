//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use vdap_sim::{Histogram, RngStream, SimDuration, SimTime, Simulation, Summary};

proptest! {
    #[test]
    fn duration_addition_commutes(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let x = SimDuration::from_nanos(a);
        let y = SimDuration::from_nanos(b);
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn duration_saturating_roundtrip(a in any::<u64>(), b in any::<u64>()) {
        let x = SimDuration::from_nanos(a);
        let y = SimDuration::from_nanos(b);
        // (x + y) - y >= x only when no saturation happened; in all cases
        // the result is never greater than x.
        let back = (x + y) - y;
        prop_assert!(back.as_nanos() <= a || a.checked_add(b).is_none());
    }

    #[test]
    fn time_plus_duration_ordering(t in 0u64..u64::MAX / 2, d in 1u64..u64::MAX / 2) {
        let at = SimTime::from_nanos(t);
        let later = at + SimDuration::from_nanos(d);
        prop_assert!(later > at);
        prop_assert_eq!(later - at, SimDuration::from_nanos(d));
    }

    #[test]
    fn conversion_floor_consistency(ms in 0u64..10_000_000) {
        let d = SimDuration::from_millis(ms);
        prop_assert_eq!(d.as_millis(), ms);
        prop_assert_eq!(d.as_micros(), ms * 1000);
        prop_assert!((d.as_millis_f64() - ms as f64).abs() < 1e-6);
    }

    #[test]
    fn histogram_quantiles_bounded_and_monotone(
        samples in prop::collection::vec(0.0f64..1e6, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new("p");
        for &s in &samples {
            h.record(s);
        }
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let v_lo = h.quantile(lo);
        let v_hi = h.quantile(hi);
        prop_assert!(v_lo <= v_hi, "quantiles must be monotone: {} > {}", v_lo, v_hi);
        prop_assert!(v_lo >= h.min() && v_hi <= h.max());
    }

    #[test]
    fn summary_mean_between_min_and_max(
        samples in prop::collection::vec(-1e9f64..1e9, 1..200),
    ) {
        let s: Summary = samples.iter().copied().collect();
        prop_assert!(s.mean() >= s.min() - 1e-6);
        prop_assert!(s.mean() <= s.max() + 1e-6);
    }

    #[test]
    fn events_always_fire_in_nondecreasing_time_order(
        delays in prop::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for &d in &delays {
            sim.schedule_in(SimDuration::from_nanos(d), "e", move |ctx| {
                let t = ctx.now().as_nanos();
                ctx.state_mut().push(t);
            });
        }
        sim.run();
        let fired = sim.state();
        prop_assert_eq!(fired.len(), delays.len());
        prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn event_order_replays_bit_identically(
        delays in prop::collection::vec(0u64..1_000, 1..100),
    ) {
        // Same schedule ⇒ same firing order, including ties: events at
        // equal timestamps fire in insertion order, so a replayed run
        // (as the fault injector's chaos scenarios rely on) observes an
        // identical interleaving. Coarse delays force many ties.
        let run = || {
            let mut sim = Simulation::new(Vec::<(u64, usize)>::new());
            for (i, &d) in delays.iter().enumerate() {
                sim.schedule_in(SimDuration::from_micros(d), "e", move |ctx| {
                    let t = ctx.now().as_nanos();
                    ctx.state_mut().push((t, i));
                });
            }
            sim.run();
            sim.into_state()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b, "same schedule must replay identically");
        prop_assert_eq!(a.len(), delays.len());
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = RngStream::from_raw_seed(seed);
        let mut b = RngStream::from_raw_seed(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_uniform_in_unit_interval(seed in any::<u64>()) {
        let mut s = RngStream::from_raw_seed(seed);
        for _ in 0..64 {
            let u = s.uniform();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }
}
