//! # vdap-bench — benchmark and paper-reproduction harness
//!
//! Two consumers share this crate:
//!
//! * the `repro` binary, which regenerates every table and figure of the
//!   paper (plus the DESIGN.md extension experiments) as text tables;
//! * the Criterion benches under `benches/`, which measure the real CPU
//!   cost of the substrate (CV kernels, channel simulation, planners,
//!   training loops).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod table;
