//! Regenerates the paper's tables and figures (and the extension
//! experiments) as aligned text tables.
//!
//! ```text
//! cargo run -p vdap-bench --bin repro -- all
//! cargo run -p vdap-bench --bin repro -- table1 fig2 fig3
//! cargo run -p vdap-bench --bin repro -- fleet
//! ```
//!
//! An unknown experiment name prints the usage text with the full
//! target list and exits non-zero.

use vdap_bench::experiments;

const SEED: u64 = 42;

fn print_experiment(name: &str) -> bool {
    let table = match name {
        "table1" => experiments::table1().1,
        "fig2" => experiments::fig2(SEED).1,
        "fig3" => experiments::fig3().1,
        "upload-wall" => experiments::upload_wall(),
        "battery" => experiments::battery(),
        "elastic" => experiments::elastic(SEED),
        "strategies" => experiments::strategies(SEED),
        "crossover" => experiments::crossover(SEED),
        "pbeam" => experiments::pbeam(SEED),
        "ddi" => experiments::ddi(SEED),
        "dsf" => experiments::dsf(),
        "collab" => experiments::collab(SEED),
        "objectives" => experiments::objectives(SEED),
        "modelcache" => experiments::modelcache(SEED),
        "admission" => experiments::admission(),
        "infotainment" => experiments::infotainment(SEED),
        "fleet" => experiments::fleet(SEED),
        "fleet-chaos" => experiments::fleet_chaos(SEED),
        "fleet-elastic" => experiments::fleet_elastic(SEED),
        "fleet-storm" => experiments::fleet_storm(SEED),
        "fleet-trace" => experiments::fleet_trace(SEED),
        "fleet-ingest" => experiments::fleet_ingest(SEED),
        "fleet-mobility" => experiments::fleet_mobility(SEED),
        _ => return false,
    };
    // Chaos-bearing experiments derive their fault windows from the run
    // seed; print it above the table so the exact storm can be rebuilt
    // from the output alone.
    if matches!(
        name,
        "fleet" | "fleet-chaos" | "fleet-storm" | "fleet-trace" | "fleet-ingest" | "fleet-mobility"
    ) {
        println!("fault-plan seed: {SEED}");
    }
    println!("{}", table.render());
    true
}

const ALL: [&str; 23] = [
    "table1",
    "fig2",
    "fig3",
    "upload-wall",
    "battery",
    "elastic",
    "strategies",
    "crossover",
    "pbeam",
    "ddi",
    "dsf",
    "collab",
    "objectives",
    "modelcache",
    "admission",
    "infotainment",
    "fleet",
    "fleet-chaos",
    "fleet-elastic",
    "fleet-storm",
    "fleet-trace",
    "fleet-ingest",
    "fleet-mobility",
];

/// Prints usage plus the list of every reproduction target.
fn usage() {
    eprintln!("usage: repro [all | <experiment>...]");
    eprintln!();
    eprintln!("experiments:");
    for name in ALL {
        eprintln!("  {name}");
    }
    eprintln!();
    eprintln!("'all' (or no arguments) runs every experiment in order.");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Validate everything up front so a typo in the middle of a list
    // fails fast instead of after minutes of earlier experiments.
    if let Some(bad) = args
        .iter()
        .find(|a| *a != "all" && !ALL.contains(&a.as_str()))
    {
        eprintln!("unknown experiment '{bad}'");
        eprintln!();
        usage();
        std::process::exit(2);
    }
    let requested: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in requested {
        assert!(print_experiment(name), "validated above");
    }
}
