//! Regenerates the paper's tables and figures (and the extension
//! experiments) as aligned text tables.
//!
//! ```text
//! cargo run -p vdap-bench --bin repro -- all
//! cargo run -p vdap-bench --bin repro -- table1 fig2 fig3
//! cargo run -p vdap-bench --bin repro -- fleet-resume
//! ```
//!
//! An unknown experiment name prints the usage text with the full
//! target list and exits non-zero.

use vdap_bench::experiments;
use vdap_bench::table::TextTable;

const SEED: u64 = 42;

/// One reproduction target: its CLI name, whether its fault windows
/// are derived from the run seed (printed above the table so the exact
/// storm can be rebuilt from the output alone), and the runner.
struct Target {
    name: &'static str,
    seeded_chaos: bool,
    run: fn(u64) -> TextTable,
}

impl Target {
    const fn plain(name: &'static str, run: fn(u64) -> TextTable) -> Self {
        Target {
            name,
            seeded_chaos: false,
            run,
        }
    }

    const fn chaos(name: &'static str, run: fn(u64) -> TextTable) -> Self {
        Target {
            name,
            seeded_chaos: true,
            run,
        }
    }
}

/// Every reproduction target, in `all` execution order. This is the
/// single source of truth: the dispatch, the usage listing, and the
/// chaos-seed banner all read from it.
const TARGETS: &[Target] = &[
    Target::plain("table1", |_| experiments::table1().1),
    Target::plain("fig2", |s| experiments::fig2(s).1),
    Target::plain("fig3", |_| experiments::fig3().1),
    Target::plain("upload-wall", |_| experiments::upload_wall()),
    Target::plain("battery", |_| experiments::battery()),
    Target::plain("elastic", experiments::elastic),
    Target::plain("strategies", experiments::strategies),
    Target::plain("crossover", experiments::crossover),
    Target::plain("pbeam", experiments::pbeam),
    Target::plain("ddi", experiments::ddi),
    Target::plain("dsf", |_| experiments::dsf()),
    Target::plain("collab", experiments::collab),
    Target::plain("objectives", experiments::objectives),
    Target::plain("modelcache", experiments::modelcache),
    Target::plain("admission", |_| experiments::admission()),
    Target::plain("infotainment", experiments::infotainment),
    Target::chaos("fleet", experiments::fleet),
    Target::chaos("fleet-chaos", experiments::fleet_chaos),
    Target::plain("fleet-elastic", experiments::fleet_elastic),
    Target::chaos("fleet-storm", experiments::fleet_storm),
    Target::chaos("fleet-trace", experiments::fleet_trace),
    Target::chaos("fleet-ingest", experiments::fleet_ingest),
    Target::chaos("fleet-mobility", experiments::fleet_mobility),
    Target::chaos("fleet-resume", experiments::fleet_resume),
    Target::chaos("fleet-steal", experiments::fleet_steal),
    Target::plain("fleet-obs", experiments::fleet_obs),
];

fn target_of(name: &str) -> Option<&'static Target> {
    TARGETS.iter().find(|t| t.name == name)
}

/// Prints usage plus the list of every reproduction target.
fn usage() {
    eprintln!("usage: repro [all | <experiment>...]");
    eprintln!();
    eprintln!("experiments:");
    for t in TARGETS {
        eprintln!("  {}", t.name);
    }
    eprintln!();
    eprintln!("'all' (or no arguments) runs every experiment in order.");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Validate everything up front so a typo in the middle of a list
    // fails fast instead of after minutes of earlier experiments.
    if let Some(bad) = args.iter().find(|a| *a != "all" && target_of(a).is_none()) {
        eprintln!("unknown experiment '{bad}'");
        eprintln!();
        usage();
        std::process::exit(2);
    }
    let requested: Vec<&Target> = if args.is_empty() || args.iter().any(|a| a == "all") {
        TARGETS.iter().collect()
    } else {
        args.iter()
            .map(|a| target_of(a).expect("validated above"))
            .collect()
    };
    for t in requested {
        if t.seeded_chaos {
            println!("fault-plan seed: {SEED}");
        }
        println!("{}", (t.run)(SEED).render());
    }
}
