//! The per-experiment reproduction runners (DESIGN.md §2).
//!
//! Each function regenerates one paper table/figure (or extension
//! experiment) as structured rows plus a rendered [`TextTable`]. The
//! `repro` binary prints them; integration tests pin their shapes;
//! EXPERIMENTS.md records paper-vs-measured.

use vdap_ddi::{DdiService, DriverStyle, ObdCollector, Query, RecordKind};
use vdap_edgeos::Objective;
use vdap_fleet::{
    FleetConfig, FleetEngine, IngestConfig, JsonlSpillSink, MobilityConfig, ObsHistogram,
    SnapshotStore, SpanOutcome, CKPT_STORE_LABEL, ENGINE_LABEL,
};
use vdap_hw::{catalog, Battery, ComputeWorkload, TaskClass};
use vdap_models::zoo;
use vdap_models::{PbeamConfig, PbeamPipeline, SensorBias};
use vdap_net::{
    stream_clip, CellularChannel, LinkSpec, Mph, Resolution, VideoStreamSpec, FIG2_FRAME_LOSS,
    FIG2_PACKET_LOSS,
};
use vdap_offload::run_strategy;
use vdap_sim::{SeedFactory, SimDuration, SimTime};
use vdap_vcu::{
    license_plate_pipeline, partition_data_parallel, CpuOnlyScheduler, DsfScheduler,
    RoundRobinScheduler, SchedulePolicy,
};

use openvdap::scenario::{
    collaboration_experiment, compare_strategies, elastic_adaptation_timeline, CollabMode,
    ScenarioConfig,
};
use openvdap::Infrastructure;

use crate::table::{f2, f3, TextTable};

/// Table I row: one algorithm, paper vs reproduced latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Algorithm name.
    pub name: String,
    /// Paper-reported latency, ms.
    pub paper_ms: f64,
    /// Reproduced (simulated) latency on the calibrated vCPU, ms.
    pub measured_ms: f64,
}

/// E1 — Table I: driving-algorithm latency on the AWS 2.4 GHz vCPU.
#[must_use]
pub fn table1() -> (Vec<Table1Row>, TextTable) {
    let cpu = catalog::aws_vcpu_2_4ghz();
    let rows: Vec<Table1Row> = zoo::table1_workloads()
        .iter()
        .zip(zoo::TABLE1_LATENCY_MS)
        .map(|(w, (name, paper_ms))| Table1Row {
            name: name.to_string(),
            paper_ms,
            measured_ms: cpu.service_time(w).as_millis_f64(),
        })
        .collect();
    let mut t = TextTable::new(
        "Table I — autonomous-driving algorithm latency (AWS 2.4 GHz vCPU)",
        &["algorithm", "paper (ms)", "reproduced (ms)"],
    );
    for r in &rows {
        t.row(&[r.name.clone(), f2(r.paper_ms), f2(r.measured_ms)]);
    }
    (rows, t)
}

/// Figure 2 row: loss rates for one (speed, resolution) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// Vehicle speed, MPH.
    pub speed_mph: f64,
    /// Stream resolution.
    pub resolution: Resolution,
    /// Paper packet-loss rate.
    pub paper_packet: f64,
    /// Paper frame-loss rate.
    pub paper_frame: f64,
    /// Simulated packet-loss rate.
    pub sim_packet: f64,
    /// Simulated (emergent) frame-loss rate.
    pub sim_frame: f64,
}

/// E2 — Figure 2: packet and frame loss for 5-minute RTP/H.264 uploads.
#[must_use]
pub fn fig2(seed: u64) -> (Vec<Fig2Row>, TextTable) {
    let channel = CellularChannel::calibrated();
    let seeds = SeedFactory::new(seed);
    let mut rows = Vec::new();
    for (i, &(speed, bitrate, paper_packet)) in FIG2_PACKET_LOSS.iter().enumerate() {
        let resolution = if (bitrate - 3.8).abs() < 1e-9 {
            Resolution::P720
        } else {
            Resolution::P1080
        };
        let paper_frame = FIG2_FRAME_LOSS[i].2;
        let spec = VideoStreamSpec::paper_encoding(resolution);
        let mut loss =
            channel.loss_process(Mph(speed), bitrate, seeds.indexed_stream("fig2", i as u64));
        let stats = stream_clip(&spec, &mut loss, SimTime::ZERO, SimDuration::from_secs(300));
        rows.push(Fig2Row {
            speed_mph: speed,
            resolution,
            paper_packet,
            paper_frame,
            sim_packet: stats.packet_loss_rate(),
            sim_frame: stats.frame_loss_rate(),
        });
    }
    let mut t = TextTable::new(
        "Figure 2 — packet & frame loss vs speed and resolution (LTE uplink)",
        &[
            "scenario",
            "paper pkt",
            "sim pkt",
            "paper frame",
            "sim frame",
        ],
    );
    for r in &rows {
        t.row(&[
            format!("{} MPH {}", r.speed_mph, r.resolution),
            f3(r.paper_packet),
            f3(r.sim_packet),
            f3(r.paper_frame),
            f3(r.sim_frame),
        ]);
    }
    (rows, t)
}

/// Figure 3 row: Inception v3 on one processor.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Processor name.
    pub name: String,
    /// Paper-reported processing time, ms.
    pub paper_ms: f64,
    /// Reproduced time, ms.
    pub measured_ms: f64,
    /// Max power draw, W.
    pub power_w: f64,
    /// Energy per inference, J.
    pub energy_j: f64,
}

/// E3 — Figure 3: Inception v3 across heterogeneous processors.
#[must_use]
pub fn fig3() -> (Vec<Fig3Row>, TextTable) {
    let inception = zoo::inception_v3();
    let rows: Vec<Fig3Row> = catalog::fig3_processors()
        .iter()
        .zip(catalog::FIG3_TIMES_MS)
        .map(|(spec, (name, paper_ms))| Fig3Row {
            name: name.to_string(),
            paper_ms,
            measured_ms: spec.service_time(&inception).as_millis_f64(),
            power_w: spec.max_watts(),
            energy_j: spec.energy_joules(&inception),
        })
        .collect();
    let mut t = TextTable::new(
        "Figure 3 — Inception v3 on heterogeneous processors",
        &[
            "processor",
            "paper (ms)",
            "reproduced (ms)",
            "max power (W)",
            "energy/inference (J)",
        ],
    );
    for r in &rows {
        t.row(&[
            r.name.clone(),
            f2(r.paper_ms),
            f2(r.measured_ms),
            f2(r.power_w),
            f3(r.energy_j),
        ]);
    }
    (rows, t)
}

/// E4 — §III-A's upload wall: hours to upload a CAV day of data.
#[must_use]
pub fn upload_wall() -> TextTable {
    let volumes: [(&str, u64); 3] = [
        ("0.4 TB (10%)", 400_000_000_000),
        ("4 TB (paper)", 4_000_000_000_000),
        ("11 TB (lidar-heavy)", 11_000_000_000_000),
    ];
    let links = [
        ("LTE (8 Mbps up)", LinkSpec::lte()),
        (
            "LTE ideal (100 Mbps)",
            LinkSpec::new(vdap_net::LinkKind::Lte, 100.0, 100.0, SimDuration::ZERO),
        ),
        ("5G (60 Mbps up)", LinkSpec::five_g()),
    ];
    let mut t = TextTable::new(
        "E4 — daily data volume vs uplink (hours to upload one day)",
        &[
            "volume",
            "LTE (8 Mbps up)",
            "LTE ideal (100 Mbps)",
            "5G (60 Mbps up)",
        ],
    );
    for (label, bytes) in volumes {
        let mut cells = vec![label.to_string()];
        for (_, link) in &links {
            cells.push(f2(link.upload_hours(bytes)));
        }
        t.row(&cells);
    }
    t
}

/// E5 — elastic adaptation timeline for the AMBER search service.
#[must_use]
pub fn elastic(seed: u64) -> TextTable {
    let cfg = ScenarioConfig {
        seed,
        duration: SimDuration::from_secs(40),
        ..ScenarioConfig::default()
    };
    let samples = elastic_adaptation_timeline(&cfg);
    let mut t = TextTable::new(
        "E5 — elastic pipeline selection vs speed (AMBER search, 800 ms deadline)",
        &["t (s)", "speed (MPH)", "pipeline", "est. latency (ms)"],
    );
    for s in samples.iter().step_by(2) {
        t.row(&[
            format!("{}", s.at.as_nanos() / 1_000_000_000),
            f2(s.speed_mph),
            s.pipeline.clone().unwrap_or_else(|| "(hung)".into()),
            s.latency
                .map_or_else(|| "-".into(), |l| f2(l.as_millis_f64())),
        ]);
    }
    t
}

/// E6 — strategy comparison across speeds.
#[must_use]
pub fn strategies(seed: u64) -> TextTable {
    let mut t = TextTable::new(
        "E6 — cloud-only vs in-vehicle vs edge-based (detection stream)",
        &[
            "speed",
            "strategy",
            "mean latency (ms)",
            "vehicle energy/req (J)",
            "uplink bytes/req",
        ],
    );
    for speed in [0.0, 35.0, 70.0] {
        let cfg = ScenarioConfig {
            seed,
            speed: Mph(speed),
            vehicles: 2,
            duration: SimDuration::from_secs(10),
            ..ScenarioConfig::default()
        };
        for o in compare_strategies(&cfg) {
            t.row(&[
                format!("{speed} MPH"),
                o.strategy.clone(),
                f2(o.cost.mean_latency().as_millis_f64()),
                f3(o.cost.mean_energy_j()),
                format!("{}", o.cost.bytes_up / o.cost.requests.max(1)),
            ]);
        }
    }
    t
}

/// E7 — the pBEAM pipeline report.
#[must_use]
pub fn pbeam(seed: u64) -> TextTable {
    let pipeline = PbeamPipeline::new(PbeamConfig::default(), SeedFactory::new(seed));
    let (report, _) = pipeline.run(DriverStyle::Aggressive, SensorBias::none());
    let mut t = TextTable::new(
        "E7 — cBEAM → compressed → pBEAM (aggressive driver, driver-relative truth)",
        &["metric", "value"],
    );
    t.row(&[
        "cBEAM accuracy (population test)".into(),
        f3(report.cbeam_accuracy),
    ]);
    t.row(&[
        "compressed accuracy (population test)".into(),
        f3(report.compressed_accuracy),
    ]);
    t.row(&["compression ratio".into(), f2(report.compression.ratio())]);
    t.row(&["sparsity".into(), f3(report.compression.sparsity())]);
    t.row(&[
        "personal accuracy before transfer".into(),
        f3(report.personal_before),
    ]);
    t.row(&[
        "personal accuracy after transfer (pBEAM)".into(),
        f3(report.personal_after),
    ]);
    t.row(&[
        "personalization gain".into(),
        f3(report.personalization_gain()),
    ]);
    t
}

/// E8 — DDI storage-path latency.
#[must_use]
pub fn ddi(seed: u64) -> TextTable {
    let seeds = SeedFactory::new(seed);
    let mut service = DdiService::new(16_384, SimDuration::from_secs(300));
    let mut obd = ObdCollector::new(DriverStyle::Normal, seeds.stream("obd"));
    // One hour of 10 Hz telemetry, uploaded as it is produced.
    for record in obd.trace(SimTime::ZERO, 36_000) {
        let at = record.at;
        service.upload(record, at);
    }
    let q = Query::window(
        RecordKind::Driving,
        SimTime::from_secs(3500),
        SimTime::from_secs(3600),
    );
    let hot = service.download(&q, SimTime::from_secs(3600));
    // Expire everything and write back to disk.
    let (persisted, sweep_cost) = service.sweep(SimTime::from_secs(8000));
    let mut cold_service = service.clone();
    let cold = cold_service.download(&q, SimTime::from_secs(8001));
    let recached = cold_service.download(&q, SimTime::from_secs(8002));
    let mut t = TextTable::new(
        "E8 — DDI two-tier storage path (1 h of 10 Hz OBD telemetry)",
        &["step", "served from", "latency (ms)", "records"],
    );
    t.row(&[
        "fresh query (memory)".into(),
        format!("{:?}", hot.served_from),
        f3(hot.latency.as_millis_f64()),
        hot.records.len().to_string(),
    ]);
    t.row(&[
        format!("TTL sweep ({persisted} records persisted)"),
        "-".into(),
        f3(sweep_cost.as_millis_f64()),
        persisted.to_string(),
    ]);
    t.row(&[
        "cold query (disk)".into(),
        format!("{:?}", cold.served_from),
        f3(cold.latency.as_millis_f64()),
        cold.records.len().to_string(),
    ]);
    t.row(&[
        "repeat query (re-cached)".into(),
        format!("{:?}", recached.served_from),
        f3(recached.latency.as_millis_f64()),
        recached.records.len().to_string(),
    ]);
    t
}

/// E9 — DSF scheduling ablation on a mixed task DAG.
#[must_use]
pub fn dsf() -> TextTable {
    let board = vdap_hw::VcuBoard::reference_design();
    // A realistic mixed DAG: the plate pipeline plus a data-parallel CNN.
    let mut graph = license_plate_pipeline(None);
    let cnn = ComputeWorkload::new("frame-cnn", TaskClass::DenseLinearAlgebra)
        .with_gflops(20.0)
        .with_parallel_fraction(0.97);
    let dp = partition_data_parallel("cnn", &cnn, 4, 0.01);
    // Merge the data-parallel graph into the pipeline graph.
    let offset = graph.len() as u32;
    for task in dp.tasks() {
        graph.add_task(task.workload().clone());
    }
    for &(p, c) in dp.edges() {
        graph
            .add_dependency(
                vdap_vcu::TaskId(p.0 + offset),
                vdap_vcu::TaskId(c.0 + offset),
            )
            .expect("merged graph stays acyclic");
    }
    let policies: [&dyn SchedulePolicy; 3] = [
        &DsfScheduler::new(),
        &RoundRobinScheduler,
        &CpuOnlyScheduler,
    ];
    let mut t = TextTable::new(
        "E9 — DSF scheduler ablation (plate pipeline + data-parallel CNN)",
        &["policy", "makespan (ms)", "energy (J)"],
    );
    for p in policies {
        let plan = p
            .plan(&graph, &board, SimTime::ZERO)
            .expect("reference board runs everything");
        t.row(&[
            p.name().to_string(),
            f2(plan.makespan.as_millis_f64()),
            f3(plan.energy_joules),
        ]);
    }
    t
}

/// E10 — V2V collaboration study.
#[must_use]
pub fn collab(seed: u64) -> TextTable {
    let cfg = ScenarioConfig {
        seed,
        vehicles: 4,
        duration: SimDuration::from_secs(120),
        // Highway spacing: 15 s gaps at 70 MPH put ~0.29 mi between
        // convoy members — beyond direct DSRC reach, so gossip must wait
        // for contacts while the RSU relay keeps working.
        speed: Mph(70.0),
        ..ScenarioConfig::default()
    };
    let mut t = TextTable::new(
        "E10 — V2V result sharing (4-vehicle convoy, AMBER tile scans)",
        &[
            "mode",
            "computations",
            "reused",
            "compute saved (ms)",
            "hit rate",
        ],
    );
    for (label, mode) in [
        ("no collaboration", CollabMode::Off),
        ("DSRC gossip", CollabMode::DsrcGossip),
        ("RSU relay", CollabMode::RsuRelay),
    ] {
        let out = collaboration_experiment(&cfg, mode);
        t.row(&[
            label.into(),
            out.computations.to_string(),
            out.reused.to_string(),
            f2(out.saved.as_millis_f64()),
            f3(out.hit_rate),
        ]);
    }
    t
}

/// Extension: the §III-B power/range argument on an EV battery.
#[must_use]
pub fn battery() -> TextTable {
    let battery = Battery::typical_ev();
    let mut t = TextTable::new(
        "E4b — compute power vs EV range (60 kWh pack, 250 Wh/mile, 60 MPH)",
        &["compute rig", "power (W)", "range (miles)", "range lost"],
    );
    let rigs = [
        ("VCU reference board (budget)", 300.0),
        ("CPU + Tesla V100 (paper §III-B)", 310.0),
        ("2x V100 server", 560.0),
        ("Movidius-only perception", 10.0),
    ];
    for (name, watts) in rigs {
        t.row(&[
            name.to_string(),
            f2(watts),
            f2(battery.range_miles(watts, 60.0)),
            format!("{:.1}%", battery.range_penalty(watts, 60.0) * 100.0),
        ]);
    }
    t
}

/// Extension: edge-vs-cloud crossover as the edge gets loaded (where the
/// offloading decision flips).
#[must_use]
pub fn crossover(seed: u64) -> TextTable {
    let stages = openvdap::scenario::detection_stages();
    let mut t = TextTable::new(
        "E6b — edge-load crossover for the detection pipeline (35 MPH)",
        &["edge load", "edge-based latency (ms)", "chosen sites"],
    );
    for load in [1.0, 4.0, 16.0, 64.0, 256.0] {
        let mut infra = Infrastructure::reference();
        infra.apply_mobility(Mph(35.0));
        infra.edge_load = load;
        let mut platform = openvdap::OpenVdap::builder().seed(seed).build();
        // The board carries a standing ADAS backlog, so offloading is
        // attractive until the shared edge itself saturates.
        openvdap::scenario::preload_board(&mut platform, 1.0);
        let env = infra.env(platform.vcu().board(), SimTime::ZERO);
        let strategy = vdap_offload::EdgeBased {
            objective: Objective::MinLatency,
            deadline: None,
        };
        let cost = run_strategy(&strategy, &stages, &env, 1).expect("feasible");
        let plan =
            vdap_offload::optimal_placement("detect", &stages, &env, Objective::MinLatency, None)
                .expect("feasible");
        let sites: Vec<String> = plan
            .pipeline
            .sites()
            .iter()
            .map(ToString::to_string)
            .collect();
        t.row(&[
            f2(load),
            f2(cost.mean_latency().as_millis_f64()),
            sites.join("→"),
        ]);
    }
    t
}

/// E5b — objective ablation: latency-first vs energy-first elastic
/// management over a 10-minute city drive, with the battery impact.
#[must_use]
pub fn objectives(seed: u64) -> TextTable {
    let mut t = TextTable::new(
        "E5b — elastic objective ablation (10 min at 35 MPH, AMBER search at 1 Hz)",
        &[
            "objective",
            "mean latency (ms)",
            "vehicle energy (J)",
            "avg compute power (W)",
            "EV range lost",
        ],
    );
    for (label, objective) in [
        ("min-latency", Objective::MinLatency),
        ("min-vehicle-energy", Objective::MinVehicleEnergy),
    ] {
        let mut platform = openvdap::OpenVdap::builder().seed(seed).build();
        let handle =
            platform.register_service(openvdap::apps::amber_alert(SimDuration::from_secs(2)));
        let mut infra = Infrastructure::reference();
        infra.apply_mobility(Mph(35.0));
        let mut total = vdap_offload::CostReport::default();
        let duration_secs = 600u64;
        for s in 0..duration_secs {
            let now = SimTime::from_secs(s);
            platform.adapt(handle, &infra, now, objective);
            if let Some(cost) = platform.serve(handle, &infra, now) {
                total.absorb(&cost);
            }
        }
        let avg_watts = total.vehicle_energy_j / duration_secs as f64;
        let battery = Battery::typical_ev();
        t.row(&[
            label.to_string(),
            f2(total.mean_latency().as_millis_f64()),
            f2(total.vehicle_energy_j),
            f2(avg_watts),
            format!("{:.2}%", battery.range_penalty(avg_watts, 35.0) * 100.0),
        ]);
    }
    t
}

/// E11 — libvdap model cache: compressed vs dense residency on a 64 MB
/// on-vehicle model budget.
#[must_use]
pub fn modelcache(seed: u64) -> TextTable {
    use vdap_models::{ModelCache, Residency};
    let library = vdap_models::zoo::common_model_library();
    let mut rng = SeedFactory::new(seed).stream("model-requests");
    // A request mix skewed toward the two vision models.
    let weights = [4u64, 3, 1, 1, 1];
    let mut t = TextTable::new(
        "E11 — model cache residency, 64 MB budget, 200 skewed requests",
        &[
            "artifact",
            "warm rate",
            "evictions",
            "mean availability (ms)",
        ],
    );
    for (label, compressed) in [("compressed models", true), ("dense models", false)] {
        let mut cache = ModelCache::new(64 * 1024 * 1024, compressed);
        let mut ssd = vdap_hw::SsdModel::automotive();
        let mut latency_total = SimDuration::ZERO;
        let n = 200u64;
        for i in 0..n {
            // Weighted pick.
            let total_w: u64 = weights.iter().sum();
            let mut pick = rng.below(total_w);
            let mut idx = 0;
            for (j, &w) in weights.iter().enumerate() {
                if pick < w {
                    idx = j;
                    break;
                }
                pick -= w;
            }
            let (res, cost) = cache.request(&library[idx], &mut ssd, SimTime::from_secs(i));
            let _ = matches!(res, Residency::Warm);
            latency_total += cost;
        }
        t.row(&[
            label.to_string(),
            f3(cache.stats().warm_rate()),
            cache.stats().evictions.to_string(),
            f3(latency_total.as_millis_f64() / n as f64),
        ]);
    }
    t
}

/// E12 — DSF admission control: how many 8 Hz plate services the
/// reference board sustains before the controller pushes back.
#[must_use]
pub fn admission() -> TextTable {
    use vdap_vcu::{AdmissionController, ApplicationProfile};
    let board = vdap_hw::VcuBoard::reference_design();
    let mut ctrl = AdmissionController::default();
    let graph = license_plate_pipeline(None);
    let mut t = TextTable::new(
        "E12 — DSF admission control (plate pipeline at 8 req/s per service)",
        &["service #", "decision", "peak utilization"],
    );
    for i in 1..=8 {
        let profile = ApplicationProfile::new(format!("plates-{i}")).with_arrival_rate(8.0);
        let decision = ctrl.admit(&profile, &graph, &board);
        t.row(&[
            i.to_string(),
            if decision.is_admitted() {
                "admitted".into()
            } else {
                "REJECTED".into()
            },
            f3(decision.report().peak_utilization),
        ]);
        if !decision.is_admitted() {
            break;
        }
    }
    t
}

/// E13 — §II-C infotainment QoE: streaming 1080P video to a moving
/// vehicle, without and with edge-side adaptive transcoding (the edge
/// lowers the bitrate to what the cell can actually sustain).
#[must_use]
pub fn infotainment(seed: u64) -> TextTable {
    let channel = CellularChannel::calibrated();
    let seeds = SeedFactory::new(seed);
    let mut t = TextTable::new(
        "E13 — infotainment streaming QoE (5-minute clip, cellular downlink)",
        &[
            "speed",
            "direct 1080P frame loss",
            "edge-adapted bitrate (Mbps)",
            "adapted frame loss",
        ],
    );
    for (i, speed) in [0.0, 35.0, 70.0].into_iter().enumerate() {
        let direct_spec = VideoStreamSpec::paper_encoding(Resolution::P1080);
        let mut direct_loss = channel.loss_process(
            Mph(speed),
            Resolution::P1080.bitrate_mbps(),
            seeds.indexed_stream("direct", i as u64),
        );
        let direct = stream_clip(
            &direct_spec,
            &mut direct_loss,
            SimTime::ZERO,
            SimDuration::from_secs(300),
        );
        // The edge transcodes down until the predicted loss is tolerable.
        let mut bitrate = Resolution::P1080.bitrate_mbps();
        while bitrate > 1.0 && channel.target_packet_loss(Mph(speed), bitrate) > 0.02 {
            bitrate -= 0.2;
        }
        // Adapted stream: 720P GOP structure scaled to the chosen rate —
        // model it by running the 720P encoding through a loss process
        // at the adapted bitrate.
        let adapted_spec = VideoStreamSpec::paper_encoding(Resolution::P720);
        let mut adapted_loss = channel.loss_process(
            Mph(speed),
            bitrate,
            seeds.indexed_stream("adapted", i as u64),
        );
        let adapted = stream_clip(
            &adapted_spec,
            &mut adapted_loss,
            SimTime::ZERO,
            SimDuration::from_secs(300),
        );
        t.row(&[
            format!("{speed} MPH"),
            f3(direct.frame_loss_rate()),
            f2(bitrate),
            f3(adapted.frame_loss_rate()),
        ]);
    }
    t
}

/// E14 — fleet-scale sharded simulation: 1,000 vehicles for 60 simulated
/// seconds against the shared multi-tenant XEdge deployment, run once on
/// a single shard and once on 8 shards. The table reports the aggregate
/// fleet metrics per shard count; the final row asserts the engine's
/// determinism contract (byte-identical summaries).
#[must_use]
pub fn fleet(seed: u64) -> TextTable {
    let mut cfg = FleetConfig::sized(1000, 1);
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(60);
    // A 12-second LTE outage in region 0 exercises the failover path.
    cfg = cfg.with_regional_outage(0, SimTime::from_secs(20), SimDuration::from_secs(12));
    fleet_table(cfg)
}

/// Runs `cfg` at 1 and 8 shards and renders the comparison table.
fn fleet_table(cfg: FleetConfig) -> TextTable {
    let run = |shards: u32| {
        let mut c = cfg.clone();
        c.shards = shards;
        FleetEngine::new(c).run()
    };
    let single = run(1);
    let sharded = run(8);
    let mut t = TextTable::new(
        "E14 — fleet-scale sharded simulation (1 shard vs 8 shards, same seed)",
        &["metric", "1 shard", "8 shards"],
    );
    type ReportCol = fn(&vdap_fleet::FleetReport) -> String;
    let rows: [(&str, ReportCol); 8] = [
        ("requests", |r| r.metrics.requests.to_string()),
        ("edge served", |r| r.metrics.edge_served.to_string()),
        ("collab hits", |r| r.metrics.collab_hits.to_string()),
        ("failovers", |r| r.metrics.failovers.to_string()),
        ("admission rejected", |r| r.admission_rejected.to_string()),
        ("e2e p95 (ms)", |r| {
            f3(r.metrics.e2e_latency_ms.quantile(0.95))
        }),
        ("energy/req mean (J)", |r| {
            f3(r.metrics.energy_per_request_j.mean())
        }),
        ("events processed", |r| r.events_processed.to_string()),
    ];
    for (label, get) in rows {
        t.row(&[label.into(), get(&single), get(&sharded)]);
    }
    let identical = single.summary() == sharded.summary();
    assert!(
        identical,
        "fleet determinism contract violated: 1-shard and 8-shard \
         summaries diverged\n--- 1 shard ---\n{}\n--- 8 shards ---\n{}",
        single.summary(),
        sharded.summary()
    );
    t.row(&[
        "summaries byte-identical".into(),
        "yes".into(),
        "yes".into(),
    ]);
    t
}

/// E15 — fleet-scale chaos: the E14 fleet under the full edge-tier
/// storm ([`openvdap::chaos::fleet_chaos_config`]) — XEdge node 1
/// crashes for 8 s, tenant 0's admission quota flaps to 30 % for 10 s,
/// and region 2 rides a 6 s handoff storm. The table reports the
/// degradation-ladder outcomes and per-component availability per shard
/// count; the final row asserts the determinism contract holds under
/// chaos too.
#[must_use]
pub fn fleet_chaos(seed: u64) -> TextTable {
    fleet_chaos_table(
        "E15 — fleet-scale chaos: node crash + quota flap + handoff storm (1 vs 8 shards)",
        openvdap::chaos::fleet_chaos_config(seed),
    )
}

/// Runs the chaos `cfg` at 1 and 8 shards and renders the comparison.
fn fleet_chaos_table(title: &str, cfg: FleetConfig) -> TextTable {
    let run = |shards: u32| {
        let mut c = cfg.clone();
        c.shards = shards;
        FleetEngine::new(c).run()
    };
    let single = run(1);
    let sharded = run(8);
    let mut t = TextTable::new(title, &["metric", "1 shard", "8 shards"]);
    type ReportCol = fn(&vdap_fleet::FleetReport) -> String;
    let rows: [(&str, ReportCol); 12] = [
        ("requests", |r| r.metrics.requests.to_string()),
        ("edge served", |r| r.metrics.edge_served.to_string()),
        ("rejected (load)", |r| r.metrics.rejected.to_string()),
        ("requeued off crashed lanes", |r| {
            r.metrics.requeued.to_string()
        }),
        ("rung 1: retry rescued", |r| {
            r.metrics.retry_rescued.to_string()
        }),
        ("rung 1: retry attempts", |r| {
            r.reliability.retry_count().to_string()
        }),
        ("rung 2: handoffs", |r| r.metrics.handoffs.to_string()),
        ("rung 3: local fallbacks", |r| {
            r.metrics.local_fallbacks.to_string()
        }),
        ("degraded-mode seconds", |r| {
            f3(r.reliability.total_degraded_time().as_secs_f64())
        }),
        ("MTTR mean (ms)", |r| f3(r.reliability.mttr().mean())),
        ("faults injected", |r| {
            r.reliability.faults_injected().to_string()
        }),
        ("e2e p95 (ms)", |r| {
            f3(r.metrics.e2e_latency_ms.quantile(0.95))
        }),
    ];
    for (label, get) in rows {
        t.row(&[label.into(), get(&single), get(&sharded)]);
    }
    for (i, (component, avail)) in single.region_availability.iter().enumerate() {
        t.row(&[
            format!("availability[{component}]"),
            format!("{avail:.6}"),
            format!("{:.6}", sharded.region_availability[i].1),
        ]);
    }
    let identical = single.summary() == sharded.summary();
    assert!(
        identical,
        "fleet chaos determinism violated: 1-shard and 8-shard \
         summaries diverged\n--- 1 shard ---\n{}\n--- 8 shards ---\n{}",
        single.summary(),
        sharded.summary()
    );
    t.row(&[
        "summaries byte-identical".into(),
        "yes".into(),
        "yes".into(),
    ]);
    t
}

/// E16 — elastic XEdge capacity under a load sweep: the mixed-class
/// fleet with [`FleetConfig::with_elastic_capacity`] enabled, driven at
/// four request rates. Lane counts and tenant queue caps are decided
/// only at epoch barriers from the previous barrier's queue depth, so
/// the pool grows with backlog and drains back toward the floor — and
/// because the decisions live on the barrier clock, every load level is
/// also run at 4 shards and asserted byte-identical to 1 shard.
#[must_use]
pub fn fleet_elastic(seed: u64) -> TextTable {
    fleet_elastic_table(seed, 256, SimDuration::from_secs(30))
}

/// Runs the elastic load sweep over `vehicles` for `duration` per level.
fn fleet_elastic_table(seed: u64, vehicles: u32, duration: SimDuration) -> TextTable {
    let mut t = TextTable::new(
        "E16 — elastic XEdge lanes track queue depth (mixed classes, 1 vs 4 shards)",
        &[
            "req period (ms)",
            "requests",
            "queue p95",
            "lanes mean",
            "lanes max",
            "scale ups",
            "scale downs",
            "rejected",
            "e2e p95 (ms)",
        ],
    );
    let mut lane_means = Vec::new();
    for period_ms in [4000u64, 2000, 1000, 500] {
        let mut cfg = FleetConfig::sized(vehicles, 1).with_elastic_capacity();
        cfg.seed = seed;
        cfg.duration = duration;
        cfg.request_period = SimDuration::from_millis(period_ms);
        let run = |shards: u32| {
            let mut c = cfg.clone();
            c.shards = shards;
            FleetEngine::new(c).run()
        };
        let single = run(1);
        let sharded = run(4);
        assert!(
            single.summary() == sharded.summary(),
            "elastic determinism violated at period {period_ms} ms\n\
             --- 1 shard ---\n{}\n--- 4 shards ---\n{}",
            single.summary(),
            sharded.summary()
        );
        let m = &single.metrics;
        lane_means.push(m.elastic_lanes.mean());
        t.row(&[
            period_ms.to_string(),
            m.requests.to_string(),
            f3(m.queue_depth.quantile(0.95)),
            f3(m.elastic_lanes.mean()),
            format!("{:.0}", m.elastic_lanes.max()),
            m.scale_ups.to_string(),
            m.scale_downs.to_string(),
            m.rejected.to_string(),
            f3(m.e2e_latency_ms.quantile(0.95)),
        ]);
    }
    // The point of the experiment: heavier offered load must hold a
    // larger lane pool on average than the lightest level.
    let (first, last) = (lane_means[0], lane_means[lane_means.len() - 1]);
    assert!(
        last > first,
        "elastic lanes did not track load: {lane_means:?}"
    );
    t.row(&[
        "lanes track load".into(),
        "yes".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t
}

/// E17 — randomized fleet storm: instead of E15's three hand-placed
/// windows, Poisson fault arrivals drawn from the run seed target every
/// XEdge node, tenant quota, regional LTE cell and handoff plane
/// ([`openvdap::chaos::fleet_storm_config`]). The repro binary prints
/// the seed above the table so the exact storm can be replayed.
#[must_use]
pub fn fleet_storm(seed: u64) -> TextTable {
    fleet_chaos_table(
        "E17 — randomized fleet storm: seeded Poisson faults over the edge tier (1 vs 8 shards)",
        openvdap::chaos::fleet_storm_config(seed),
    )
}

/// E18 — fleet telemetry and barrier profiling: the E14 fleet (1,000
/// vehicles, 60 s, a 12 s LTE outage in region 0) with telemetry
/// enabled, run at 1 and 8 shards. Asserts telemetry costs no
/// determinism (byte-identical summaries), writes a Perfetto-loadable
/// Chrome trace (`target/fleet-trace/trace.json`) plus a JSONL span
/// dump, and reports the per-shard wall-clock busy / barrier-idle
/// breakdown the profiler measured.
#[must_use]
pub fn fleet_trace(seed: u64) -> TextTable {
    let mut cfg = FleetConfig::sized(1000, 1).with_telemetry();
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(60);
    let cfg = cfg.with_regional_outage(0, SimTime::from_secs(20), SimDuration::from_secs(12));
    fleet_trace_table(cfg, std::path::Path::new("target/fleet-trace"))
}

/// Runs `cfg` at 1 and 8 shards with telemetry, writes the trace
/// artifacts into `dir`, and renders the telemetry/profile table.
fn fleet_trace_table(cfg: FleetConfig, dir: &std::path::Path) -> TextTable {
    let run = |shards: u32| {
        let mut c = cfg.clone();
        c.shards = shards;
        FleetEngine::new(c).run()
    };
    let single = run(1);
    let sharded = run(8);
    assert_eq!(
        single.summary(),
        sharded.summary(),
        "telemetry is derived data: enabling it must not perturb the run"
    );
    let tel = sharded.telemetry.as_ref().expect("telemetry enabled");
    let trace = vdap_obs::chrome_trace(&tel.spans, &tel.registry);
    std::fs::create_dir_all(dir).expect("create trace output dir");
    let trace_path = dir.join("trace.json");
    let encoded = serde_json::to_string(&trace).expect("trace serializes");
    std::fs::write(&trace_path, &encoded).expect("write trace.json");
    let spans_path = dir.join("spans.jsonl");
    std::fs::write(&spans_path, vdap_obs::spans_jsonl(&tel.spans)).expect("write spans.jsonl");

    let mut t = TextTable::new(
        "E18 — fleet telemetry: spans, epoch series, trace export, barrier profile (8 shards)",
        &["metric", "value"],
    );
    t.row(&["requests spanned".into(), tel.spans.len().to_string()]);
    for outcome in SpanOutcome::ALL {
        t.row(&[
            format!("spans: {outcome}"),
            tel.spans.outcome_count(outcome).to_string(),
        ]);
    }
    t.row(&[
        "epoch series".into(),
        tel.registry.all_series().count().to_string(),
    ]);
    t.row(&[
        "epochs sampled".into(),
        tel.registry.series("xedge.queue_depth").len().to_string(),
    ]);
    let events = trace
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .map_or(0, Vec::len);
    t.row(&["trace events".into(), events.to_string()]);
    t.row(&["trace.json".into(), trace_path.display().to_string()]);
    t.row(&["spans.jsonl".into(), spans_path.display().to_string()]);
    // The wall-clock barrier profile is nondeterministic by nature —
    // these rows are diagnostics, never part of the summary contract.
    let p = &sharded.profile;
    t.row(&[
        "barrier serial ms (wall-clock)".into(),
        f3(p.barrier.as_secs_f64() * 1e3),
    ]);
    t.row(&[
        "executor mean idle fraction".into(),
        f3(p.mean_idle_fraction()),
    ]);
    t.row(&["batches stolen".into(), p.total_steals().to_string()]);
    for i in 0..p.worker_busy.len() {
        t.row(&[
            format!("worker[{i}] busy / barrier-idle ms"),
            format!(
                "{} / {} (idle {})",
                f3(p.worker_busy[i].as_secs_f64() * 1e3),
                f3(p.worker_idle[i].as_secs_f64() * 1e3),
                f3(p.idle_fraction(i))
            ),
        ]);
    }
    for i in 0..p.shard_busy.len() {
        t.row(&[
            format!("shard[{i}] busy ms"),
            f3(p.shard_busy[i].as_secs_f64() * 1e3),
        ]);
    }
    t
}

/// E19 — fleet-scale DDI ingestion under pressure: 10,000 vehicles
/// batch telemetry through regional DDI collectors into a shared
/// storage tier while a collector outage and a storage brownout land
/// mid-run. The table reports the full ingestion ledger — deadline-miss
/// rate, the degradation ladder (retry → defer-to-cache → shed), cache
/// churn, and storage pressure (write utilisation ρ) — and asserts the
/// 1-shard and 8-shard runs stay byte-identical through all of it.
#[must_use]
pub fn fleet_ingest(seed: u64) -> TextTable {
    fleet_ingest_table(seed, 10_000, SimDuration::from_secs(24))
}

/// Runs the ingestion-pressure scenario over `vehicles` for `duration`
/// (needs ≥ 16 s so both fault windows land and the backlog can drain).
fn fleet_ingest_table(seed: u64, vehicles: u32, duration: SimDuration) -> TextTable {
    // Size the shared tiers to the fleet so the same scenario bites at
    // 96 vehicles (unit test) and 10,000 (repro binary): nominal
    // storage throughput is 1.25x the offered record rate, and each
    // regional collector queue holds three epochs of its arrivals.
    let mut ing = IngestConfig::default();
    let mut cfg = FleetConfig::sized(vehicles, 1);
    let offered =
        f64::from(vehicles) * f64::from(ing.records_per_batch) / ing.upload_period.as_secs_f64();
    ing.storage_records_per_sec = offered * 1.25;
    let per_region_epoch = offered / f64::from(cfg.regions) * cfg.epoch.as_secs_f64();
    ing.collector_queue_records =
        (3.0 * per_region_epoch) as u64 + u64::from(ing.records_per_batch);
    cfg.seed = seed;
    cfg.duration = duration;
    let cfg = cfg
        .with_ingest_config(ing)
        .with_collector_outage(0, SimTime::from_secs(4), SimDuration::from_secs(3))
        .with_storage_brownout(0.4, SimTime::from_secs(8), SimDuration::from_secs(4));
    let run = |shards: u32| {
        let mut c = cfg.clone();
        c.shards = shards;
        FleetEngine::new(c).run()
    };
    let single = run(1);
    let sharded = run(8);
    assert!(
        single.summary() == sharded.summary(),
        "ingestion determinism violated: 1-shard and 8-shard \
         summaries diverged\n--- 1 shard ---\n{}\n--- 8 shards ---\n{}",
        single.summary(),
        sharded.summary()
    );
    let m = single.ingest.as_ref().expect("ingest enabled");
    // Non-vacuity: both fault windows must actually bite, and the
    // ingestion ledger must partition every record sent.
    assert!(m.outage_bounces > 0, "collector outage never bounced");
    assert!(
        m.storage_rho.max() > 1.0,
        "brownout never saturated storage (rho max {})",
        m.storage_rho.max()
    );
    assert_eq!(
        m.records_sent,
        m.records_written + m.records_shed + m.cache_evictions + m.backlog_records,
        "ingestion ledger does not partition"
    );
    let mut t = TextTable::new(
        "E19 — fleet DDI ingestion under pressure: collector outage + storage brownout (1 vs 8 shards)",
        &["metric", "1 shard", "8 shards"],
    );
    type ReportCol = fn(&vdap_fleet::FleetReport) -> String;
    let ing_of = |r: &vdap_fleet::FleetReport| r.ingest.as_ref().expect("ingest enabled").clone();
    let rows: [(&str, ReportCol); 16] = [
        ("batches sent", |r| {
            r.ingest.as_ref().unwrap().batches_sent.to_string()
        }),
        ("records sent", |r| {
            r.ingest.as_ref().unwrap().records_sent.to_string()
        }),
        ("records durable", |r| {
            r.ingest.as_ref().unwrap().records_written.to_string()
        }),
        ("deadline-miss rate", |r| {
            format!("{:.4}", r.ingest.as_ref().unwrap().deadline_miss_rate())
        }),
        ("collector outage bounces", |r| {
            r.ingest.as_ref().unwrap().outage_bounces.to_string()
        }),
        ("collector queue bounces", |r| {
            r.ingest.as_ref().unwrap().queue_bounces.to_string()
        }),
        ("rung 1: upload retries", |r| {
            r.ingest.as_ref().unwrap().retries.to_string()
        }),
        ("rung 2: deferred to cache", |r| {
            r.ingest.as_ref().unwrap().deferrals.to_string()
        }),
        ("rung 2: disk spills", |r| {
            r.ingest.as_ref().unwrap().disk_spills.to_string()
        }),
        ("cache TTL evictions", |r| {
            r.ingest.as_ref().unwrap().cache_evictions.to_string()
        }),
        ("rung 3: records shed", |r| {
            r.ingest.as_ref().unwrap().records_shed.to_string()
        }),
        ("backlog at horizon", |r| {
            r.ingest.as_ref().unwrap().backlog_records.to_string()
        }),
        ("storage rho mean", |r| {
            f3(r.ingest.as_ref().unwrap().storage_rho.mean())
        }),
        ("storage rho max", |r| {
            f3(r.ingest.as_ref().unwrap().storage_rho.max())
        }),
        ("uplink p95 (ms)", |r| {
            f3(r.ingest.as_ref().unwrap().uplink_ms.quantile(0.95))
        }),
        ("ingest latency p95 (ms)", |r| {
            f3(r.ingest.as_ref().unwrap().ingest_latency_ms.quantile(0.95))
        }),
    ];
    for (label, get) in rows {
        t.row(&[label.into(), get(&single), get(&sharded)]);
    }
    assert_eq!(ing_of(&single), ing_of(&sharded), "ingest metrics diverged");
    t.row(&[
        "summaries byte-identical".into(),
        "yes".into(),
        "yes".into(),
    ]);
    t
}

/// E20 — geo-mobility rush hour: 10,000 vehicles follow seeded route
/// plans over the region graph with a rush-dominated profile mix and
/// ingestion on, with **zero injected faults**. The synchronized rush
/// departure funnels the fleet toward the downtown regions and produces
/// an *organic* handoff storm: crossings spike in the rush window,
/// destination-region admission gates absorb the registration wave and
/// reject the overflow, and in-flight ingest batches re-address to the
/// destination collectors mid-retry. The table reports the full
/// mobility ledger and asserts the 1-shard and 8-shard runs stay
/// byte-identical through every crossing and migration.
#[must_use]
pub fn fleet_mobility(seed: u64) -> TextTable {
    fleet_mobility_table(seed, 10_000, SimDuration::from_secs(24))
}

/// Runs the rush-hour mobility scenario over `vehicles` for `duration`
/// (needs enough epochs that the rush window spans several barriers).
fn fleet_mobility_table(seed: u64, vehicles: u32, duration: SimDuration) -> TextTable {
    let mut cfg = FleetConfig::sized(vehicles, 1).with_telemetry();
    cfg.seed = seed;
    cfg.duration = duration;
    let cfg = cfg
        .with_ingest()
        .with_mobility_config(MobilityConfig::rush_hour());
    let run = |shards: u32| {
        let mut c = cfg.clone();
        c.shards = shards;
        FleetEngine::new(c).run()
    };
    let single = run(1);
    let sharded = run(8);
    assert!(
        single.summary() == sharded.summary(),
        "mobility determinism violated: 1-shard and 8-shard \
         summaries diverged\n--- 1 shard ---\n{}\n--- 8 shards ---\n{}",
        single.summary(),
        sharded.summary()
    );
    assert_eq!(
        single.reliability.faults_injected(),
        0,
        "E20 is chaos-free: the handoff storm must be organic"
    );
    let mob = single.mobility.as_ref().expect("mobility enabled");
    assert!(mob.crossings > 0, "nobody ever crossed a region boundary");
    assert!(mob.migrations > 0, "no crossing changed home-node domain");
    assert!(
        mob.partitions(),
        "crossings ({}) != migrations ({}) + same-domain ({})",
        mob.crossings,
        mob.migrations,
        mob.same_shard_crossings
    );
    assert_eq!(mob.storm_crossings, 0, "no injected handoff storm");
    // The organic storm: per-epoch crossings must spike well above the
    // run mean when the rush window opens.
    let epoch_stats = |r: &vdap_fleet::FleetReport| {
        let series = r
            .telemetry
            .as_ref()
            .expect("telemetry enabled")
            .registry
            .series("mobility.crossings");
        let peak = series.iter().map(|p| p.value).fold(0.0, f64::max);
        let mean = series.iter().map(|p| p.value).sum::<f64>() / series.len() as f64;
        (peak, mean)
    };
    let (peak, mean) = epoch_stats(&single);
    assert!(
        peak > 2.0 * mean,
        "rush hour never spiked: peak {peak} vs mean {mean}"
    );
    // Destination pressure: the rush destinations (the downtown region
    // block) must end the run holding more registrations than they
    // started with — the whole wave re-registered its tenancy there.
    let adm = single
        .region_admission
        .as_ref()
        .expect("per-region admission gates active");
    let downtown = cfg
        .mobility
        .as_ref()
        .expect("mobility enabled")
        .downtown_regions(cfg.regions) as usize;
    let start_per_region = u64::from(cfg.vehicles / cfg.regions);
    let downtown_registered: u64 = adm[..downtown]
        .iter()
        .map(|a| u64::from(a.registered))
        .sum();
    assert!(
        downtown_registered > start_per_region * downtown as u64,
        "rush hour never concentrated downtown: {downtown_registered} registered \
         across {downtown} downtown regions"
    );
    let gate_sums = |r: &vdap_fleet::FleetReport, range: std::ops::Range<usize>| {
        let adm = r.region_admission.as_ref().expect("gates active");
        let off: u64 = adm[range.clone()].iter().map(|a| a.offered).sum();
        let rej: u64 = adm[range].iter().map(|a| a.rejected).sum();
        (off, rej)
    };

    let mut t = TextTable::new(
        "E20 — geo-mobility rush hour: organic handoff storm, zero injected faults (1 vs 8 shards)",
        &["metric", "1 shard", "8 shards"],
    );
    type ReportCol = fn(&vdap_fleet::FleetReport) -> String;
    fn mob_of(r: &vdap_fleet::FleetReport) -> &vdap_fleet::MobilityMetrics {
        r.mobility.as_ref().expect("mobility enabled")
    }
    let rows: [(&str, ReportCol); 8] = [
        ("region crossings", |r| {
            r.mobility.as_ref().unwrap().crossings.to_string()
        }),
        ("domain migrations", |r| {
            r.mobility.as_ref().unwrap().migrations.to_string()
        }),
        ("same-domain crossings", |r| {
            r.mobility
                .as_ref()
                .unwrap()
                .same_shard_crossings
                .to_string()
        }),
        ("stale V2V lookups suppressed", |r| {
            r.mobility.as_ref().unwrap().stale_cache_hits.to_string()
        }),
        ("ingest batches re-addressed", |r| {
            r.mobility.as_ref().unwrap().readdressed_batches.to_string()
        }),
        ("handoff time total (s)", |r| {
            f3(r.mobility.as_ref().unwrap().handoff_seconds)
        }),
        ("handoff p95 (ms)", |r| {
            f3(r.mobility.as_ref().unwrap().handoff_ms.quantile(0.95))
        }),
        ("crossing speed mean (mph)", |r| {
            f3(r.mobility.as_ref().unwrap().crossing_speed_mph.mean())
        }),
    ];
    for (label, get) in rows {
        t.row(&[label.into(), get(&single), get(&sharded)]);
    }
    let (speak, smean) = epoch_stats(&sharded);
    t.row(&[
        "peak-epoch crossings (organic storm)".into(),
        f3(peak),
        f3(speak),
    ]);
    t.row(&["mean-epoch crossings".into(), f3(mean), f3(smean)]);
    for (label, range) in [
        ("downtown gates offered/rejected", 0..downtown),
        (
            "uptown gates offered/rejected",
            downtown..cfg.regions as usize,
        ),
    ] {
        let (o1, r1) = gate_sums(&single, range.clone());
        let (o8, r8) = gate_sums(&sharded, range);
        t.row(&[label.into(), format!("{o1}/{r1}"), format!("{o8}/{r8}")]);
    }
    t.row(&[
        "downtown registered at horizon".into(),
        downtown_registered.to_string(),
        sharded.region_admission.as_ref().unwrap()[..downtown]
            .iter()
            .map(|a| u64::from(a.registered))
            .sum::<u64>()
            .to_string(),
    ]);
    // Physical cross-shard moves are the one shard-count-dependent
    // number here — a diagnostic, deliberately outside the summary.
    t.row(&[
        "physical cross-shard moves (diagnostic)".into(),
        single.physical_migrations.to_string(),
        sharded.physical_migrations.to_string(),
    ]);
    t.row(&[
        "faults injected".into(),
        single.reliability.faults_injected().to_string(),
        sharded.reliability.faults_injected().to_string(),
    ]);
    assert_eq!(
        mob_of(&single),
        mob_of(&sharded),
        "mobility ledger diverged"
    );
    t.row(&[
        "summaries byte-identical".into(),
        "yes".into(),
        "yes".into(),
    ]);
    t
}

/// E21 — durable barrier checkpoint/restore under snapshot-store
/// chaos: a 256-vehicle, 4-shard full-stack run (ingest + mobility +
/// telemetry) checkpoints every 8 epochs with keep-last-3 retention. A
/// torn write lands on the epoch-16 snapshot and the engine crashes at
/// epoch 20, so the supervisor must reject generation 16 by checksum,
/// fall back to generation 8, and finish the run — byte-identical to
/// an uninterrupted run of the same fault plan, with the resume window
/// visible in MTTR and engine availability.
#[must_use]
pub fn fleet_resume(seed: u64) -> TextTable {
    let mut cfg = FleetConfig::sized(256, 4).with_telemetry();
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(30);
    let cfg = cfg
        .with_ingest()
        .with_mobility()
        .with_checkpoint(8, 3)
        // Checkpoints land at epochs 8/16/24/… (sim t = 4 s/8 s/12 s/…
        // at the 500 ms default epoch). The torn-write window covers
        // the epoch-16 write, so the crash at epoch 20 has only the
        // epoch-8 generation to fall back to.
        .with_snapshot_torn_write(SimTime::from_secs(8), SimDuration::from_millis(100))
        .with_engine_crash(20, SimDuration::from_millis(750));
    let horizon = cfg.horizon();

    // run() preambles the same fault plan but never touches the store,
    // so it is the uninterrupted baseline the resumed run must match.
    let straight = FleetEngine::new(cfg.clone()).run();
    let dir = "target/fleet-resume";
    let _ = std::fs::remove_dir_all(dir);
    let mut store = SnapshotStore::in_dir(dir).expect("create snapshot dir");
    let resumed = FleetEngine::new(cfg).run_supervised(&mut store);

    let snaps = &resumed.snapshots;
    assert_eq!(snaps.resumes, 1, "expected exactly one crash-resume cycle");
    assert_eq!(
        snaps.rejected_generations,
        vec![16],
        "the torn epoch-16 snapshot must be rejected at resume time"
    );
    assert!(
        snaps
            .writes
            .iter()
            .any(|w| w.generation == 16 && w.chaos == Some("torn-write")),
        "torn-write chaos must land on the epoch-16 write"
    );
    assert!(
        straight.summary() == resumed.summary(),
        "resume determinism contract violated: straight and crash-resumed \
         summaries diverged\n--- straight ---\n{}\n--- resumed ---\n{}",
        straight.summary(),
        resumed.summary()
    );

    let mut t = TextTable::new(
        "E21 — durable checkpoint/restore: crash at epoch 20, torn epoch-16 snapshot (straight vs resumed)",
        &["metric", "straight run", "crash + resume"],
    );
    type ReportCol = fn(&vdap_fleet::FleetReport) -> String;
    let rows: [(&str, ReportCol); 6] = [
        ("requests", |r| r.metrics.requests.to_string()),
        ("edge served", |r| r.metrics.edge_served.to_string()),
        ("events processed", |r| r.events_processed.to_string()),
        ("e2e p95 (ms)", |r| {
            f3(r.metrics.e2e_latency_ms.quantile(0.95))
        }),
        ("faults injected", |r| {
            r.reliability.faults_injected().to_string()
        }),
        ("MTTR mean (ms)", |r| f3(r.reliability.mttr().mean())),
    ];
    for (label, get) in rows {
        t.row(&[label.into(), get(&straight), get(&resumed)]);
    }
    for label in [ENGINE_LABEL, CKPT_STORE_LABEL] {
        t.row(&[
            format!("availability[{label}]"),
            f3(straight.reliability.availability(label, horizon)),
            f3(resumed.reliability.availability(label, horizon)),
        ]);
    }
    // Wall-clock durability accounting is a diagnostic — deliberately
    // outside the summary (it varies run to run).
    let torn = snaps.writes.iter().filter(|w| w.chaos.is_some()).count();
    t.row(&[
        "snapshots written (torn)".into(),
        "0".into(),
        format!("{} ({torn})", snaps.writes.len()),
    ]);
    t.row(&[
        "rejected generations".into(),
        "-".into(),
        snaps
            .rejected_generations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
    ]);
    t.row(&["resumed from generation".into(), "-".into(), "8".into()]);
    t.row(&[
        "restore decode (ms)".into(),
        "-".into(),
        snaps.load_ms.map_or_else(|| "-".into(), f3),
    ]);
    t.row(&[
        "summaries byte-identical".into(),
        "yes".into(),
        "yes".into(),
    ]);
    t
}

/// The pre-refactor barrier-idle fraction at the E14 configuration, as
/// measured by E18 when one scoped thread advanced one whole shard and
/// the join idled every other worker (~40 % of shard wall-clock).
const PRE_STEAL_IDLE_FRACTION: f64 = 0.40;

/// E22 — work-stealing epoch executor: the E14 fleet (1,000 vehicles,
/// 60 s, a 12 s regional LTE outage) with each epoch's vehicle-tick
/// phase split into stealable fixed-size vehicle batches on the
/// persistent executor, instead of one scoped thread per shard. The
/// table reports the executor shape (threads, batch size), how many
/// batches idle workers stole, the mean barrier-idle fraction against
/// the pinned pre-refactor baseline from E18 (~40 %), wall-clock
/// throughput, and asserts the 1-shard and 8-shard runs remain
/// byte-identical — the steal schedule must never reach a report.
#[must_use]
pub fn fleet_steal(seed: u64) -> TextTable {
    let mut cfg = FleetConfig::sized(1000, 8);
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(60);
    let cfg = cfg.with_regional_outage(0, SimTime::from_secs(20), SimDuration::from_secs(12));
    fleet_steal_table(cfg)
}

/// Runs `cfg` at 1 and 8 shards and renders the executor profile.
fn fleet_steal_table(cfg: FleetConfig) -> TextTable {
    let run = |shards: u32| {
        let mut c = cfg.clone();
        c.shards = shards;
        let started = std::time::Instant::now();
        let report = FleetEngine::new(c).run();
        (report, started.elapsed())
    };
    let (single, _) = run(1);
    let (sharded, wall) = run(8);
    assert!(
        single.summary() == sharded.summary(),
        "fleet determinism contract violated under the work-stealing \
         executor\n--- 1 shard ---\n{}\n--- 8 shards ---\n{}",
        single.summary(),
        sharded.summary()
    );
    let p = &sharded.profile;
    let mut t = TextTable::new(
        "E22 — work-stealing epoch executor: stealable vehicle batches vs the scoped-join baseline (8 shards)",
        &["metric", "value"],
    );
    t.row(&["executor threads".into(), p.worker_busy.len().to_string()]);
    t.row(&["batch size (vehicles)".into(), cfg.batch_size.to_string()]);
    t.row(&["epochs profiled".into(), p.epochs.to_string()]);
    t.row(&["batches stolen".into(), p.total_steals().to_string()]);
    t.row(&["mean idle fraction".into(), f3(p.mean_idle_fraction())]);
    t.row(&[
        "pre-refactor idle fraction (E18 baseline)".into(),
        f3(PRE_STEAL_IDLE_FRACTION),
    ]);
    t.row(&[
        "barrier serial ms (wall-clock)".into(),
        f3(p.barrier.as_secs_f64() * 1e3),
    ]);
    t.row(&[
        "events/sec (wall-clock, 8 shards)".into(),
        format!(
            "{:.0}",
            sharded.events_processed as f64 / wall.as_secs_f64()
        ),
    ]);
    t.row(&["summaries byte-identical".into(), "yes".into()]);
    t
}

/// E23 — bounded-memory streaming telemetry: the same fleet run three
/// ways. An unbounded baseline keeps every span and every epoch-series
/// point resident; the bounded runs cap resident telemetry with a byte
/// budget, stream spans into segment-rotating JSONL spill files, and
/// keep one in eight OK-path spans by a seeded identity hash. The table
/// pins the observability contract: peak post-enforcement resident
/// bytes stay under the budget, every spilled segment line re-parses,
/// the sampled span stream and the deterministic summary are
/// byte-identical at 1 and 8 shards, and the streaming-histogram
/// quantiles stay within the documented ≈1.6% relative error of the
/// exact sorted quantiles.
#[must_use]
pub fn fleet_obs(seed: u64) -> TextTable {
    fleet_obs_table(
        seed,
        100_000,
        SimDuration::from_secs(6),
        8 * 1024 * 1024,
        std::path::Path::new("target/fleet-obs"),
    )
}

/// Nearest-rank exact quantile of an ascending-sorted sample.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Reads every spilled segment of `sink` back, requiring each line to
/// parse, and returns the identity stream `(vehicle, seq, generated_ns,
/// outcome)` in file order.
fn spilled_span_keys(sink: &JsonlSpillSink) -> Vec<(u64, u64, u64, String)> {
    let mut keys = Vec::new();
    for seg in sink.segments() {
        let text = std::fs::read_to_string(&seg).expect("spill segment readable");
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("spilled line parses");
            let num = |name: &str| -> u64 {
                match v.get(name) {
                    Some(serde_json::Value::Number(n)) => *n as u64,
                    other => panic!("bad numeric field {name}: {other:?}"),
                }
            };
            let outcome = v
                .get("outcome")
                .and_then(serde_json::Value::as_str)
                .expect("outcome field")
                .to_string();
            keys.push((num("vehicle"), num("seq"), num("generated_ns"), outcome));
        }
    }
    keys
}

/// Runs `cfg`-sized fleets unbounded (8 shards) and bounded (8 and 1
/// shards, `budget` bytes + spill under `dir` + 1-in-8 OK sampling),
/// asserts the bounded-telemetry contract, and renders the comparison.
fn fleet_obs_table(
    seed: u64,
    vehicles: u32,
    duration: SimDuration,
    budget: u64,
    dir: &std::path::Path,
) -> TextTable {
    let base = {
        let mut c = FleetConfig::sized(vehicles, 8);
        c.seed = seed;
        c.duration = duration;
        c
    };

    // (a) Unbounded baseline: every span and series point stays
    // resident; its peak is the memory bill the budget exists to avoid.
    let unbounded = FleetEngine::new(base.clone().with_telemetry()).run();
    let base_tel = unbounded.telemetry.as_ref().expect("telemetry enabled");

    // (b)/(c) Bounded at 8 and 1 shards, each spilling into its own
    // segment directory (wiped first so stale segments cannot leak in).
    let bounded_run = |shards: u32, segments: &std::path::Path| {
        let _ = std::fs::remove_dir_all(segments);
        let mut c = base
            .clone()
            .with_telemetry_budget(budget)
            .with_span_spill(segments)
            .with_span_sampling(8);
        c.shards = shards;
        FleetEngine::new(c).run()
    };
    let bounded = bounded_run(8, &dir.join("segments-8shard"));
    let single = bounded_run(1, &dir.join("segments-1shard"));

    assert_eq!(
        unbounded.summary(),
        bounded.summary(),
        "telemetry sinks are derived data: budget/spill/sampling must not perturb the run"
    );
    assert_eq!(
        bounded.summary(),
        single.summary(),
        "bounded telemetry must preserve shard-count invariance"
    );
    let tel = bounded.telemetry.as_ref().expect("telemetry enabled");
    let tel1 = single.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(
        tel.registry, tel1.registry,
        "registries must match 1 vs 8 shards"
    );
    assert_eq!(tel.sampled_out, tel1.sampled_out);
    assert_eq!(
        tel.peak_bytes, tel1.peak_bytes,
        "byte estimates are count-based"
    );
    assert!(
        tel.peak_bytes <= budget,
        "peak resident telemetry {} exceeds budget {}",
        tel.peak_bytes,
        budget
    );

    // The spilled JSONL stream must re-parse line by line, account for
    // every kept span, and carry the same span identities at any shard
    // count (canonical per-block order + count-based drain epochs).
    let spill = tel.spill.as_ref().expect("spill configured");
    let spill1 = tel1.spill.as_ref().expect("spill configured");
    assert_eq!(spill.io_errors(), 0, "spill writes must succeed");
    let keys = spilled_span_keys(spill);
    assert_eq!(
        keys.len() as u64,
        spill.spilled(),
        "one line per spilled span"
    );
    assert_eq!(
        keys,
        spilled_span_keys(spill1),
        "spilled span stream must be shard-count invariant"
    );
    assert_eq!(
        spill.spilled() + tel.sampled_out,
        unbounded.metrics.requests,
        "kept + sampled-out must account for every request"
    );

    // Quantile fidelity: the streaming histogram summarises the
    // unbounded run's end-to-end latencies in O(buckets) memory; its
    // quantiles must sit within the documented relative-error bound of
    // the exact (sorted, nearest-rank) quantiles.
    let mut e2e: Vec<f64> = base_tel
        .spans
        .iter()
        .map(|s| s.e2e().as_secs_f64() * 1e3)
        .collect();
    e2e.sort_by(f64::total_cmp);
    let mut hist = ObsHistogram::new("fleet.e2e_ms");
    for ms in &e2e {
        hist.record(*ms);
    }
    let quantiles = [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")];
    let mut max_rel_err = 0.0f64;
    let mut quantile_rows: Vec<[String; 2]> = Vec::new();
    for (q, label) in quantiles {
        let exact = exact_quantile(&e2e, q);
        let est = hist.quantile(q);
        let rel = (est - exact).abs() / exact;
        assert!(
            rel <= 0.02,
            "{label}: streaming {est} vs exact {exact} (rel err {rel})"
        );
        max_rel_err = max_rel_err.max(rel);
        quantile_rows.push([format!("e2e {label} ms (exact)"), f3(exact)]);
        quantile_rows.push([format!("e2e {label} ms (streaming)"), f3(est)]);
    }

    let mut t = TextTable::new(
        "E23 — bounded-memory streaming telemetry: spill + sampling + histogram rollup vs the unbounded baseline (8 shards)",
        &["metric", "value"],
    );
    t.row(&["vehicles".into(), vehicles.to_string()]);
    t.row(&["requests".into(), unbounded.metrics.requests.to_string()]);
    t.row(&[
        "spans resident (unbounded)".into(),
        base_tel.spans.len().to_string(),
    ]);
    t.row(&[
        "peak telemetry bytes (unbounded)".into(),
        base_tel.peak_bytes.to_string(),
    ]);
    t.row(&["telemetry budget bytes".into(), budget.to_string()]);
    t.row(&[
        "peak telemetry bytes (bounded)".into(),
        tel.peak_bytes.to_string(),
    ]);
    t.row(&[
        "spans resident (bounded)".into(),
        tel.spans.len().to_string(),
    ]);
    t.row(&["spilled spans".into(), spill.spilled().to_string()]);
    t.row(&["spill segments".into(), spill.segments().len().to_string()]);
    t.row(&["spill io errors".into(), spill.io_errors().to_string()]);
    t.row(&["sampled-out OK spans".into(), tel.sampled_out.to_string()]);
    t.row(&[
        "series rollup active".into(),
        if tel.rolled { "yes" } else { "no" }.into(),
    ]);
    t.row(&[
        "histograms in registry".into(),
        tel.registry.all_histograms().count().to_string(),
    ]);
    for [metric, value] in quantile_rows {
        t.row(&[metric, value]);
    }
    t.row(&["quantile max rel err".into(), f3(max_rel_err)]);
    t.row(&["quantile rel err bound".into(), f3(1.0 / 64.0)]);
    t.row(&["summaries byte-identical".into(), "yes".into()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper() {
        let (rows, t) = table1();
        assert_eq!(rows.len(), 3);
        assert!(!t.is_empty());
        for r in &rows {
            assert!(
                (r.measured_ms - r.paper_ms).abs() / r.paper_ms < 0.001,
                "{}: {} vs {}",
                r.name,
                r.measured_ms,
                r.paper_ms
            );
        }
    }

    #[test]
    fn fig2_shape_holds() {
        let (rows, _) = fig2(42);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            // At near-zero loss the 300 s clip holds only ~150 frames, so
            // a handful of lost packets can miss every frame boundary;
            // require amplification only once loss is measurable.
            assert!(
                r.sim_frame + 0.01 >= r.sim_packet,
                "frame loss must amplify packet loss ({} vs {})",
                r.sim_frame,
                r.sim_packet
            );
        }
        // Monotone in speed for each resolution.
        for res in [Resolution::P720, Resolution::P1080] {
            let by_speed: Vec<&Fig2Row> = rows.iter().filter(|r| r.resolution == res).collect();
            assert!(by_speed[0].sim_packet < by_speed[1].sim_packet);
            assert!(by_speed[1].sim_packet < by_speed[2].sim_packet);
        }
    }

    #[test]
    fn fig3_reproduces_paper() {
        let (rows, _) = fig3();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                (r.measured_ms - r.paper_ms).abs() / r.paper_ms < 0.01,
                "{}: {} vs {}",
                r.name,
                r.measured_ms,
                r.paper_ms
            );
        }
    }

    #[test]
    fn narrative_tables_render() {
        assert!(!upload_wall().is_empty());
        assert!(!battery().is_empty());
        assert!(!dsf().is_empty());
        assert!(!ddi(7).is_empty());
        assert!(!collab(7).is_empty());
        assert!(!admission().is_empty());
        assert!(!modelcache(7).is_empty());
    }

    #[test]
    fn objective_ablation_trades_energy_for_latency() {
        let rendered = objectives(7).render();
        let rows: Vec<&str> = rendered.lines().skip(3).collect();
        assert_eq!(rows.len(), 2, "{rendered}");
        // Crude but robust: the energy-first row must report less
        // energy; parse the joules column.
        let parse = |line: &str| -> Vec<f64> {
            line.split_whitespace()
                .filter_map(|tok| tok.parse::<f64>().ok())
                .collect()
        };
        let lat_row = parse(rows[0]);
        let eng_row = parse(rows[1]);
        // Columns: latency, energy, power, (range% unparsable).
        assert!(eng_row[1] < lat_row[1], "energy objective must save energy");
        assert!(eng_row[0] >= lat_row[0], "and pay latency for it");
    }

    #[test]
    fn infotainment_edge_adaptation_rescues_qoe_at_speed() {
        let rendered = infotainment(7).render();
        // At 70 MPH the direct 1080P stream is unusable while the
        // adapted stream is watchable.
        let line = rendered
            .lines()
            .find(|l| l.contains("70 MPH"))
            .expect("70 MPH row");
        let nums: Vec<f64> = line
            .split_whitespace()
            .filter_map(|tok| tok.parse::<f64>().ok())
            .collect();
        // nums = [70 (from "70 MPH"? no — "70" token), direct, bitrate, adapted]
        let direct = nums[nums.len() - 3];
        let adapted = nums[nums.len() - 1];
        assert!(direct > 0.8, "direct 1080P at 70 MPH should fail: {direct}");
        // At 70 MPH handoff outages dominate regardless of bitrate, so
        // adaptation helps but cannot fully rescue the stream.
        assert!(adapted < direct * 0.7, "adaptation must help: {adapted}");
    }

    #[test]
    fn fleet_table_pins_shard_invariance() {
        // Scaled-down E14: the full 1,000×60 s run belongs to the repro
        // binary; here a small fleet proves the table asserts the
        // byte-identical contract and renders every metric row.
        let mut cfg = FleetConfig::sized(96, 1);
        cfg.duration = SimDuration::from_secs(6);
        let cfg = cfg.with_regional_outage(0, SimTime::from_secs(2), SimDuration::from_secs(2));
        let rendered = fleet_table(cfg).render();
        assert!(rendered.contains("summaries byte-identical"), "{rendered}");
        assert!(rendered.contains("events processed"), "{rendered}");
    }

    #[test]
    fn fleet_steal_table_pins_invariance_and_profile_rows() {
        // Scaled-down E22: the full 1,000×60 s run belongs to the repro
        // binary; a small fleet proves the table asserts byte-identity
        // under the work-stealing executor and renders the executor
        // shape, steal count and idle-fraction rows.
        let mut cfg = FleetConfig::sized(96, 1);
        cfg.duration = SimDuration::from_secs(6);
        let cfg = cfg.with_regional_outage(0, SimTime::from_secs(2), SimDuration::from_secs(2));
        let rendered = fleet_steal_table(cfg).render();
        assert!(rendered.contains("executor threads"), "{rendered}");
        assert!(rendered.contains("batch size (vehicles)"), "{rendered}");
        assert!(rendered.contains("batches stolen"), "{rendered}");
        assert!(rendered.contains("mean idle fraction"), "{rendered}");
        assert!(rendered.contains("summaries byte-identical"), "{rendered}");
    }

    #[test]
    fn fleet_obs_table_bounds_memory_and_keeps_quantiles_honest() {
        // Scaled-down E23: the full 100,000×6 s run belongs to the
        // repro binary; a small fleet with a deliberately tiny budget
        // exercises the whole enforcement ladder — mid-run over-budget
        // spill drains, series rollup, sampling — plus the in-table
        // assertions (peak ≤ budget, shard-invariant spilled stream,
        // quantile fidelity) and renders every contract row.
        let rendered = fleet_obs_table(
            7,
            96,
            SimDuration::from_secs(6),
            16 * 1024,
            std::path::Path::new("target/fleet-obs-test"),
        )
        .render();
        assert!(rendered.contains("telemetry budget bytes"), "{rendered}");
        assert!(
            rendered.contains("peak telemetry bytes (bounded)"),
            "{rendered}"
        );
        assert!(rendered.contains("spilled spans"), "{rendered}");
        assert!(rendered.contains("sampled-out OK spans"), "{rendered}");
        assert!(rendered.contains("series rollup active"), "{rendered}");
        assert!(rendered.contains("e2e p99 ms (streaming)"), "{rendered}");
        assert!(rendered.contains("summaries byte-identical"), "{rendered}");
    }

    #[test]
    fn fleet_trace_table_writes_parseable_artifacts() {
        // Scaled-down E18: a small telemetry-enabled fleet must write a
        // trace.json that parses back through the vendored serde shim
        // and a per-line-valid spans.jsonl, and the table must render
        // the profile rows.
        let mut cfg = FleetConfig::sized(96, 1).with_telemetry();
        cfg.duration = SimDuration::from_secs(6);
        let cfg = cfg.with_regional_outage(0, SimTime::from_secs(2), SimDuration::from_secs(2));
        let dir = std::path::Path::new("target/fleet-trace-test");
        let rendered = fleet_trace_table(cfg, dir).render();
        assert!(rendered.contains("requests spanned"), "{rendered}");
        assert!(rendered.contains("barrier-idle"), "{rendered}");
        let raw = std::fs::read_to_string(dir.join("trace.json")).expect("trace.json exists");
        let parsed = serde_json::from_str(&raw).expect("trace.json parses");
        let events = parsed
            .get("traceEvents")
            .and_then(serde_json::Value::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty(), "trace must carry events");
        let jsonl = std::fs::read_to_string(dir.join("spans.jsonl")).expect("spans.jsonl exists");
        for line in jsonl.lines() {
            serde_json::from_str(line).expect("every JSONL line parses");
        }
        assert_eq!(
            jsonl.lines().count(),
            events
                .iter()
                .filter(|e| { e.get("ph").and_then(serde_json::Value::as_str) == Some("X") })
                .count(),
            "one JSONL line per span event"
        );
    }

    #[test]
    fn fleet_chaos_table_pins_ladder_and_invariance() {
        // Scaled-down E15: all three edge-tier fault kinds on a small
        // fleet; the table must render the ladder rows, per-component
        // availability, and assert the byte-identical contract.
        let mut cfg = FleetConfig::sized(96, 1);
        cfg.duration = SimDuration::from_secs(10);
        cfg.edge_nodes = 2;
        let cfg = cfg
            .with_edge_node_crash(0, SimTime::from_secs(2), SimDuration::from_secs(3))
            .with_tenant_quota_flap(0, 0.3, SimTime::from_secs(4), SimDuration::from_secs(3))
            .with_handoff_storm(1, SimTime::from_secs(5), SimDuration::from_secs(2));
        let rendered = fleet_chaos_table("E15 (scaled)", cfg).render();
        assert!(rendered.contains("rung 1: retry rescued"), "{rendered}");
        assert!(rendered.contains("rung 3: local fallbacks"), "{rendered}");
        assert!(rendered.contains("availability[xedge/node0]"), "{rendered}");
        assert!(rendered.contains("availability[tenant0]"), "{rendered}");
        assert!(rendered.contains("summaries byte-identical"), "{rendered}");
    }

    #[test]
    fn fleet_elastic_table_pins_load_tracking_and_invariance() {
        // Scaled-down E16: the sweep itself asserts both the
        // byte-identical contract per load level and that the mean lane
        // pool grows from the lightest to the heaviest level.
        let rendered = fleet_elastic_table(7, 96, SimDuration::from_secs(8)).render();
        assert!(rendered.contains("lanes track load"), "{rendered}");
        assert!(rendered.contains("lanes max"), "{rendered}");
    }

    #[test]
    fn fleet_storm_table_pins_randomized_invariance() {
        // Scaled-down E17: a real randomized storm on a small fleet;
        // the shared chaos table asserts the byte-identical contract.
        let mut cfg = openvdap::chaos::fleet_storm_config(7);
        cfg.vehicles = 96;
        cfg.duration = SimDuration::from_secs(8);
        let rendered = fleet_chaos_table("E17 (scaled)", cfg).render();
        assert!(rendered.contains("faults injected"), "{rendered}");
        assert!(rendered.contains("summaries byte-identical"), "{rendered}");
    }

    #[test]
    fn fleet_ingest_table_pins_ladder_and_invariance() {
        // Scaled-down E19: the shared-tier sizing tracks the fleet, so
        // 96 vehicles hit the same outage + brownout pressure as the
        // full 10,000-vehicle repro run; the table asserts byte-identity,
        // both fault windows biting, and the ingestion ledger partition.
        let rendered = fleet_ingest_table(7, 96, SimDuration::from_secs(16)).render();
        assert!(rendered.contains("deadline-miss rate"), "{rendered}");
        assert!(rendered.contains("rung 2: deferred to cache"), "{rendered}");
        assert!(rendered.contains("storage rho max"), "{rendered}");
        assert!(rendered.contains("summaries byte-identical"), "{rendered}");
    }

    #[test]
    fn fleet_mobility_table_pins_storm_and_invariance() {
        // Scaled-down E20: 96 vehicles on the same rush-hour mix. The
        // table itself asserts 1-vs-8-shard byte-identity, zero injected
        // faults, the crossing partition invariant, the organic rush
        // spike, and downtown registration pressure.
        let rendered = fleet_mobility_table(7, 96, SimDuration::from_secs(16)).render();
        assert!(rendered.contains("region crossings"), "{rendered}");
        assert!(
            rendered.contains("peak-epoch crossings (organic storm)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("downtown gates offered/rejected"),
            "{rendered}"
        );
        assert!(rendered.contains("summaries byte-identical"), "{rendered}");
    }

    #[test]
    fn crossover_shifts_placement_as_edge_saturates() {
        let t = crossover(7);
        let rendered = t.render();
        // With a busy board the light edge wins; as it saturates the
        // planner must shift at least part of the pipeline elsewhere.
        assert!(rendered.contains("edge→edge"), "{rendered}");
        assert!(
            rendered.contains("cloud") || rendered.contains("vehicle"),
            "placement never shifted: {rendered}"
        );
    }
}
