//! Figure 2 bench: streaming a one-minute RTP/H.264 clip through the
//! calibrated cellular channel at each drive-test operating point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vdap_net::{stream_clip, CellularChannel, Mph, Resolution, VideoStreamSpec};
use vdap_sim::{SeedFactory, SimDuration, SimTime};

fn bench_fig2(c: &mut Criterion) {
    let channel = CellularChannel::calibrated();
    let seeds = SeedFactory::new(2);
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    for (speed, res) in [
        (0.0, Resolution::P720),
        (35.0, Resolution::P720),
        (70.0, Resolution::P1080),
    ] {
        g.bench_with_input(
            BenchmarkId::new("stream_60s", format!("{speed}mph_{res}")),
            &(speed, res),
            |b, &(speed, res)| {
                b.iter(|| {
                    let spec = VideoStreamSpec::paper_encoding(res);
                    let mut loss =
                        channel.loss_process(Mph(speed), res.bitrate_mbps(), seeds.stream("bench"));
                    black_box(stream_clip(
                        &spec,
                        &mut loss,
                        SimTime::ZERO,
                        SimDuration::from_secs(60),
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
