//! DSF scheduling benches (experiment E9).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vdap_hw::{ComputeWorkload, TaskClass, VcuBoard};
use vdap_sim::SimTime;
use vdap_vcu::{
    license_plate_pipeline, partition_data_parallel, CpuOnlyScheduler, DsfScheduler,
    RoundRobinScheduler, SchedulePolicy, TaskGraph,
};

fn mixed_graph() -> TaskGraph {
    let mut graph = license_plate_pipeline(None);
    let cnn = ComputeWorkload::new("frame-cnn", TaskClass::DenseLinearAlgebra)
        .with_gflops(20.0)
        .with_parallel_fraction(0.97);
    let dp = partition_data_parallel("cnn", &cnn, 8, 0.01);
    let offset = graph.len() as u32;
    for task in dp.tasks() {
        graph.add_task(task.workload().clone());
    }
    for &(p, c) in dp.edges() {
        graph
            .add_dependency(
                vdap_vcu::TaskId(p.0 + offset),
                vdap_vcu::TaskId(c.0 + offset),
            )
            .unwrap();
    }
    graph
}

fn bench_vcu(c: &mut Criterion) {
    let board = VcuBoard::reference_design();
    let graph = mixed_graph();
    let mut g = c.benchmark_group("vcu");
    for (name, policy) in [
        ("dsf_eft", &DsfScheduler::new() as &dyn SchedulePolicy),
        ("round_robin", &RoundRobinScheduler),
        ("cpu_only", &CpuOnlyScheduler),
    ] {
        g.bench_function(format!("plan_{name}_12_tasks"), |b| {
            b.iter(|| {
                black_box(
                    policy
                        .plan(black_box(&graph), &board, SimTime::ZERO)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_vcu);
criterion_main!(benches);
