//! Model-substrate benches: training, Deep Compression, transfer
//! learning (experiment E7).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vdap_ddi::DriverStyle;
use vdap_models::{
    compress, driver_dataset, population_dataset, transfer, CompressConfig, Network, SensorBias,
    TrainConfig, TransferConfig, FEATURE_DIM,
};
use vdap_sim::SeedFactory;

fn bench_models(c: &mut Criterion) {
    let seeds = SeedFactory::new(4);
    let pop = population_dataset(80, 20, &seeds);
    let personal = driver_dataset(
        DriverStyle::Aggressive,
        SensorBias::none(),
        80,
        20,
        seeds.stream("personal"),
    );
    let mut rng = seeds.stream("net");
    let mut trained = Network::new(&[FEATURE_DIM, 32, 16, 3], &mut rng);
    trained.train(&pop, &TrainConfig::default(), &mut rng, 0);

    let mut g = c.benchmark_group("models");
    g.sample_size(10);
    g.bench_function("train_cbeam_10_epochs", |b| {
        b.iter(|| {
            let mut rng = seeds.stream("train-bench");
            let mut net = Network::new(&[FEATURE_DIM, 32, 16, 3], &mut rng);
            net.train(
                &pop,
                &TrainConfig {
                    epochs: 10,
                    ..TrainConfig::default()
                },
                &mut rng,
                0,
            );
            black_box(net)
        })
    });
    g.bench_function("deep_compress", |b| {
        b.iter(|| {
            let mut net = trained.clone();
            let mut rng = seeds.stream("compress-bench");
            black_box(compress(&mut net, &CompressConfig::default(), &mut rng))
        })
    });
    g.bench_function("transfer_learn_pbeam", |b| {
        b.iter(|| {
            let mut rng = seeds.stream("transfer-bench");
            black_box(transfer(
                &trained,
                &personal,
                &TransferConfig::default(),
                &mut rng,
            ))
        })
    });
    g.bench_function("inference_batch", |b| {
        b.iter(|| black_box(trained.accuracy(black_box(&pop))))
    });
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
