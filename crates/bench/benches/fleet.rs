//! Fleet-engine throughput: events/sec at 1 shard vs multi-shard on the
//! same seed (experiment E14). On a ≥4-core host the multi-shard run
//! should show a clear wall-clock speedup for the same event count.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use vdap_fleet::{FleetConfig, FleetEngine, WorkerPool};
use vdap_sim::SimDuration;

/// A fleet big enough that per-epoch barrier cost is amortised but small
/// enough for Criterion's sampling loop.
fn bench_config(shards: u32) -> FleetConfig {
    let mut cfg = FleetConfig::sized(512, shards);
    cfg.duration = SimDuration::from_secs(10);
    cfg
}

fn bench_fleet(c: &mut Criterion) {
    // The event count is shard-invariant, so measure it once and use it
    // as the throughput denominator for every shard count.
    let events = FleetEngine::new(bench_config(1)).run().events_processed;
    let cores = WorkerPool::with_default_size().threads() as u32;

    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));
    for shards in [1, 2, 4, 8] {
        if shards > 1 && shards > cores {
            // More shards than cores just measures scheduler churn.
            continue;
        }
        g.bench_function(format!("events_per_sec_{shards}_shards"), |b| {
            b.iter(|| black_box(FleetEngine::new(black_box(bench_config(shards))).run()))
        });
    }
    g.finish();
}

/// Migration-path overhead: the E14 configuration with geo-mobility off
/// vs on, at the shard count where crossings force real evict/adopt
/// moves between worker shards. The delta between the two cases prices
/// the whole mobility pass — route advancement, handoff accounting,
/// admission re-registration, and physical vehicle migration.
fn bench_fleet_mobility(c: &mut Criterion) {
    let events = FleetEngine::new(bench_config(1)).run().events_processed;
    let cores = WorkerPool::with_default_size().threads() as u32;
    let shards = if cores >= 4 { 4 } else { 1 };

    let mut g = c.benchmark_group("fleet_mobility");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));
    g.bench_function(format!("baseline_{shards}_shards"), |b| {
        b.iter(|| black_box(FleetEngine::new(black_box(bench_config(shards))).run()))
    });
    g.bench_function(format!("migration_path_{shards}_shards"), |b| {
        b.iter(|| {
            black_box(FleetEngine::new(black_box(bench_config(shards).with_mobility())).run())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fleet, bench_fleet_mobility);
criterion_main!(benches);
