//! DDI benches: memory-tier vs disk-tier operations (experiment E8).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vdap_ddi::{DdiService, DriverStyle, ObdCollector, Query, RecordKind};
use vdap_sim::{SeedFactory, SimDuration, SimTime};

fn bench_ddi(c: &mut Criterion) {
    let seeds = SeedFactory::new(5);
    let mut obd = ObdCollector::new(DriverStyle::Normal, seeds.stream("obd"));
    let records = obd.trace(SimTime::ZERO, 5_000);

    let mut g = c.benchmark_group("ddi");
    g.sample_size(10);
    g.bench_function("upload_5k_records", |b| {
        b.iter(|| {
            let mut ddi = DdiService::new(16_384, SimDuration::from_secs(300));
            for r in records.clone() {
                let at = r.at;
                ddi.upload(r, at);
            }
            black_box(ddi)
        })
    });

    let mut hot = DdiService::new(16_384, SimDuration::from_secs(1_000_000));
    for r in records.clone() {
        let at = r.at;
        hot.upload(r, at);
    }
    let q = Query::window(
        RecordKind::Driving,
        SimTime::from_secs(100),
        SimTime::from_secs(200),
    );
    g.bench_function("download_memory_hit", |b| {
        b.iter(|| black_box(hot.download(black_box(&q), SimTime::from_secs(400))))
    });

    let mut cold = DdiService::new(16_384, SimDuration::from_secs(1));
    for r in records.clone() {
        let at = r.at;
        cold.upload(r, at);
    }
    cold.sweep(SimTime::from_secs(10_000));
    g.bench_function("download_disk_miss", |b| {
        b.iter_batched(
            || cold.clone(),
            |mut ddi| black_box(ddi.download(&q, SimTime::from_secs(10_001))),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_ddi);
criterion_main!(benches);
