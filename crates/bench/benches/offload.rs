//! Offloading benches: the exhaustive placement planner and the §III
//! strategy comparison (experiments E5/E6).

use criterion::{criterion_group, criterion_main, Criterion};
use openvdap::scenario::{compare_strategies, detection_stages, ScenarioConfig};
use openvdap::{Infrastructure, Objective, OpenVdap};
use std::hint::black_box;
use vdap_net::Mph;
use vdap_offload::optimal_placement;
use vdap_sim::{SimDuration, SimTime};

fn bench_offload(c: &mut Criterion) {
    let platform = OpenVdap::builder().seed(3).build();
    let mut infra = Infrastructure::reference();
    infra.apply_mobility(Mph(35.0));
    let stages = detection_stages();

    let mut g = c.benchmark_group("offload");
    g.sample_size(10);
    g.bench_function("planner_exhaustive_2_stages", |b| {
        b.iter(|| {
            let env = infra.env(platform.vcu().board(), SimTime::ZERO);
            black_box(
                optimal_placement("bench", &stages, &env, Objective::MinLatency, None)
                    .expect("feasible"),
            )
        })
    });
    g.bench_function("strategy_comparison_small_fleet", |b| {
        let cfg = ScenarioConfig {
            vehicles: 2,
            duration: SimDuration::from_secs(5),
            ..ScenarioConfig::default()
        };
        b.iter(|| black_box(compare_strategies(black_box(&cfg))))
    });
    g.finish();
}

criterion_group!(benches, bench_offload);
criterion_main!(benches);
