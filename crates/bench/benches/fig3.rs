//! Figure 3 bench: the heterogeneous-processor latency/energy sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vdap_hw::catalog;
use vdap_models::zoo;

fn bench_fig3(c: &mut Criterion) {
    let inception = zoo::inception_v3();
    let processors = catalog::fig3_processors();
    let mut g = c.benchmark_group("fig3");
    g.bench_function("inception_sweep_5_processors", |b| {
        b.iter(|| {
            for p in &processors {
                black_box(p.service_time(black_box(&inception)));
                black_box(p.energy_joules(black_box(&inception)));
            }
        })
    });
    g.bench_function("full_figure_regeneration", |b| {
        b.iter(|| black_box(vdap_bench::experiments::fig3()))
    });
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
