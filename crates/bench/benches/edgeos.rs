//! EdgeOSv benches: elastic pipeline decisions and service migration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vdap_edgeos::{
    kidnapper_search, ElasticManager, Environment, MigrationMode, Objective, ServiceImage,
    ServiceMigrator,
};
use vdap_hw::{catalog, VcuBoard};
use vdap_net::{LinkSpec, NetTopology, Site};
use vdap_sim::{SimDuration, SimTime};

fn bench_edgeos(c: &mut Criterion) {
    let net = NetTopology::reference();
    let board = VcuBoard::reference_design();
    let edge = catalog::xedge_server();
    let cloud = catalog::cloud_server();
    let env = Environment {
        net: &net,
        board: &board,
        edge: &edge,
        cloud: &cloud,
        edge_load: 1.0,
        cloud_load: 1.0,
        now: SimTime::ZERO,
    };
    let mut g = c.benchmark_group("edgeos");
    g.bench_function("elastic_decide_3_pipelines", |b| {
        b.iter(|| {
            let mut service = kidnapper_search(SimDuration::from_millis(800), Site::Edge);
            let mut mgr = ElasticManager::new();
            black_box(mgr.decide(&mut service, &env, Objective::MinLatency))
        })
    });
    g.bench_function("migration_precopy_planning", |b| {
        let image = ServiceImage::typical_container("svc");
        let link = LinkSpec::wifi();
        b.iter(|| {
            let mut m = ServiceMigrator::new();
            black_box(
                m.migrate(
                    &image,
                    &link,
                    MigrationMode::PreCopy { max_rounds: 10 },
                    true,
                    "rsu",
                    SimTime::ZERO,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_edgeos);
criterion_main!(benches);
