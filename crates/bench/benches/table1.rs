//! Table I bench: the *real* CV kernels (lane detection, Haar cascade)
//! executing on the host, plus the calibrated simulated latencies.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vdap_hw::catalog::aws_vcpu_2_4ghz;
use vdap_models::cv::{detect_lanes, synthetic_road_frame, HaarCascade, Rect};
use vdap_models::zoo;
use vdap_sim::SeedFactory;

fn bench_table1(c: &mut Criterion) {
    let mut rng = SeedFactory::new(1).stream("cv-bench");
    let vehicles = [
        Rect {
            x: 80,
            y: 120,
            w: 32,
            h: 20,
        },
        Rect {
            x: 260,
            y: 140,
            w: 32,
            h: 20,
        },
    ];
    let frame = synthetic_road_frame(640, 360, &vehicles, &mut rng);
    let cascade = HaarCascade::vehicle();

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("lane_detection_real_640x360", |b| {
        b.iter(|| black_box(detect_lanes(black_box(&frame))))
    });
    g.bench_function("vehicle_detection_haar_real_640x360", |b| {
        b.iter(|| black_box(cascade.detect(black_box(&frame))))
    });
    let cpu = aws_vcpu_2_4ghz();
    g.bench_function("simulated_latency_all_rows", |b| {
        b.iter(|| {
            for w in zoo::table1_workloads() {
                black_box(cpu.service_time(&w));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
